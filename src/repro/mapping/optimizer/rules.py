"""The rewrite-rule inventory of the query compiler (phase 2).

Each rule is small, deterministic and individually testable: it either
fires (rewriting every matching site in one pass) or declines with the
reason — and where a genuine alternative existed, the rejected candidate
is recorded with its cost estimate for ``repro explain``.

Inventory, in application order:

1.  :class:`OrderScanFilters` — most selective pushdown filter first.
2.  :class:`PushResidualPredicates` — residual post-filter conjuncts
    move to the deepest join that binds them.
3.  :class:`ReorderCommutativeJoin` — swap a commutative (AND) join so
    the sparse stream drives window creation; a ``Permute`` restores the
    canonical composition so output stays byte-identical.
4.  :class:`ChooseIntervalWindows` — O1: flip sliding-window joins to
    interval joins when the left input is sparse or windows overlap
    heavily (the advisor's thresholds, applied per join).
5.  :class:`ChooseAggregateIteration` — O2: replace a self-join chain
    with the windowed count. Approximate by design, so it declines under
    the default exact-output contract and only fires when the caller
    opted into ``allow_approximate``.
6.  :class:`AnnotateFusionSegments` — records the stateless stage runs
    the batched engine will fuse into single passes; placement becomes
    auditable in ``repro explain`` without changing the plan shape.
7.  :class:`AnnotateColumnarSegments` — records which scans run as one
    vectorized column mask and which joins use the galloping sorted
    probe under the columnar engine, with cardinality-interval
    justifications; annotation only, like rule 6.

Rules 1–4, 6 and 7 are output-preserving and run under the engine's
RA70x invariant check; rule 5 declares ``preserves_output = False``.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Callable

from repro.mapping.optimizer.cost import (
    MANY_WINDOWS_THRESHOLD,
    SPARSE_LEFT_RATIO,
    estimate_plan,
    predicate_selectivity,
    subtree_out_rate,
    subtree_rate_known,
)
from repro.mapping.optimizer.ir import (
    CountAggregate,
    JoinKind,
    KleeneIterate,
    LogicalPlan,
    MultiWayJoin,
    NseqPrepare,
    Permute,
    PlanNode,
    PostFilter,
    SchemaAlign,
    StreamScan,
    UnionAll,
    WindowJoin,
    WindowStrategy,
)
from repro.mapping.optimizer.rewrite import OptimizeContext, Rule, RuleDecision
from repro.sea.predicates import Predicate


def _rebuild(node: PlanNode, fn: Callable[[PlanNode], PlanNode]) -> PlanNode:
    """Reconstruct ``node`` with ``fn`` applied to each child."""
    if isinstance(node, WindowJoin):
        return dc_replace(node, left=fn(node.left), right=fn(node.right))
    if isinstance(node, (UnionAll, MultiWayJoin)):
        return dc_replace(node, parts=tuple(fn(p) for p in node.parts))
    if isinstance(node, (SchemaAlign, PostFilter, Permute, CountAggregate, KleeneIterate)):
        return dc_replace(node, input=fn(node.input))
    if isinstance(node, NseqPrepare):
        return dc_replace(node, first=fn(node.first), negated=fn(node.negated))
    return node


class OrderScanFilters(Rule):
    """Order each scan's pushdown filters most-selective-first.

    Conjunction commutes, so only evaluation cost changes: the cheapest
    rejection happens earliest. Ordering uses the static per-operator
    selectivity heuristic (profiles observe whole filter chains, not
    individual conjuncts) with the rendered text as a deterministic
    tie-break.
    """

    name = "order-scan-filters"
    description = "evaluate the most selective pushdown filter first"

    def apply(self, plan: LogicalPlan, ctx: OptimizeContext) -> RuleDecision:
        changed: list[str] = []

        def rewrite(node: PlanNode) -> PlanNode:
            node = _rebuild(node, rewrite)
            if isinstance(node, StreamScan) and len(node.filters) > 1:
                ordered = tuple(
                    sorted(
                        node.filters,
                        key=lambda p: (predicate_selectivity(p), p.render()),
                    )
                )
                if ordered != node.filters:
                    changed.append(node.alias)
                    return dc_replace(node, filters=ordered)
            return node

        root = rewrite(plan.root)
        if not changed:
            return RuleDecision.decline(
                "every scan's pushdown filters are already in selectivity order"
            )
        return RuleDecision.fire(
            dc_replace(plan, root=root),
            "reordered pushdown filters on scan(s) "
            + ", ".join(sorted(changed))
            + " (most selective conjunct first)",
        )


def _deepest_binding_join(node: PlanNode, pred: Predicate) -> PlanNode | None:
    """The deepest join whose composition fully binds ``pred``."""
    needed = pred.aliases()
    for child in node.inputs():
        hit = _deepest_binding_join(child, pred)
        if hit is not None:
            return hit
    if isinstance(node, (WindowJoin, MultiWayJoin)) and needed <= set(node.aliases):
        return node
    return None


def _attach_theta(root: PlanNode, target: PlanNode, pred: Predicate) -> PlanNode:
    """Rebuild ``root`` with ``pred`` added to ``target``'s theta set."""

    def rewrite(node: PlanNode) -> PlanNode:
        if node is target:
            assert isinstance(node, (WindowJoin, MultiWayJoin))
            updated = dc_replace(node, extra_theta=node.extra_theta + (pred,))
            if isinstance(updated, WindowJoin) and updated.kind is JoinKind.CROSS:
                # Mirror phase 1: a cross join gaining a theta conjunct is
                # a theta join.
                updated = dc_replace(updated, kind=JoinKind.THETA)
            return updated
        return _rebuild(node, rewrite)

    return rewrite(root)


class PushResidualPredicates(Rule):
    """Selection pushdown: residual post-filter conjuncts move into the
    deepest join that binds them, pruning compositions before they are
    paired further instead of after the full match is assembled. Classic
    relational pushdown; phase 1 already places conjuncts eagerly, so
    this fires mainly on hand-built or externally-generated IR.
    """

    name = "pushdown-residual-predicates"
    description = "move residual predicates into the deepest binding join"

    def apply(self, plan: LogicalPlan, ctx: OptimizeContext) -> RuleDecision:
        root = plan.root
        if not isinstance(root, PostFilter):
            return RuleDecision.decline("plan has no residual post-filter")
        inner = root.input
        moved: list[Predicate] = []
        kept: list[Predicate] = []
        for pred in root.predicates:
            target = _deepest_binding_join(inner, pred)
            if target is None:
                kept.append(pred)
                continue
            inner = _attach_theta(inner, target, pred)
            moved.append(pred)
        if not moved:
            return RuleDecision.decline(
                "residual predicates only bind at the plan output "
                "(e.g. over a disjunction); nothing can move"
            )
        new_root: PlanNode = PostFilter(inner, tuple(kept)) if kept else inner
        return RuleDecision.fire(
            dc_replace(plan, root=new_root),
            "pushed "
            + ", ".join(p.render() for p in moved)
            + " from the post-filter into the deepest binding join",
        )


class ReorderCommutativeJoin(Rule):
    """Put the sparse stream on the left of a commutative (AND) join.

    AND is symmetric — both orders yield the same match set — but the
    physical join is not: the left side drives window creation for
    interval joins (Section 4.3.1) and heads the pipeline otherwise. A
    ``Permute`` above the swapped join restores the canonical constituent
    order, so every match keeps its original ``dedup_key`` and output
    stays byte-identical.

    SEQ joins are never touched (the order predicate pins the sides) and
    neither are iteration self-joins (the consecutive condition is
    positional). Declines when the cost model does not know both sides'
    rates: shuffling plans on placeholder rates is noise, not
    optimization.
    """

    name = "reorder-commutative-join"
    description = "swap a commutative join so the sparse stream drives windows"

    def apply(self, plan: LogicalPlan, ctx: OptimizeContext) -> RuleDecision:
        swaps: list[str] = []
        alternatives: list[str] = []

        def rewrite(node: PlanNode) -> PlanNode:
            node = _rebuild(node, rewrite)
            if not (
                isinstance(node, WindowJoin)
                and not node.ordered
                and node.consecutive_condition is None
            ):
                return node
            if not (
                subtree_rate_known(node.left, ctx.model)
                and subtree_rate_known(node.right, ctx.model)
            ):
                alternatives.append(
                    f"{node.label()}: swap rejected — stream rates unknown "
                    f"to the '{ctx.model.name}' cost model"
                )
                return node
            left_rate = subtree_out_rate(node.left, ctx.model)
            right_rate = subtree_out_rate(node.right, ctx.model)
            if not (right_rate * SPARSE_LEFT_RATIO <= left_rate):
                alternatives.append(
                    f"{node.label()}: swap rejected — left already sparse "
                    f"enough ({left_rate:.3g} vs {right_rate:.3g} ev/s, "
                    f"threshold {SPARSE_LEFT_RATIO}x)"
                )
                return node
            swapped = dc_replace(
                node,
                left=node.right,
                right=node.left,
                equi_keys=tuple((r, l) for l, r in node.equi_keys),
            )
            size_left = len(node.left.aliases)
            size_right = len(node.right.aliases)
            order = tuple(range(size_right, size_right + size_left)) + tuple(
                range(size_right)
            )
            swaps.append(
                f"{node.label()}: right side ({right_rate:.3g} ev/s) is "
                f"≥{SPARSE_LEFT_RATIO}x sparser than left "
                f"({left_rate:.3g} ev/s); swapped, with Permute restoring "
                "the canonical composition"
            )
            return Permute(swapped, order)

        root = rewrite(plan.root)
        if not swaps:
            return RuleDecision.decline(
                "no commutative join with a measurably sparser right side",
                alternatives,
            )
        return RuleDecision.fire(
            dc_replace(plan, root=root), "; ".join(swaps), alternatives
        )


class ChooseIntervalWindows(Rule):
    """O1: realize a join with interval windows instead of sliding ones.

    Fires per join, when the left input is sparse relative to the right
    (content-based windows are created per left event) or when W/slide
    overlap is heavy (sliding windows recompute each pair once per
    overlapping window). Thresholds are shared with the advisor. Output
    is unchanged — O1 only changes *how* the window extent is realized —
    so the RA70x invariants apply. Declines entirely in the
    ``emit_duplicates`` study mode, whose raw duplicate emission is
    exactly what O1 removes.
    """

    name = "choose-interval-windows"
    description = "O1: interval joins where sliding windows pay overhead"

    def apply(self, plan: LogicalPlan, ctx: OptimizeContext) -> RuleDecision:
        if ctx.options.emit_duplicates:
            return RuleDecision.decline(
                "emit_duplicates study mode requires sliding windows "
                "(O1 removes the duplicates being studied)"
            )
        flips: list[str] = []
        alternatives: list[str] = []

        def rewrite(node: PlanNode) -> PlanNode:
            node = _rebuild(node, rewrite)
            if not (
                isinstance(node, WindowJoin)
                and node.strategy is WindowStrategy.SLIDING
            ):
                return node
            windows_per_event = -(-node.window_size // max(node.window_slide, 1))
            rates_known = subtree_rate_known(
                node.left, ctx.model
            ) and subtree_rate_known(node.right, ctx.model)
            if rates_known:
                left_rate = subtree_out_rate(node.left, ctx.model)
                right_rate = subtree_out_rate(node.right, ctx.model)
                if left_rate * SPARSE_LEFT_RATIO <= right_rate:
                    flips.append(
                        f"{node.label()}: left input ({left_rate:.3g} ev/s) "
                        f"sparse vs right ({right_rate:.3g} ev/s); interval "
                        "windows are created per left event (Section 4.3.1)"
                    )
                    return dc_replace(node, strategy=WindowStrategy.INTERVAL)
            if windows_per_event >= MANY_WINDOWS_THRESHOLD:
                flips.append(
                    f"{node.label()}: W/slide = {windows_per_event} "
                    "overlapping windows per event; interval windows avoid "
                    "the duplicated pair computation"
                )
                return dc_replace(node, strategy=WindowStrategy.INTERVAL)
            alternatives.append(
                f"{node.label()}: interval rejected — "
                + (
                    "left input is not the sparse side and "
                    if rates_known
                    else "stream rates unknown and "
                )
                + f"W/slide = {windows_per_event} < {MANY_WINDOWS_THRESHOLD}"
            )
            return node

        root = rewrite(plan.root)
        if not flips:
            return RuleDecision.decline(
                "no sliding-window join clears the O1 thresholds", alternatives
            )
        return RuleDecision.fire(
            dc_replace(plan, root=root), "; ".join(flips), alternatives
        )


def _iteration_chain(plan: LogicalPlan, alias: str) -> WindowJoin | None:
    """The topmost self-join chain realizing iteration ``alias``, if any."""
    prefix = f"{alias}["

    def is_chain(node: PlanNode) -> bool:
        if isinstance(node, StreamScan):
            return node.alias.startswith(prefix)
        if isinstance(node, WindowJoin):
            return is_chain(node.left) and is_chain(node.right)
        return False

    for node in plan.root.walk():
        if isinstance(node, WindowJoin) and is_chain(node):
            return node
    return None


class ChooseAggregateIteration(Rule):
    """O2: replace an iteration's self-join chain with a windowed count.

    The aggregate mapping emits one *approximate* match per (key, window)
    instead of one exact match per event combination — a different
    output contract. Under the compiler's default byte-identical
    guarantee this rule therefore always declines, recording the rejected
    aggregate plan with both cost estimates; it fires only when the
    caller opted into approximate output (``allow_approximate``), e.g.
    via the advisor's recommendation flow.
    """

    name = "choose-aggregate-iteration"
    description = "O2: windowed count instead of the m-way self-join"
    preserves_output = False

    def apply(self, plan: LogicalPlan, ctx: OptimizeContext) -> RuleDecision:
        features = plan.features
        if features is None or not features.iterations:
            return RuleDecision.decline("pattern has no iteration")
        candidates = []
        for info in features.iterations:
            chain = _iteration_chain(plan, info.alias)
            if chain is not None:
                candidates.append((info, chain))
        if not candidates:
            return RuleDecision.decline(
                "iterations are already aggregate-mapped (no self-join chain)"
            )

        rewrites: list[str] = []
        alternatives: list[str] = []
        root = plan.root
        for info, chain in candidates:
            aggregate, problem = self._build_aggregate(chain, info, ctx)
            if aggregate is None:
                alternatives.append(
                    f"iteration '{info.alias}': aggregate rejected — {problem}"
                )
                continue
            candidate_plan = dc_replace(
                plan, root=_substitute(root, chain, aggregate)
            )
            chain_cost = estimate_plan(plan, ctx.model).total_cpu
            agg_cost = estimate_plan(candidate_plan, ctx.model).total_cpu
            comparison = (
                f"self-join chain est. {chain_cost:.3g} cpu vs aggregate "
                f"est. {agg_cost:.3g} cpu"
            )
            if not ctx.allow_approximate:
                alternatives.append(
                    f"iteration '{info.alias}': aggregate plan rejected — "
                    "exact-output contract (O2 emits one approximate match "
                    f"per window); {comparison}"
                )
                continue
            if agg_cost >= chain_cost:
                alternatives.append(
                    f"iteration '{info.alias}': aggregate plan rejected — "
                    f"not estimated cheaper ({comparison})"
                )
                continue
            root = _substitute(root, chain, aggregate)
            rewrites.append(
                f"iteration '{info.alias}' ({info.count}x "
                f"{info.event_type}): replaced {info.count - 1} self-joins "
                f"with γcount (O2, approximate); {comparison}"
            )
        if not rewrites:
            reason = (
                "exact-output contract keeps the self-join mapping "
                "(enable approximate output to let O2 fire)"
                if not ctx.allow_approximate
                else "no iteration chain qualified for the aggregate mapping"
            )
            return RuleDecision.decline(reason, alternatives)
        return RuleDecision.fire(
            dc_replace(plan, root=root), "; ".join(rewrites), alternatives
        )

    @staticmethod
    def _build_aggregate(
        chain: WindowJoin, info, ctx: OptimizeContext
    ) -> tuple[CountAggregate | None, str]:
        scans = [n for n in chain.walk() if isinstance(n, StreamScan)]
        joins = [n for n in chain.walk() if isinstance(n, WindowJoin)]
        # Filters must apply uniformly to every repetition: a conjunct
        # pinned to one index (v[2].value > x) has no aggregate form.
        shared: tuple[Predicate, ...] = ()
        for scan in scans:
            uniform = tuple(
                p for p in scan.filters if p.aliases() <= {info.alias} or not p.aliases()
            )
            if len(uniform) != len(scan.filters):
                indexed = [p.render() for p in scan.filters if p not in uniform]
                return None, (
                    "per-repetition filters not expressible via O2: "
                    + ", ".join(indexed)
                )
            shared = uniform
        if any(j.extra_theta for j in joins):
            rendered = [p.render() for j in joins for p in j.extra_theta]
            return None, (
                "cross-repetition theta predicates not expressible via O2: "
                + ", ".join(rendered)
            )
        key_attribute = ctx.options.partition_attribute
        for join in joins:
            for (l_alias, l_attr), (r_alias, r_attr) in join.equi_keys:
                if l_attr != r_attr or key_attribute not in (None, l_attr):
                    return None, (
                        "repetition equalities over differing attributes "
                        f"({l_alias}.{l_attr} = {r_alias}.{r_attr})"
                    )
                key_attribute = l_attr
        flavour = "udf" if info.condition_kind == "consecutive" else "count"
        return (
            CountAggregate(
                input=StreamScan(info.event_type, info.alias, shared),
                minimum=info.count,
                window_size=chain.window_size,
                window_slide=chain.window_slide,
                key_attribute=key_attribute,
                flavour=flavour,
                condition=info.condition,
            ),
            "",
        )


def _substitute(root: PlanNode, target: PlanNode, replacement: PlanNode) -> PlanNode:
    def rewrite(node: PlanNode) -> PlanNode:
        if node is target:
            return replacement
        return _rebuild(node, rewrite)

    return rewrite(root)


class AnnotateFusionSegments(Rule):
    """Record the stateless stage runs the batched engine fuses.

    The batched backend compiles adjacent stateless operators (scan
    filters, schema aligns, permutes, post-filters) into single fused
    passes; this rule computes those maximal runs at plan level and
    writes them into the plan's notes, making the fusion boundary
    placement visible in ``repro explain`` and auditable in metrics
    reports. Annotation only — the plan tree is untouched.
    """

    name = "annotate-fusion-segments"
    description = "make batched fusion-segment boundaries explicit"

    def apply(self, plan: LogicalPlan, ctx: OptimizeContext) -> RuleDecision:
        segments: list[list[str]] = []

        def visit(node: PlanNode, run: list[str]) -> None:
            if isinstance(node, (SchemaAlign, Permute, PostFilter)):
                visit(node.inputs()[0], run + [node.label()])
                return
            if isinstance(node, StreamScan):
                if node.filters:
                    run = run + [node.label()]
                if len(run) >= 2:
                    segments.append(run)
                return
            # Stateful boundary: flush the run, restart below.
            if len(run) >= 2:
                segments.append(run)
            for child in node.inputs():
                visit(child, [])

        visit(plan.root, [])
        if not segments:
            return RuleDecision.decline(
                "no run of adjacent stateless stages to fuse"
            )
        notes = tuple(
            "fusion segment: " + " ∘ ".join(reversed(run)) + " (one batched pass)"
            for run in segments
        )
        return RuleDecision.fire(
            dc_replace(plan, notes=plan.notes + notes),
            f"marked {len(segments)} fusion segment(s) for the batched engine",
        )


class AnnotateColumnarSegments(Rule):
    """Record the plan segments the columnar engine vectorizes.

    The columnar backend (``columnar=True``) drives struct-of-arrays
    batches; a scan filter runs as one compiled column mask only when
    every conjunct compiles via :func:`repro.sea.predicates.compile_mask`
    (attribute/const comparisons — UDFs and cross-alias conjuncts fall
    back to row evaluation). Interval joins probe their ts-sorted side
    buffers with galloping pointers regardless of filters. This rule
    writes both segment kinds into the plan's notes, with the cardinality
    interval of each masked scan as the justification — a wide survivor
    interval means the mask saves many per-event closure calls.
    Annotation only — the plan tree is untouched.
    """

    name = "annotate-columnar-segments"
    description = "make columnar mask/probe segment placement explicit"

    def apply(self, plan: LogicalPlan, ctx: OptimizeContext) -> RuleDecision:
        from repro.analysis.cardinality import interpret_node, _join_ordinals
        from repro.sea.predicates import compile_mask

        notes: list[str] = []
        cache: dict = {}
        ordinals = _join_ordinals(plan.root)
        for node in plan.root.walk():
            if isinstance(node, StreamScan) and node.filters:
                if compile_mask(node.filters) is None:
                    notes.append(
                        f"columnar: {node.label()} stays row-at-a-time "
                        "(filter not mask-compilable)"
                    )
                    continue
                bounds = interpret_node(node, ctx.model, cache, ordinals)
                rate = bounds.out_rate
                survivors = (
                    f"survivors <= {rate.hi:.3g}/s" if rate.hi != float("inf")
                    else "survivor rate unknown"
                )
                notes.append(
                    f"columnar segment: {node.label()} -> one vectorized "
                    f"mask pass ({len(node.filters)} conjunct(s), {survivors})"
                )
            elif isinstance(node, WindowJoin) and node.strategy is WindowStrategy.INTERVAL:
                notes.append(
                    f"columnar segment: {node.label()} -> galloping probe "
                    "over ts-sorted side buffers"
                )
            elif isinstance(node, KleeneIterate):
                notes.append(
                    f"columnar segment: {node.label()} -> per-window run "
                    "enumeration over the sorted ts column"
                )
        segments = [n for n in notes if n.startswith("columnar segment")]
        if not segments:
            return RuleDecision.decline(
                "no mask-compilable scan or columnar-probed operator"
            )
        return RuleDecision.fire(
            dc_replace(plan, notes=plan.notes + tuple(notes)),
            f"marked {len(segments)} columnar segment(s) for the columnar engine",
        )


#: The compiler's rule sequence, applied in this order by
#: ``optimize_plan``. Order matters: pushdown before reordering (theta
#: placement affects join selectivity estimates), reordering before the
#: O1 choice (the swap may create the sparse-left shape O1 wants).
DEFAULT_RULES: tuple[Rule, ...] = (
    OrderScanFilters(),
    PushResidualPredicates(),
    ReorderCommutativeJoin(),
    ChooseIntervalWindows(),
    ChooseAggregateIteration(),
    AnnotateFusionSegments(),
    AnnotateColumnarSegments(),
)
