"""Optimization opportunities O1–O3 (paper Section 4.3, Table 1).

* **O1 — Interval Joins** (:attr:`TranslationOptions.join_strategy` =
  ``INTERVAL``): content-based windows anchored on left-side events;
  no slide parameter, no duplicates; wins when the left stream is the
  sparse one.
* **O2 — Aggregations for iterations**
  (:attr:`TranslationOptions.iteration_strategy` = ``"aggregate"``):
  replaces the m-way self-join with a windowed count + threshold;
  approximate (one output per window); enables the Kleene+ variation;
  cannot express Kleene* (empty windows never fire).
* **O3 — Equi-Join partitioning**
  (:attr:`TranslationOptions.partition_attribute` or auto-detected
  equi predicates): turns joins into key-partitionable Equi Joins,
  unlocking parallel execution on the simulated cluster.

The options compose (the paper evaluates O1+O3 and O2+O3 in Figures 4–6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import OptimizationError
from repro.mapping.plan import WindowStrategy
from repro.sea.ast import Iteration, Pattern
from repro.sea.predicates import classify_conjuncts


@dataclass(frozen=True)
class TranslationOptions:
    """Knobs of the CEP-to-ASP translator.

    The defaults produce the plain FASP mapping of the paper's baseline
    evaluation (sliding window joins, join-based iterations, no
    partitioning).
    """

    #: Physical windowing of joins; ``INTERVAL`` enables O1.
    join_strategy: WindowStrategy = WindowStrategy.SLIDING
    #: ``"join"`` (Table 1 default), ``"aggregate"`` (O2, approximate) or
    #: ``"exact"`` (the columnar exact-Kleene operator: every qualifying
    #: composition, bounded and unbounded, Eq. 12 semantics).
    iteration_strategy: str = "join"
    #: Attribute shared by all events used as Equi-Join key (O3). The
    #: paper keys by the sensor ``id``.
    partition_attribute: str | None = None
    #: Additionally honour explicit WHERE equalities like ``a.id = b.id``
    #: as join keys instead of post-join theta predicates.
    auto_equi_keys: bool = True
    #: Reorder commutative operands so low-frequency streams drive
    #: interval-join window creation (Section 5.2.3 discussion). Requires
    #: a type registry with frequency metadata.
    reorder_by_frequency: bool = False
    #: Override the pattern's slide (experiments use 1 minute throughout).
    slide_override: int | None = None
    #: Let sliding window joins emit raw duplicates (Section 3.1.4 study).
    emit_duplicates: bool = False
    #: Compose flat SEQ(n)/AND(n) patterns with a single n-ary window
    #: join (the Beam capability of Section 4.2.2) instead of n-1
    #: consecutive binary joins.
    use_multiway_joins: bool = False

    def __post_init__(self) -> None:
        if self.iteration_strategy not in ("join", "aggregate", "exact"):
            raise OptimizationError(
                f"unknown iteration strategy '{self.iteration_strategy}'"
            )

    # -- named configurations matching the paper's evaluation labels ------

    @staticmethod
    def fasp() -> "TranslationOptions":
        """Plain mapping (paper label: FASP)."""
        return TranslationOptions()

    @staticmethod
    def o1() -> "TranslationOptions":
        """Interval joins (paper label: FASP-O1)."""
        return TranslationOptions(join_strategy=WindowStrategy.INTERVAL)

    @staticmethod
    def o2() -> "TranslationOptions":
        """Aggregation-based iterations (paper label: FASP-O2)."""
        return TranslationOptions(iteration_strategy="aggregate")

    @staticmethod
    def o3(partition_attribute: str = "id") -> "TranslationOptions":
        """Equi-join key partitioning (paper label: FASP-O3)."""
        return TranslationOptions(partition_attribute=partition_attribute)

    @staticmethod
    def o1_o3(partition_attribute: str = "id") -> "TranslationOptions":
        return TranslationOptions(
            join_strategy=WindowStrategy.INTERVAL,
            partition_attribute=partition_attribute,
        )

    @staticmethod
    def o2_o3(partition_attribute: str = "id") -> "TranslationOptions":
        return TranslationOptions(
            iteration_strategy="aggregate",
            partition_attribute=partition_attribute,
        )

    def label(self) -> str:
        """Evaluation label matching the paper's figure legends."""
        applied = []
        if self.join_strategy is WindowStrategy.INTERVAL:
            applied.append("O1")
        if self.iteration_strategy == "aggregate":
            applied.append("O2")
        if self.partition_attribute is not None:
            applied.append("O3")
        return "FASP" if not applied else "FASP-" + "+".join(applied)

    def with_slide(self, slide: int) -> "TranslationOptions":
        return replace(self, slide_override=slide)


def iteration_requires_aggregate(node: Iteration) -> bool:
    """True when ``node`` has no join mapping and O2 is mandatory.

    A bounded ``ITER^m`` has two physical mappings (m−1 self-joins, or
    the O2 windowed count); an *unbounded* iteration (Kleene+) has no
    join form — the paper maps it exclusively through O2's aggregate
    (Section 4.3.2). This predicate is the single authority consulted by
    phase 1 of the compiler, the applicability checker, the O2 rewrite
    rule and the advisor, so they can never disagree about which
    iterations are forced onto the aggregate path.
    """
    return bool(node.minimum_occurrences)


def o2_threshold_met(count: float, minimum: int) -> bool:
    """The O2 match threshold: ``γ_count(*) >= m`` (Section 4.3.2).

    O2 emits a match only when the windowed count (or, for the UDF
    flavour, the longest qualifying run) reaches the pattern's minimum
    occurrence count ``m``. The comparison is *inclusive*; both physical
    variants (plain count and sorted-window UDF) share this predicate so
    they cannot disagree off-by-one at the boundary.
    """
    return count >= minimum


def check_applicability(pattern: Pattern, options: TranslationOptions) -> list[str]:
    """Validate option/pattern combinations; returns advisory notes.

    Raises :class:`OptimizationError` for combinations the paper rules
    out; returns human-readable notes for soft adjustments (recorded in
    the plan for reporting).
    """
    notes: list[str] = []
    root = pattern.root

    if options.iteration_strategy == "aggregate":
        iterations = [n for n in root.walk() if isinstance(n, Iteration)]
        if not iterations:
            notes.append("O2 requested but the pattern has no iteration; ignored")
        for node in iterations:
            if node.condition_kind == "consecutive":
                notes.append(
                    "O2 with an inter-event condition uses the sorted-window "
                    "UDF variant (approximate, Section 4.3.2)"
                )

    if options.partition_attribute is None and options.auto_equi_keys:
        _single, equi, _multi = classify_conjuncts(pattern.where)
        if equi:
            notes.append(
                "equi predicates detected; joins partition by "
                + ", ".join(c.render() for c in equi)
            )

    for node in root.walk():
        if isinstance(node, Iteration) and iteration_requires_aggregate(node):
            if options.iteration_strategy == "join":
                notes.append(
                    "unbounded iteration (Kleene+) has no join mapping; "
                    "switching the iteration strategy to 'aggregate' "
                    "(Section 4.3.2) — use iteration_strategy='exact' for "
                    "the exact composition-per-match variant"
                )
    return notes
