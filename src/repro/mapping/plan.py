"""Logical ASP query plans — the target of the operator mapping.

The translator (Section 4 of the paper) rewrites a SEA pattern into a
relational-style plan over streams. The plan is an intermediate
representation between the pattern AST and the physical dataflow:

* :mod:`repro.mapping.rules` builds plans from patterns (Table 1),
* :mod:`repro.mapping.sql` renders plans as the SQL-ish listings of the
  paper (Listings 4, 6, 8),
* :mod:`repro.mapping.translator` compiles plans to executable dataflows
  on the :mod:`repro.asp` engine.

Every node tracks the positional ``aliases`` of the events its output
items are composed of, so predicates can be evaluated against composed
matches at any plan position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.sea.predicates import Predicate


class JoinKind(Enum):
    """Logical join flavour (paper Table 1)."""

    CROSS = "cross"     # Cartesian product ×  (conjunction)
    THETA = "theta"     # Theta Join ⋈θ        (sequence / iteration)
    EQUI = "equi"       # Equi Join ⋈c         (optimization O3)


class WindowStrategy(Enum):
    """Physical windowing of a join (Section 4.3.1)."""

    SLIDING = "sliding"    # explicit sliding windows, Eq. 4/5
    INTERVAL = "interval"  # optimization O1


@dataclass(frozen=True)
class PlanNode:
    """Base class; ``aliases`` is the positional event composition."""

    @property
    def aliases(self) -> tuple[str, ...]:
        raise NotImplementedError

    def inputs(self) -> tuple["PlanNode", ...]:
        return ()

    def walk(self) -> Iterator["PlanNode"]:
        yield self
        for node in self.inputs():
            yield from node.walk()

    def label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class StreamScan(PlanNode):
    """Leaf: one event type with pushed-down single-alias filters."""

    event_type: str
    alias: str
    filters: tuple[Predicate, ...] = ()

    @property
    def aliases(self) -> tuple[str, ...]:
        return (self.alias,)

    def label(self) -> str:
        suffix = f" σ[{' ∧ '.join(p.render() for p in self.filters)}]" if self.filters else ""
        return f"Scan({self.event_type} {self.alias}){suffix}"


@dataclass(frozen=True)
class SchemaAlign(PlanNode):
    """Map establishing union compatibility (disjunction mapping)."""

    input: PlanNode
    target_type: str

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.input.aliases

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Map[align → {self.target_type}]"


@dataclass(frozen=True)
class UnionAll(PlanNode):
    """Set union ∪ — the disjunction mapping (Eq. 11 ≡ relational union)."""

    parts: tuple[PlanNode, ...]

    @property
    def aliases(self) -> tuple[str, ...]:
        # Disjunction emits single events; by convention the alias of the
        # first operand names the unified stream.
        return self.parts[0].aliases

    def inputs(self) -> tuple[PlanNode, ...]:
        return self.parts

    def label(self) -> str:
        return f"Union[{len(self.parts)}]"


@dataclass(frozen=True)
class WindowJoin(PlanNode):
    """Binary window join.

    ``ordered=True`` adds the sequence theta predicate
    ``max(left.ts) < min(right.ts)`` (Eq. 10); ``equi_keys`` holds
    attribute pairs ``(left_attr_of_alias, right_attr_of_alias)`` driving
    O3 partitioning; ``extra_theta`` are WHERE conjuncts evaluable once
    both sides are available; ``iter_condition_alias_pair`` optionally
    names the consecutive-pair condition of an iteration.
    """

    left: PlanNode
    right: PlanNode
    kind: JoinKind
    strategy: WindowStrategy
    ordered: bool
    window_size: int
    window_slide: int
    equi_keys: tuple[tuple[tuple[str, str], tuple[str, str]], ...] = ()
    extra_theta: tuple[Predicate, ...] = ()
    emit_ts: str = "min"
    #: Opaque inter-event condition of an iteration self-join, applied to
    #: (last event of left, first event of right). Not renderable to SQL;
    #: shown as a note instead.
    consecutive_condition: object | None = None

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.left.aliases + self.right.aliases

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        symbol = {JoinKind.CROSS: "×", JoinKind.THETA: "⋈θ", JoinKind.EQUI: "⋈c"}[self.kind]
        strategy = "interval" if self.strategy is WindowStrategy.INTERVAL else "sliding"
        order = " ordered" if self.ordered else ""
        keys = ""
        if self.equi_keys:
            keys = " keys[" + ", ".join(
                f"{l[0]}.{l[1]}={r[0]}.{r[1]}" for l, r in self.equi_keys
            ) + "]"
        return f"Join{symbol}[{strategy}{order}{keys}]"


@dataclass(frozen=True)
class MultiWayJoin(PlanNode):
    """n-ary window join — the Beam-only form of Listing 8.

    Available when every operand is a plain scan and the translator's
    ``use_multiway_joins`` option is set (paper Section 4.2.2: only Beam
    supports composing more than two streams per Window Join; other
    ASPSs fall back to consecutive binary joins).
    """

    parts: tuple[StreamScan, ...]
    ordered: bool
    window_size: int
    window_slide: int
    key_attribute: str | None = None
    extra_theta: tuple[Predicate, ...] = ()

    @property
    def aliases(self) -> tuple[str, ...]:
        out: tuple[str, ...] = ()
        for part in self.parts:
            out = out + part.aliases
        return out

    def inputs(self) -> tuple[PlanNode, ...]:
        return self.parts

    def label(self) -> str:
        symbol = " ⋈ " if self.ordered else " × "
        key = f" by {self.key_attribute}" if self.key_attribute else ""
        return f"MultiWayJoin[{symbol.join(p.event_type for p in self.parts)}{key}]"


@dataclass(frozen=True)
class CountAggregate(PlanNode):
    """Windowed count with threshold — the O2 iteration mapping.

    Emits one approximate match per (key, window) with at least
    ``minimum`` qualifying events (``γ_count(*)(T)`` then ``count >= m``).
    """

    input: PlanNode
    minimum: int
    window_size: int
    window_slide: int
    key_attribute: str | None = None
    #: "count" or "udf" (the UDF variant restoring inter-event conditions).
    flavour: str = "count"
    #: Opaque inter-event condition for the UDF flavour.
    condition: object | None = None

    @property
    def aliases(self) -> tuple[str, ...]:
        # The aggregate output is a synthetic event, not a composition.
        return (f"{self.input.aliases[0]}#agg",)

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        key = f" by {self.key_attribute}" if self.key_attribute else ""
        return f"γ{self.flavour}(*) >= {self.minimum}{key}"


@dataclass(frozen=True)
class NseqPrepare(PlanNode):
    """Union(T1, T2) + next-occurrence UDF of the NSEQ mapping.

    Output events are the T1 events enriched with ``a_ts``; the following
    ordered join with T3 adds the selection ``a_ts > e3.ts``.
    """

    first: StreamScan
    negated: StreamScan
    window_size: int
    keyed: bool = False

    @property
    def aliases(self) -> tuple[str, ...]:
        return (self.first.alias,)

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.first, self.negated)

    def label(self) -> str:
        return f"UDF[next {self.negated.event_type} after {self.first.event_type} within W]"


@dataclass(frozen=True)
class PostFilter(PlanNode):
    """Residual WHERE conjuncts applied to composed matches."""

    input: PlanNode
    predicates: tuple[Predicate, ...]

    @property
    def aliases(self) -> tuple[str, ...]:
        return self.input.aliases

    def inputs(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"σ[{' ∧ '.join(p.render() for p in self.predicates)}]"


@dataclass(frozen=True)
class LogicalPlan:
    """Root container: the plan plus bookkeeping for reporting."""

    root: PlanNode
    pattern_name: str
    window_size: int
    window_slide: int
    notes: tuple[str, ...] = field(default_factory=tuple)

    def explain(self) -> str:
        """Indented operator-tree rendering."""
        lines: list[str] = [f"LogicalPlan[{self.pattern_name}]"]

        def visit(node: PlanNode, depth: int) -> None:
            lines.append("  " * depth + "- " + node.label())
            for child in node.inputs():
                visit(child, depth + 1)

        visit(self.root, 1)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def operators(self) -> list[PlanNode]:
        return list(self.root.walk())

    def num_joins(self) -> int:
        return sum(1 for n in self.root.walk() if isinstance(n, WindowJoin))

    def scans(self) -> list[StreamScan]:
        return [n for n in self.root.walk() if isinstance(n, StreamScan)]
