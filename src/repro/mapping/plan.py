"""Compatibility shim — the plan IR lives in :mod:`repro.mapping.optimizer.ir`.

The multi-phase query compiler (DESIGN.md §11) moved the logical plan
node classes into the ``repro.mapping.optimizer`` package, where phase 1
(:mod:`~repro.mapping.optimizer.build`) constructs them and phase 2
(:mod:`~repro.mapping.optimizer.rules`) rewrites them. This module
re-exports the IR under its historical import path so existing callers
(``from repro.mapping.plan import LogicalPlan``) keep working.
"""

from repro.mapping.optimizer.ir import (
    CountAggregate,
    IterationInfo,
    JoinKind,
    KleeneIterate,
    LogicalPlan,
    MultiWayJoin,
    NseqPrepare,
    Permute,
    PlanFeatures,
    PlanNode,
    PostFilter,
    SchemaAlign,
    StreamScan,
    UnionAll,
    WindowJoin,
    WindowStrategy,
)

__all__ = [
    "CountAggregate",
    "IterationInfo",
    "JoinKind",
    "KleeneIterate",
    "LogicalPlan",
    "MultiWayJoin",
    "NseqPrepare",
    "Permute",
    "PlanFeatures",
    "PlanNode",
    "PostFilter",
    "SchemaAlign",
    "StreamScan",
    "UnionAll",
    "WindowJoin",
    "WindowStrategy",
]
