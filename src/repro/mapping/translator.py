"""Plan-to-dataflow compiler: the executable half of the mapping.

``translate`` takes a SEA pattern, builds its logical plan (Table 1
rules) and compiles the plan into a physical dataflow on the
:mod:`repro.asp` engine — filters push down to per-type scans, joins
become :class:`SlidingWindowJoin`/:class:`IntervalJoin` operators, O2
iterations become window aggregations, and NSEQ becomes the
union + next-occurrence UDF + ordered join of Listing 6.

The result is a :class:`TranslatedQuery`: attach a sink, execute, and
compare against FCEP on identical sources (the paper's methodology).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.asp.datamodel import ComplexEvent, Event, TypeRegistry
from repro.asp.executor import RunResult
from repro.asp.operators.base import Item, constituents
from repro.asp.operators.sink import CollectSink, Sink
from repro.asp.operators.source import Source
from repro.asp.operators.window import IntervalBounds, WindowSpec
from repro.asp.stream import StreamEnvironment, StreamHandle
from repro.errors import TranslationError
from repro.mapping.optimizations import TranslationOptions, o2_threshold_met
from repro.mapping.optimizer import optimize_plan, resolve_cost_model
from repro.mapping.optimizer.build import build_plan
from repro.mapping.optimizer.cost import CostModel
from repro.mapping.optimizer.ir import (
    CountAggregate,
    KleeneIterate,
    LogicalPlan,
    MultiWayJoin,
    NseqPrepare,
    Permute,
    PlanNode,
    PostFilter,
    SchemaAlign,
    StreamScan,
    UnionAll,
    WindowJoin,
    WindowStrategy,
)
from repro.sea.ast import Pattern
from repro.sea.predicates import Predicate, compile_check, compile_mask


def _binding_of(aliases: tuple[str, ...], events: tuple[Event, ...]) -> dict[str, Event]:
    return dict(zip(aliases, events))


def _make_theta(join: WindowJoin) -> Callable[[Item, Item], bool] | None:
    """Compile a join's ordering + predicate constraints into a callable."""
    left_aliases = join.left.aliases
    right_aliases = join.right.aliases
    conjuncts = join.extra_theta
    ordered = join.ordered
    condition = join.consecutive_condition
    if not ordered and not conjuncts and condition is None:
        return None

    def theta(left: Item, right: Item) -> bool:
        if ordered:
            # max/min event time without materializing constituents:
            # ComplexEvent tracks ts_e/ts_b, a bare Event is its own both.
            left_max = left.ts_e if isinstance(left, ComplexEvent) else left.ts
            right_min = right.ts_b if isinstance(right, ComplexEvent) else right.ts
            if left_max >= right_min:
                return False
        if condition is not None:
            left_last = left.events[-1] if isinstance(left, ComplexEvent) else left
            right_first = right.events[0] if isinstance(right, ComplexEvent) else right
            if not condition(left_last, right_first):
                return False
        if conjuncts:
            binding = _binding_of(left_aliases, constituents(left))
            binding.update(_binding_of(right_aliases, constituents(right)))
            for pred in conjuncts:
                if not pred.evaluate(binding):
                    return False
        return True

    return theta


def _make_key_fn(
    side_aliases: tuple[str, ...],
    keys: tuple[tuple[str, str], ...],
) -> Callable[[Item], Any]:
    """Key extractor for one join side: tuple of (alias, attr) values."""
    positions = []
    for alias, attribute in keys:
        try:
            positions.append((side_aliases.index(alias), attribute))
        except ValueError:
            raise TranslationError(
                f"equi key references alias '{alias}' missing from side {side_aliases}"
            ) from None

    if len(positions) == 1:
        idx, attribute = positions[0]

        def single_key(item: Item) -> Any:
            return constituents(item)[idx][attribute]

        return single_key

    def multi_key(item: Item) -> Any:
        events = constituents(item)
        return tuple(events[idx][attribute] for idx, attribute in positions)

    return multi_key


class _Compiler:
    def __init__(
        self,
        env: StreamEnvironment,
        sources: Mapping[str, Source],
        plan: LogicalPlan,
        options: TranslationOptions | None = None,
        physical_handles: dict[int, StreamHandle] | None = None,
    ):
        self.env = env
        self.sources = sources
        self.plan = plan
        self.options = options or TranslationOptions()
        self._source_handles: dict[str, StreamHandle] = {}
        # One physical source *node* per Source object: a shared stream
        # passed under several type keys is read once and fanned out to
        # per-type routing filters (the `repro serve` ingestion path
        # feeds every scan from one arrival-ordered log this way).
        self._physical_handles: dict[int, StreamHandle] = (
            physical_handles if physical_handles is not None else {}
        )

    def _source_handle(self, event_type: str) -> StreamHandle:
        handle = self._source_handles.get(event_type)
        if handle is None:
            try:
                source = self.sources[event_type]
            except KeyError:
                raise TranslationError(
                    f"no source provided for event type '{event_type}'"
                ) from None
            root = self._physical_handles.get(id(source))
            if root is None:
                root = self.env.add_source(source)
                self._physical_handles[id(source)] = root
            handle = root
            if source.event_type != event_type:
                # Shared physical stream: route by type first.
                handle = root.filter_type(event_type)
            self._source_handles[event_type] = handle
        return handle

    def compile(self, node: PlanNode) -> StreamHandle:
        if isinstance(node, StreamScan):
            return self._compile_scan(node)
        if isinstance(node, SchemaAlign):
            # All paper streams share the sensor schema, so alignment is
            # an annotation: the unified stream name is recorded without
            # rewriting the event (which must stay identical for match
            # equivalence). Heterogeneous schemas would add renames here.
            target = node.target_type
            return self.compile(node.input).map(
                lambda e, _t=target: e.with_attrs(unified_type=_t)
                if isinstance(e, Event)
                else e,
                name=f"align[{target}]",
            )
        if isinstance(node, UnionAll):
            first, *rest = [self.compile(part) for part in node.parts]
            return first.union(*rest)
        if isinstance(node, WindowJoin):
            return self._compile_join(node)
        if isinstance(node, MultiWayJoin):
            return self._compile_multiway(node)
        if isinstance(node, CountAggregate):
            return self._compile_aggregate(node)
        if isinstance(node, KleeneIterate):
            return self._compile_kleene(node)
        if isinstance(node, NseqPrepare):
            return self._compile_nseq_prepare(node)
        if isinstance(node, PostFilter):
            return self._compile_post_filter(node)
        if isinstance(node, Permute):
            return self._compile_permute(node)
        raise TranslationError(f"cannot compile plan node {node.label()}")

    def _compile_scan(self, node: StreamScan) -> StreamHandle:
        handle = self._source_handle(node.event_type)
        if node.filters:
            handle = self._apply_filters(handle, node.filters, node.alias)
        return handle

    def _apply_filters(
        self, handle: StreamHandle, filters: Sequence[Predicate], alias: str
    ) -> StreamHandle:
        filters = tuple(filters)
        default_alias = alias

        def check(event: Item) -> bool:
            # Each pushed-down conjunct references exactly one alias —
            # possibly a bare iteration alias differing from the
            # indexed scan alias — so bind per conjunct.
            for pred in filters:
                bind = next(iter(pred.aliases()), default_alias)
                if not pred.evaluate({bind: event}):
                    return False
            return True

        # Closure-compiled form of the same conjunction; the batched
        # engine's filter hot path picks it up (the per-event
        # reference path keeps the tree-walking evaluator).
        check.compiled = compile_check(filters)
        # Column-mask form for the columnar engine; ``None`` when any
        # conjunct falls outside the maskable (core-attribute) subset.
        check.columnar = compile_mask(filters)
        return handle.filter(check, name=f"filter[{alias}]")

    def _compile_join(self, node: WindowJoin) -> StreamHandle:
        left = self.compile(node.left)
        right = self.compile(node.right)
        theta = _make_theta(node)
        keys = None
        if node.equi_keys:
            left_keys = tuple(lk for lk, _rk in node.equi_keys)
            right_keys = tuple(rk for _lk, rk in node.equi_keys)
            keys = (
                _make_key_fn(node.left.aliases, left_keys),
                _make_key_fn(node.right.aliases, right_keys),
            )
        emit_ts = "min" if node.emit_ts == "min" else "max"
        if node.strategy is WindowStrategy.INTERVAL:
            bounds = (
                IntervalBounds.sequence(node.window_size)
                if node.ordered
                else IntervalBounds.conjunction(node.window_size)
            )
            return left.interval_join(
                right, bounds=bounds, theta=theta, keys=keys, emit_ts=emit_ts
            )
        window = WindowSpec(size=node.window_size, slide=node.window_slide)
        return left.window_join(
            right,
            window=window,
            theta=theta,
            keys=keys,
            emit_ts=emit_ts,
            emit_duplicates=self.options.emit_duplicates,
        )

    def _compile_multiway(self, node: MultiWayJoin) -> StreamHandle:
        from repro.asp.operators.multiway import MultiWayWindowJoin

        handles = [self._compile_scan(scan) for scan in node.parts]
        aliases = node.aliases
        conjuncts = node.extra_theta

        theta = None
        if conjuncts:
            def theta(events, _aliases=aliases, _conjuncts=conjuncts):
                binding = dict(zip(_aliases, events))
                return all(p.evaluate(binding) for p in _conjuncts)

        key_fn = None
        if node.key_attribute is not None:
            attribute = node.key_attribute

            def key_fn(item: Item, _attr: str = attribute) -> Any:
                return item[_attr] if isinstance(item, Event) else item.events[0][_attr]

        operator = MultiWayWindowJoin(
            arity=len(node.parts),
            window=WindowSpec(size=node.window_size, slide=node.window_slide),
            ordered=node.ordered,
            theta=theta,
            key_fn=key_fn,
        )
        join_node = self.env.flow.add_operator(operator)
        for port, handle in enumerate(handles):
            self.env.flow.connect(handle._node_id, join_node, port=port)
        return StreamHandle(self.env, join_node)

    def _compile_aggregate(self, node: CountAggregate) -> StreamHandle:
        source = self.compile(node.input)
        window = WindowSpec(size=node.window_size, slide=node.window_slide)
        key_fn = None
        if node.key_attribute is not None:
            attribute = node.key_attribute

            def key_fn(item: Item, _attr: str = attribute) -> Any:
                return item[_attr] if isinstance(item, Event) else item.events[0][_attr]

        alias = node.input.aliases[0]
        output_type = f"ITER[{alias}]"
        if node.flavour == "udf" and node.condition is not None:
            condition = node.condition
            minimum = node.minimum
            event_type = (
                node.input.event_type if isinstance(node.input, StreamScan) else alias
            )

            def run_udf(pairs):
                """Longest run satisfying the inter-event condition; emit
                its length when it reaches the threshold (approximate O2
                variant, Section 4.3.2)."""
                if not pairs:
                    return []
                best = run = 1
                prev = Event(event_type, ts=pairs[0][0], value=pairs[0][1])
                for ts, value in pairs[1:]:
                    cur = Event(event_type, ts=ts, value=value)
                    run = run + 1 if condition(prev, cur) else 1
                    prev = cur
                    if run > best:
                        best = run
                return [float(best)] if o2_threshold_met(best, minimum) else []

            return source.window_udf(
                window, run_udf, key_fn=key_fn, output_type=output_type
            )
        aggregated = source.window_aggregate(
            window, function="count", key_fn=key_fn, output_type=output_type
        )
        minimum = node.minimum
        return aggregated.filter(
            lambda item: o2_threshold_met(item.value, minimum),
            name=f"count>={minimum}",
        )

    def _compile_kleene(self, node: KleeneIterate) -> StreamHandle:
        source = self.compile(node.input)
        window = WindowSpec(size=node.window_size, slide=node.window_slide)
        key_fn = None
        if node.key_attribute is not None:
            attribute = node.key_attribute

            def key_fn(item: Item, _attr: str = attribute) -> Any:
                return item[_attr] if isinstance(item, Event) else item.events[0][_attr]

        # emit_ts="min" matches the join chain's partial-match convention
        # (ComplexEvent.ts = ts_b), keeping the exact operator
        # frame-identical to the m-1 self-join mapping for bounded ITER.
        return source.kleene_iterate(
            window,
            minimum=node.minimum,
            unbounded=node.unbounded,
            condition=node.condition,
            key_fn=key_fn,
            emit_ts="min",
        )

    def _compile_nseq_prepare(self, node: NseqPrepare) -> StreamHandle:
        first = self._compile_scan(node.first)
        negated = self._compile_scan(node.negated)
        unioned = first.union(negated)
        return unioned.next_occurrence(
            positive_type=node.first.event_type,
            negated_type=node.negated.event_type,
            window_size=node.window_size,
            keyed=node.keyed,
        )

    def _compile_permute(self, node: Permute) -> StreamHandle:
        """Stateless map restoring the canonical constituent order after a
        join reorder, so every match keeps its original ``dedup_key``."""
        source = self.compile(node.input)
        order = node.order

        def permute(item: Item) -> Item:
            if not isinstance(item, ComplexEvent):
                return item
            events = tuple(item.events[i] for i in order)
            return ComplexEvent(events, detection_ts=item.detection_ts, ts=item.ts)

        return source.map(
            permute, name=f"permute[{','.join(map(str, order))}]"
        )

    def _compile_post_filter(self, node: PostFilter) -> StreamHandle:
        source = self.compile(node.input)
        aliases = node.input.aliases
        predicates: tuple[Predicate, ...] = node.predicates

        def check(item: Item) -> bool:
            events = constituents(item)
            binding = _binding_of(aliases, events)
            return all(p.evaluate(binding) for p in predicates)

        return source.filter(check, name="post-filter")


class TranslatedQuery:
    """An executable mapped query: dataflow + plan + result access."""

    def __init__(
        self,
        pattern: Pattern,
        plan: LogicalPlan,
        env: StreamEnvironment,
        output: StreamHandle,
        options: TranslationOptions | None = None,
        sources: Mapping[str, Source] | None = None,
    ):
        self.pattern = pattern
        self.plan = plan
        self.env = env
        self.output = output
        self.options = options or TranslationOptions()
        self.sources = dict(sources) if sources is not None else {}
        self.sink: Sink | None = None
        #: The pre-flight static analysis report (``translate(analyze=True)``).
        self.analysis = None

    def attach_sink(self, sink: Sink | None = None) -> Sink:
        self.sink = self.output.sink(sink)
        return self.sink

    def execute(
        self,
        memory_budget_bytes: int | None = None,
        watermark_interval: int | None = None,
        sample_every: int = 1_000,
        max_out_of_orderness: int = 0,
        backend=None,
        checkpoint_interval: int | None = None,
        checkpoint_store=None,
        fault_plan=None,
        max_restarts: int = 3,
        restart_backoff_s: float = 0.0,
        batch_size: int = 1,
        fusion: bool = False,
        columnar: bool = False,
    ) -> RunResult:
        if self.sink is None:
            self.attach_sink(CollectSink())
        interval = watermark_interval or self.plan.window_slide
        result = self.env.execute(
            memory_budget_bytes=memory_budget_bytes,
            watermark_interval=interval,
            sample_every=sample_every,
            max_out_of_orderness=max_out_of_orderness,
            backend=backend,
            checkpoint_interval=checkpoint_interval,
            checkpoint_store=checkpoint_store,
            fault_plan=fault_plan,
            max_restarts=max_restarts,
            restart_backoff_s=restart_backoff_s,
            batch_size=batch_size,
            fusion=fusion,
            columnar=columnar,
        )
        if self.analysis is not None:
            # Static analysis and runtime observability share one
            # machine-readable surface (the repro.metrics/v1 report).
            result.metrics["analysis"] = self.analysis.summary()
        # The chosen plan (and its rule trace, when the optimizer ran)
        # rides along so a finished run is auditable after the fact.
        result.metrics["plan"] = self.plan.summary()
        return result

    def matches(self) -> list[ComplexEvent]:
        if not isinstance(self.sink, CollectSink):
            raise TranslationError("matches() requires a CollectSink")
        out: list[ComplexEvent] = []
        for item in self.sink.items:
            if isinstance(item, ComplexEvent):
                out.append(item)
            else:
                # Single-event matches (disjunction, O2 aggregates).
                out.append(ComplexEvent((item,)))
        return out

    def projected_matches(self) -> list[dict[str, Any]]:
        """Matches with the pattern's RETURN clause applied.

        ``RETURN *`` (the default) concatenates every attribute of every
        participating event, prefixed with its alias (the paper's default
        output definition); an explicit projection list returns exactly
        those ``alias.attribute`` entries. Aggregate outputs (O2) expose
        their synthetic event under the plan's output alias.
        """
        aliases = self.plan.root.aliases
        returns = self.pattern.returns
        out: list[dict[str, Any]] = []
        for match in self.matches():
            binding = dict(zip(aliases, match.events))
            if returns.is_star:
                row: dict[str, Any] = {}
                for alias, event in binding.items():
                    for attr_name, value in event.as_dict().items():
                        row[f"{alias}.{attr_name}"] = value
            else:
                row = {}
                for item in returns.projection:
                    alias, _, attr_name = item.partition(".")
                    if not attr_name:
                        raise TranslationError(
                            f"RETURN entry {item!r} must be alias.attribute"
                        )
                    if alias not in binding:
                        raise TranslationError(
                            f"RETURN references unknown alias '{alias}' "
                            f"(available: {list(binding)})"
                        )
                    row[item] = binding[alias][attr_name]
            row["ts_b"], row["ts_e"] = match.ts_b, match.ts_e
            out.append(row)
        return out

    def explain(self) -> str:
        return self.plan.explain() + "\n\n" + self.env.explain()


def translate(
    pattern: Pattern,
    sources: Mapping[str, Source],
    options: TranslationOptions | None = None,
    registry: TypeRegistry | None = None,
    analyze: bool = True,
    optimize: str = "off",
    profile_from: str | None = None,
    cost_model: CostModel | None = None,
    allow_approximate: bool = False,
    rules=None,
) -> TranslatedQuery:
    """Map a CEP pattern onto an executable ASP dataflow (Section 4).

    The multi-phase compiler: phase 1 builds the logical plan (Table 1),
    phase 2 — enabled with ``optimize="static"`` or ``"profile"``, or by
    passing a ``cost_model`` directly — applies the rewrite rules of
    :mod:`repro.mapping.optimizer` under that cost model
    (``profile_from`` names the prior run's metrics report feeding the
    ``profile`` model), and the remaining phases compile the plan to a
    dataflow. Optimized plans stay byte-identical in output to the
    default plan unless ``allow_approximate`` opts into O2 — and any
    plan that does carry the O2 count surfaces an RA304 lint warning
    pointing at the exact columnar alternative
    (``iteration_strategy="exact"``).

    Unless ``analyze=False``, the static plan verifier
    (:mod:`repro.analysis`) pre-flights the result — schema resolution,
    window sanity, state boundedness, O3 partition safety and UDF purity
    — and raises :class:`~repro.errors.StaticAnalysisError` (a
    :class:`TranslationError`) on error-level findings, so a statically
    unsafe plan never reaches execution. The verifier sees the
    *optimized* plan: what it certifies is what runs.
    """
    options = options or TranslationOptions()
    plan = build_plan(pattern, options, registry=registry)
    model = (
        cost_model
        if cost_model is not None
        else resolve_cost_model(optimize, registry, profile_from)
    )
    if model is not None:
        plan = optimize_plan(
            plan,
            options,
            model,
            registry=registry,
            allow_approximate=allow_approximate,
            rules=rules,
        )
    env = StreamEnvironment(name=f"{pattern.name}[{options.label()}]")
    compiler = _Compiler(env, sources, plan, options)
    output = compiler.compile(plan.root)
    query = TranslatedQuery(pattern, plan, env, output, options, sources)
    if analyze:
        from repro.analysis import analyze_query

        report = analyze_query(query, registry=registry)
        query.analysis = report
        report.raise_for_errors()
    return query
