"""Compatibility shim — phase 1 lives in :mod:`repro.mapping.optimizer.build`.

The multi-phase query compiler (DESIGN.md §11) moved the Table-1 mapping
rules (pattern AST → logical plan IR) into the
``repro.mapping.optimizer`` package. This module re-exports
``build_plan`` under its historical import path so existing callers
(``from repro.mapping.rules import build_plan``) keep working. The
rewrite rules of phase 2 live in :mod:`repro.mapping.optimizer.rules`.
"""

from repro.mapping.optimizer.build import build_plan

__all__ = ["build_plan"]
