"""Selection policies of order-based CEP systems (paper Section 3.1.4).

* ``SKIP_TILL_ANY_MATCH`` (stam) — any combination of relevant events
  forms a match regardless of irrelevant events in between. The most
  flexible and most expensive policy (worst-case exponential); it is the
  policy the paper's set semantics correspond to, and the one used for
  all FCEP-vs-FASP comparisons (``followedByAny`` /
  ``times(n).allowCombinations()`` / ``notFollowedBy``).
* ``SKIP_TILL_NEXT_MATCH`` (stnm) — irrelevant events are ignored but a
  partial match only consumes the *next* relevant event
  (``followedBy``).
* ``STRICT_CONTIGUITY`` (sc) — matched events must occur directly after
  one another with no event in between (``next``).

The stam result set is a superset of the other two policies' results
(paper Section 3.1.4); property tests assert exactly that.
"""

from __future__ import annotations

from enum import Enum


class SelectionPolicy(Enum):
    SKIP_TILL_ANY_MATCH = "skip-till-any-match"
    SKIP_TILL_NEXT_MATCH = "skip-till-next-match"
    STRICT_CONTIGUITY = "strict-contiguity"

    @property
    def short_name(self) -> str:
        return {"skip-till-any-match": "stam",
                "skip-till-next-match": "stnm",
                "strict-contiguity": "sc"}[self.value]

    @property
    def flink_operator(self) -> str:
        """The FlinkCEP API call expressing this policy for a sequence."""
        return {
            SelectionPolicy.SKIP_TILL_ANY_MATCH: ".followedByAny()",
            SelectionPolicy.SKIP_TILL_NEXT_MATCH: ".followedBy()",
            SelectionPolicy.STRICT_CONTIGUITY: ".next()",
        }[self]


STAM = SelectionPolicy.SKIP_TILL_ANY_MATCH
STNM = SelectionPolicy.SKIP_TILL_NEXT_MATCH
STRICT = SelectionPolicy.STRICT_CONTIGUITY
