"""Match post-processing helpers shared by tests and experiments."""

from __future__ import annotations

from typing import Iterable

from repro.asp.datamodel import ComplexEvent


def dedup(matches: Iterable[ComplexEvent]) -> list[ComplexEvent]:
    """Remove duplicate matches (same contributing events, same order)."""
    seen: set[tuple] = set()
    out: list[ComplexEvent] = []
    for match in matches:
        key = match.dedup_key()
        if key not in seen:
            seen.add(key)
            out.append(match)
    return out


def dedup_unordered(matches: Iterable[ComplexEvent]) -> list[ComplexEvent]:
    """Dedup ignoring the order of contributing events (AND is
    commutative, so its mapped and reference matches may differ in
    positional order)."""
    seen: set[tuple] = set()
    out: list[ComplexEvent] = []
    for match in matches:
        key = match.ordered_dedup_key()
        if key not in seen:
            seen.add(key)
            out.append(match)
    return out


def output_selectivity(num_matches: int, num_events: int) -> float:
    """The paper's output selectivity: #matches / #events, in percent."""
    if num_events == 0:
        return 0.0
    return 100.0 * num_matches / num_events


def stnm_from_stam(matches: Iterable[ComplexEvent]) -> list[ComplexEvent]:
    """Construct the skip-till-next-match result from a stam result set.

    Paper Section 3.1.4: "skip-till-next-match results can be constructed
    from skip-till-any-match". Under stnm, a partial match always
    consumes the *next* qualifying event, so for each distinct starting
    event the stnm match is the lexicographically smallest timestamp
    chain among that start's stam matches.
    """
    by_start: dict[tuple, ComplexEvent] = {}
    for match in matches:
        first = match.events[0]
        start_key = (first.event_type, first.ts, first.id, first.value)
        chain = tuple(e.ts for e in match.events[1:])
        current = by_start.get(start_key)
        if current is None or chain < tuple(e.ts for e in current.events[1:]):
            by_start[start_key] = match
    ordered = sorted(
        by_start.values(), key=lambda m: (m.events[0].ts, m.dedup_key())
    )
    return ordered


def strict_contiguity_reference(pattern, events) -> list[ComplexEvent]:
    """Brute-force reference for the strict-contiguity policy.

    Paper Section 3.1.4: strict contiguity requires all participating
    events to occur directly after one another — equivalently, every run
    of ``len(stages)`` consecutive stream events whose elements match the
    stages' types and predicates (and fit the window) is a match. Used to
    validate the NFA's ``next()`` semantics.
    """
    stages = [s for s in pattern.stages if not s.negated]
    n = len(stages)
    out: list[ComplexEvent] = []
    ordered = list(events)
    for start in range(len(ordered) - n + 1):
        window_events = ordered[start:start + n]
        if window_events[-1].ts - window_events[0].ts >= pattern.window_size:
            continue
        if any(a.ts >= b.ts for a, b in zip(window_events, window_events[1:])):
            continue
        if all(stage.accepts(e) for stage, e in zip(stages, window_events)):
            out.append(ComplexEvent(tuple(window_events)))
    return out
