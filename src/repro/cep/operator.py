"""The unary CEP operator — the HSPS integration the paper critiques.

FlinkCEP embeds the whole pattern as *one* stateful operator in the ASP
pipeline (paper Section 1): all input streams must be unioned first, the
NFA runs inside the single operator, and only key partitioning (when the
pattern allows it) parallelizes the work. This module provides exactly
that operator so FCEP-style jobs run on the same executor, sources, and
sinks as the mapped FASP queries — the paper's "same system, excluding
cross-system differences" methodology (Section 5.1.1).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.asp.datamodel import Event
from repro.asp.operators.base import Item, StatefulOperator
from repro.asp.time import Watermark
from repro.cep.nfa import Nfa
from repro.cep.pattern_api import CepPattern

KeyFn = Callable[[Event], Any]

_GLOBAL = "__global__"


class CepOperator(StatefulOperator):
    """Unary operator hosting one NFA (or one NFA per key).

    ``key_fn`` enables the only parallelization dimension FCEP has
    (Section 5.1.2: "FCEP can leverage partitioning by key and otherwise
    runs on a single thread"); the simulated cluster uses it to split the
    key space over task slots.
    """

    kind = "cep"
    arity = 1

    def __init__(self, pattern: CepPattern, key_fn: KeyFn | None = None,
                 name: str | None = None):
        super().__init__(name or f"cep[{pattern.name}]")
        self.pattern = pattern
        self.key_fn = key_fn
        self._nfas: dict[Any, Nfa] = {}
        self._handle = None
        self.matches = 0

    @property
    def key_parallel_safe(self) -> bool:
        # A keyed NFA never combines events across keys, so hash
        # partitioning the key space partitions its state exactly.
        return self.key_fn is not None

    def state_horizon_ms(self) -> int:
        # Partial matches expire when their WITHIN window elapses.
        return self.pattern.window_size

    def setup(self, registry) -> None:
        super().setup(registry)
        self._handle = self._ensure_handle()

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = self.create_state("nfa-partial-matches")
        return self._handle

    def snapshot_state(self) -> dict[str, Any]:
        snap = super().snapshot_state()
        snap["nfas"] = {key: nfa.snapshot() for key, nfa in self._nfas.items()}
        snap["matches"] = self.matches
        return snap

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        super().restore_state(snapshot)
        # All NFAs share one handle: reset it once here, then each
        # restored NFA re-accounts its own partial matches against it.
        handle = self._ensure_handle()
        handle.reset()
        self._nfas = {}
        for key, nfa_snap in snapshot["nfas"].items():
            nfa = Nfa(self.pattern, state_handle=handle)
            nfa.restore(nfa_snap)
            self._nfas[key] = nfa
        self.matches = snapshot["matches"]

    def _nfa_for(self, key: Any) -> Nfa:
        nfa = self._nfas.get(key)
        if nfa is None:
            nfa = Nfa(self.pattern, state_handle=self._ensure_handle())
            self._nfas[key] = nfa
        return nfa

    def process(self, item: Item, port: int = 0) -> Iterable[Item]:
        if not isinstance(item, Event):
            return ()
        key = self.key_fn(item) if self.key_fn is not None else _GLOBAL
        nfa = self._nfa_for(key)
        out = nfa.process(item)
        self.work_units += 1 + nfa.live_partial_matches() // max(1, len(self._nfas))
        self.matches += len(out)
        return out

    def on_watermark(self, watermark: Watermark) -> Iterable[Item]:
        for nfa in self._nfas.values():
            nfa.prune(watermark.value)
        return ()

    def live_partial_matches(self) -> int:
        return sum(nfa.live_partial_matches() for nfa in self._nfas.values())

    def total_nfa_work(self) -> int:
        return sum(nfa.work_units for nfa in self._nfas.values())

    def collect_metrics(self) -> dict[str, int | float]:
        metrics = super().collect_metrics()
        metrics["matches"] = self.matches
        metrics["nfa_instances"] = len(self._nfas)
        metrics["live_partial_matches"] = self.live_partial_matches()
        metrics["nfa_work_units"] = self.total_nfa_work()
        return metrics
