"""FlinkCEP-analog NFA engine (substrate 2): the paper's baseline."""

from repro.cep.matches import dedup, dedup_unordered, output_selectivity, stnm_from_stam
from repro.cep.nfa import Nfa, PartialMatch, run_nfa
from repro.cep.operator import CepOperator
from repro.cep.pattern_api import (
    CepPattern,
    CepPatternBuilder,
    Stage,
    from_sea_pattern,
)
from repro.cep.policies import STAM, STNM, STRICT, SelectionPolicy

__all__ = [
    "CepOperator", "CepPattern", "CepPatternBuilder", "Nfa", "PartialMatch",
    "STAM", "STNM", "STRICT", "SelectionPolicy", "Stage", "dedup",
    "dedup_unordered", "from_sea_pattern", "output_selectivity", "run_nfa", "stnm_from_stam",
]
