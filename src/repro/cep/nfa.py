"""NFA runtime — the order-based evaluation mechanism of FlinkCEP.

The paper (Sections 2 and 5.1.2) describes the baseline as a
nondeterministic finite automaton: each state holds the *partial matches*
that are prefixes of the pattern; every arriving event is tested against
the partial matches of the preceding state; accepted events extend (and,
under skip-till-any-match, *branch*) partial matches. Windowing is
implicit — a time predicate pruning partial matches — so outdated state
survives until pruning, which is exactly the memory behaviour the paper
measures in Figures 4/5.

The per-event cost of this runtime is proportional to the number of live
partial matches, and the partial-match population grows with selectivity,
window size and pattern length — reproducing the FCEP throughput curves
of Figure 3 without any artificial cost model.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.asp.datamodel import ComplexEvent, Event
from repro.asp.state import StateHandle
from repro.cep.pattern_api import CepPattern, Stage
from repro.cep.policies import STAM, STRICT

#: Approximate bytes per partial match: object + per-event references.
_PM_BASE_BYTES = 120
_PM_EVENT_BYTES = 104


class PartialMatch:
    """A prefix of the pattern: accepted events plus bookkeeping."""

    __slots__ = ("events", "binding", "pos", "start_ts", "last_ts", "blocker_ts")

    def __init__(
        self,
        events: tuple[Event, ...],
        binding: dict[str, Event],
        pos: int,
    ):
        self.events = events
        self.binding = binding
        self.pos = pos
        self.start_ts = events[0].ts
        self.last_ts = events[-1].ts
        self.blocker_ts: int | None = None

    def size_bytes(self) -> int:
        return _PM_BASE_BYTES + _PM_EVENT_BYTES * len(self.events)

    def __repr__(self) -> str:
        types = ",".join(e.event_type for e in self.events)
        return f"PartialMatch([{types}] pos={self.pos})"


class Nfa:
    """Runs one compiled :class:`CepPattern` over a single event stream."""

    def __init__(self, pattern: CepPattern, state_handle: StateHandle | None = None):
        self.pattern = pattern
        self.stages = pattern.stages
        self.window = pattern.window_size
        # Indices of positive (match-contributing) stages.
        self.positive_indices = [
            i for i, s in enumerate(self.stages) if not s.negated
        ]
        self.num_positive = len(self.positive_indices)
        # Negated stages watched while waiting for positive stage ``pos``
        # (i.e. between positive stage pos-1 and positive stage pos).
        self.watch: list[list[Stage]] = [[] for _ in range(self.num_positive)]
        for pos in range(1, self.num_positive):
            lo = self.positive_indices[pos - 1]
            hi = self.positive_indices[pos]
            self.watch[pos] = [
                s for s in self.stages[lo + 1 : hi] if s.negated
            ]
        # Live partial matches grouped by ``pos`` (1 .. num_positive - 1).
        self.partials: list[list[PartialMatch]] = [
            [] for _ in range(self.num_positive)
        ]
        self.handle = state_handle
        self.work_units = 0
        self.matches_emitted = 0
        self.partials_created = 0
        self.partials_pruned = 0

    # -- state accounting -----------------------------------------------------

    def _track_add(self, pm: PartialMatch) -> None:
        self.partials_created += 1
        if self.handle is not None:
            self.handle.adjust(pm.size_bytes(), +1)

    def _track_remove(self, pm: PartialMatch) -> None:
        if self.handle is not None:
            self.handle.adjust(-pm.size_bytes(), -1)

    def live_partial_matches(self) -> int:
        return sum(len(bucket) for bucket in self.partials)

    # -- event processing ----------------------------------------------------------

    def process(self, event: Event) -> list[ComplexEvent]:
        """Advance the NFA by one event; return completed matches."""
        out: list[ComplexEvent] = []
        ts = event.ts
        # Walk positions from deep to shallow so a newly created partial
        # match never consumes the event that created it.
        for pos in range(self.num_positive - 1, 0, -1):
            bucket = self.partials[pos]
            if not bucket:
                continue
            stage = self.stages[self.positive_indices[pos]]
            watched = self.watch[pos]
            stage_accepts = stage.accepts(event)
            blocker_stage = None
            for neg in watched:
                if neg.accepts(event):
                    blocker_stage = neg
                    break
            survivors: list[PartialMatch] = []
            for pm in bucket:
                self.work_units += 1
                if blocker_stage is not None and ts > pm.last_ts:
                    # Eq. 14: a qualifying negated event strictly after the
                    # last accepted event blocks later completions.
                    if pm.blocker_ts is None or ts < pm.blocker_ts:
                        pm.blocker_ts = ts
                keep = True
                if stage_accepts and ts > pm.last_ts and ts - pm.start_ts < self.window:
                    blocked = pm.blocker_ts is not None and pm.blocker_ts < ts
                    ok = not blocked
                    if ok and stage.iterative_condition is not None:
                        ok = stage.iterative_condition(pm.events[-1], event)
                    if ok and stage.binding_condition is not None:
                        ok = stage.binding_condition(pm.binding, event)
                    if ok:
                        self._extend(pm, stage, event, pos, out)
                        if stage.policy is not STAM:
                            # stnm and strict consume: no branching — the
                            # original partial match does not also wait
                            # for later alternatives.
                            keep = False
                elif stage.policy is STRICT and ts > pm.last_ts:
                    # Strict contiguity: any non-matching event kills the
                    # partial match waiting on a strict stage.
                    keep = False
                if keep:
                    survivors.append(pm)
                else:
                    self._track_remove(pm)
            self.partials[pos] = survivors
        # Spawn a fresh partial match when the first stage accepts.
        first = self.stages[self.positive_indices[0]]
        self.work_units += 1
        if first.accepts(event):
            ok = True
            if first.binding_condition is not None:
                ok = first.binding_condition({}, event)
            if ok:
                pm = PartialMatch((event,), {first.name: event}, pos=1)
                if self.num_positive == 1:
                    self._complete(pm, out)
                else:
                    self.partials[1].append(pm)
                    self._track_add(pm)
        self.matches_emitted += len(out)
        return out

    def _extend(
        self,
        pm: PartialMatch,
        stage: Stage,
        event: Event,
        pos: int,
        out: list[ComplexEvent],
    ) -> PartialMatch | None:
        binding = dict(pm.binding)
        binding[stage.name] = event
        extended = PartialMatch(pm.events + (event,), binding, pos + 1)
        if extended.pos == self.num_positive:
            self._complete(extended, out)
            return None
        self.partials[extended.pos].append(extended)
        self._track_add(extended)
        return extended

    def _complete(self, pm: PartialMatch, out: list[ComplexEvent]) -> None:
        if self.pattern.match_condition is not None:
            if not self.pattern.match_condition(pm.binding):
                return
        out.append(ComplexEvent(pm.events))

    # -- pruning ----------------------------------------------------------------------

    def prune(self, watermark_ts: int) -> int:
        """Drop partial matches whose window elapsed (implicit windowing).

        A partial match cannot be extended once every future event would
        violate ``e.ts - start_ts < W``, i.e. when
        ``watermark >= start_ts + W``.
        """
        dropped = 0
        for pos in range(1, self.num_positive):
            bucket = self.partials[pos]
            if not bucket:
                continue
            survivors = []
            for pm in bucket:
                if pm.start_ts + self.window <= watermark_ts:
                    self._track_remove(pm)
                    dropped += 1
                else:
                    survivors.append(pm)
            self.partials[pos] = survivors
        self.partials_pruned += dropped
        return dropped

    def flush(self) -> None:
        """Drop all remaining state (end of stream)."""
        for pos in range(1, self.num_positive):
            for pm in self.partials[pos]:
                self._track_remove(pm)
            self.partials[pos] = []

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-data form of the live partial matches plus counters.

        Events are immutable and pickle cleanly; bindings are re-keyed by
        stage name. The shared :class:`StateHandle` is NOT captured here —
        the owning operator re-accounts it on restore.
        """
        return {
            "partials": [
                [(pm.events, dict(pm.binding), pm.pos, pm.blocker_ts) for pm in bucket]
                for bucket in self.partials
            ],
            "work_units": self.work_units,
            "matches_emitted": self.matches_emitted,
            "partials_created": self.partials_created,
            "partials_pruned": self.partials_pruned,
        }

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Rebuild partial matches from :meth:`snapshot`.

        Re-accounts each restored match against the handle via
        ``_track_add`` (minus the creation counter, which is restored
        verbatim); the caller must have reset the handle first.
        """
        self.partials = [[] for _ in range(self.num_positive)]
        for bucket_idx, bucket in enumerate(snapshot["partials"]):
            if bucket_idx >= self.num_positive:
                break
            for events, binding, pos, blocker_ts in bucket:
                pm = PartialMatch(tuple(events), dict(binding), pos)
                pm.blocker_ts = blocker_ts
                self.partials[bucket_idx].append(pm)
                if self.handle is not None:
                    self.handle.adjust(pm.size_bytes(), +1)
        self.work_units = snapshot["work_units"]
        self.matches_emitted = snapshot["matches_emitted"]
        self.partials_created = snapshot["partials_created"]
        self.partials_pruned = snapshot["partials_pruned"]


def run_nfa(pattern: CepPattern, events: Iterable[Event]) -> list[ComplexEvent]:
    """Convenience: run a pattern over a finite, time-ordered stream."""
    nfa = Nfa(pattern)
    matches: list[ComplexEvent] = []
    for event in events:
        matches.extend(nfa.process(event))
    nfa.flush()
    return matches
