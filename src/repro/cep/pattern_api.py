"""Fluent FlinkCEP-style pattern API (the baseline's language model).

FlinkCEP exposes a functional builder instead of a declarative PSL
(paper Section 2). This module reproduces that API surface::

    cep = (CepPatternBuilder.begin("q1", "Q").where(lambda e: e.value > 50)
           .followed_by_any("v1", "V")
           .not_followed_by("p1", "PM10")
           .followed_by_any("q2", "Q")
           .within(minutes(15))
           .build())

plus :func:`from_sea_pattern`, which compiles a SEA :class:`Pattern`
into the equivalent CEP pattern using the stam operators the paper uses
for comparability (``followedByAny``, ``times(m).allowCombinations()``,
``notFollowedBy`` — Section 5.1.2). Conjunction and disjunction raise
:class:`~repro.errors.TranslationError`: FlinkCEP does not support them
(paper Table 2), which is itself one of the mapping's selling points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.asp.datamodel import Event
from repro.cep.policies import STAM, STNM, STRICT, SelectionPolicy
from repro.errors import PatternValidationError, TranslationError
from repro.sea.ast import (
    Conjunction,
    Disjunction,
    EventTypeRef,
    Iteration,
    NegatedSequence,
    Pattern,
    Sequence,
)
from repro.sea.predicates import Predicate, classify_conjuncts

#: Stage predicate over the candidate event alone.
StagePredicate = Callable[[Event], bool]
#: Iterative condition over (previously accepted event, candidate).
IterativeCondition = Callable[[Event, Event], bool]
#: Condition over (partial binding alias->event, candidate) — FlinkCEP's
#: IterativeCondition with context access.
BindingCondition = Callable[[dict[str, Event], Event], bool]


@dataclass(frozen=True)
class Stage:
    """One state transition of the NFA.

    ``policy`` is the contiguity requirement *towards the previous
    stage*; it is ignored on the first stage. ``negated`` marks a
    ``notFollowedBy`` stage: it never accepts events into the match but
    blocks partial matches when a qualifying event occurs before the next
    positive stage is reached.
    """

    name: str
    event_type: str
    policy: SelectionPolicy = STAM
    predicate: StagePredicate | None = None
    iterative_condition: IterativeCondition | None = None
    binding_condition: BindingCondition | None = None
    negated: bool = False

    def accepts(self, event: Event) -> bool:
        if event.event_type != self.event_type:
            return False
        return self.predicate is None or self.predicate(event)


@dataclass(frozen=True)
class CepPattern:
    """A complete compiled CEP pattern: stages + implicit window."""

    stages: tuple[Stage, ...]
    window_size: int
    name: str = "cep-pattern"
    #: Final filter over the completed binding (cross-stage predicates
    #: that could not be evaluated earlier).
    match_condition: Callable[[dict[str, Event]], bool] | None = None

    def __post_init__(self) -> None:
        if not self.stages:
            raise PatternValidationError("CEP pattern requires at least one stage")
        if self.window_size <= 0:
            raise PatternValidationError("CEP pattern requires a positive window")
        if self.stages[0].negated or self.stages[-1].negated:
            raise PatternValidationError(
                "negation must sit between two positive stages (negated sequence)"
            )
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise PatternValidationError(f"duplicate stage names in {names}")

    @property
    def positive_stages(self) -> tuple[Stage, ...]:
        return tuple(s for s in self.stages if not s.negated)

    def describe(self) -> str:
        parts = []
        for i, stage in enumerate(self.stages):
            op = "begin" if i == 0 else (
                ".notFollowedBy" if stage.negated else {
                    STAM: ".followedByAny",
                    STNM: ".followedBy",
                    STRICT: ".next",
                }[stage.policy]
            )
            parts.append(f"{op}({stage.name}:{stage.event_type})")
        return "".join(parts) + f".within({self.window_size}ms)"


class CepPatternBuilder:
    """Fluent builder mirroring FlinkCEP's Pattern API."""

    def __init__(self, stages: list[Stage]):
        self._stages = stages
        self._window: int | None = None
        self._match_condition: Callable[[dict[str, Event]], bool] | None = None

    # -- constructors -----------------------------------------------------

    @staticmethod
    def begin(name: str, event_type: str) -> "CepPatternBuilder":
        return CepPatternBuilder([Stage(name, event_type, policy=STAM)])

    # -- stage chaining ------------------------------------------------------

    def _append(self, stage: Stage) -> "CepPatternBuilder":
        self._stages.append(stage)
        return self

    def followed_by_any(self, name: str, event_type: str) -> "CepPatternBuilder":
        """Relaxed contiguity, any alternative (stam)."""
        return self._append(Stage(name, event_type, policy=STAM))

    def followed_by(self, name: str, event_type: str) -> "CepPatternBuilder":
        """Relaxed contiguity, next alternative only (stnm)."""
        return self._append(Stage(name, event_type, policy=STNM))

    def next(self, name: str, event_type: str) -> "CepPatternBuilder":
        """Strict contiguity (sc)."""
        return self._append(Stage(name, event_type, policy=STRICT))

    def not_followed_by(self, name: str, event_type: str) -> "CepPatternBuilder":
        """Negation stage (``notFollowedBy``)."""
        return self._append(Stage(name, event_type, policy=STAM, negated=True))

    # -- stage modifiers --------------------------------------------------------

    def where(self, predicate: StagePredicate) -> "CepPatternBuilder":
        """Attach/conjoin a predicate to the most recent stage."""
        last = self._stages[-1]
        if last.predicate is None:
            new_pred = predicate
        else:
            prev = last.predicate
            new_pred = lambda e, prev=prev, predicate=predicate: prev(e) and predicate(e)
        self._stages[-1] = replace(last, predicate=new_pred)
        return self

    def times(
        self,
        count: int,
        allow_combinations: bool = True,
        condition: IterativeCondition | None = None,
    ) -> "CepPatternBuilder":
        """Expand the last stage into ``count`` repetitions (iteration).

        ``allow_combinations=True`` corresponds to
        ``times(n).allowCombinations()`` — the stam variant the paper
        benchmarks. ``condition`` is the inter-event constraint between
        consecutive repetitions (paper workload ITER_2).
        """
        if count < 1:
            raise PatternValidationError(f"times() requires count >= 1, got {count}")
        base = self._stages.pop()
        policy = STAM if allow_combinations else STNM
        for i in range(1, count + 1):
            self._stages.append(
                Stage(
                    name=f"{base.name}[{i}]" if count > 1 else base.name,
                    event_type=base.event_type,
                    policy=base.policy if i == 1 else policy,
                    predicate=base.predicate,
                    iterative_condition=condition if i > 1 else None,
                    negated=base.negated,
                )
            )
        return self

    def with_binding_condition(self, condition: BindingCondition) -> "CepPatternBuilder":
        """Attach a cross-stage condition evaluated when the most recent
        stage accepts (FlinkCEP's IterativeCondition with context)."""
        last = self._stages[-1]
        self._stages[-1] = replace(last, binding_condition=condition)
        return self

    def with_match_condition(
        self, condition: Callable[[dict[str, Event]], bool]
    ) -> "CepPatternBuilder":
        self._match_condition = condition
        return self

    # -- finalization -------------------------------------------------------------

    def within(self, window_size: int) -> "CepPatternBuilder":
        self._window = window_size
        return self

    def build(self, name: str = "cep-pattern") -> CepPattern:
        if self._window is None:
            raise PatternValidationError("CEP pattern requires .within(window)")
        return CepPattern(
            stages=tuple(self._stages),
            window_size=self._window,
            name=name,
            match_condition=self._match_condition,
        )


def _cross_stage_condition(
    conjuncts: list[Predicate], alias: str
) -> BindingCondition:
    """Compile conjuncts into a binding condition evaluated when ``alias``
    is accepted; only conjuncts fully bound at that point are checked by
    the NFA (it passes the subset whose aliases are available)."""

    def condition(binding: dict[str, Event], candidate: Event) -> bool:
        probe = dict(binding)
        probe[alias] = candidate
        for conjunct in conjuncts:
            if conjunct.aliases() <= probe.keys():
                if not conjunct.evaluate(probe):
                    return False
        return True

    return condition


def from_sea_pattern(pattern: Pattern, policy: SelectionPolicy = STAM) -> CepPattern:
    """Compile a SEA pattern into the equivalent (stam) CEP pattern.

    Mirrors the operator support of FlinkCEP (paper Table 2): SEQ, ITER
    and NSEQ translate; AND and OR raise :class:`TranslationError`.
    """
    root = pattern.root
    single, equi, multi = classify_conjuncts(pattern.where)
    cross_conjuncts: list[Predicate] = list(equi) + list(multi)

    def stage_predicate(alias: str, extra_bare: str | None = None) -> StagePredicate | None:
        preds = list(single.get(alias, []))
        if extra_bare is not None:
            preds.extend(single.get(extra_bare, []))
        if not preds:
            return None
        target = extra_bare if extra_bare is not None else alias

        def check(event: Event) -> bool:
            for p in preds:
                bound_alias = next(iter(p.aliases()), target)
                if not p.evaluate({bound_alias: event}):
                    return False
            return True

        return check

    builder: CepPatternBuilder | None = None

    def add_positive(alias: str, event_type: str, negated: bool = False,
                     bare_alias: str | None = None) -> None:
        nonlocal builder
        if builder is None:
            if negated:
                raise PatternValidationError("pattern cannot start with a negation")
            builder = CepPatternBuilder.begin(alias, event_type)
        elif negated:
            builder.not_followed_by(alias, event_type)
        elif policy is STAM:
            builder.followed_by_any(alias, event_type)
        elif policy is STNM:
            builder.followed_by(alias, event_type)
        else:
            builder.next(alias, event_type)
        pred = stage_predicate(alias, bare_alias)
        if pred is not None:
            builder.where(pred)
        if not negated and cross_conjuncts:
            builder.with_binding_condition(
                _cross_stage_condition(cross_conjuncts, alias)
            )

    def add_node(node) -> None:
        nonlocal builder
        if isinstance(node, EventTypeRef):
            add_positive(node.alias, node.event_type)
            return
        if isinstance(node, Iteration):
            if node.minimum_occurrences:
                raise TranslationError(
                    "FlinkCEP times() expands to a fixed count; unbounded "
                    "Kleene+ is exercised through the O2 mapping instead"
                )
            op = node.operand
            if builder is None:
                builder = CepPatternBuilder.begin(op.alias, op.event_type)
            elif policy is STAM:
                builder.followed_by_any(op.alias, op.event_type)
            elif policy is STNM:
                builder.followed_by(op.alias, op.event_type)
            else:
                builder.next(op.alias, op.event_type)
            pred = stage_predicate(op.alias)
            if pred is not None:
                builder.where(pred)
            builder.times(
                node.count,
                allow_combinations=(policy is STAM),
                condition=node.condition,
            )
            return
        if isinstance(node, Sequence):
            for part in node.parts:
                add_node(part)
            return
        if isinstance(node, NegatedSequence):
            add_node(node.first)
            add_positive(node.negated.alias, node.negated.event_type, negated=True)
            add_node(node.last)
            return
        if isinstance(node, (Conjunction, Disjunction)):
            raise TranslationError(
                f"FlinkCEP does not support {node.keyword} (paper Table 2); "
                "use the CEP-to-ASP mapping instead"
            )
        raise TranslationError(f"cannot compile node {node!r} to a CEP pattern")

    add_node(root)
    assert builder is not None
    builder.within(pattern.window.size)
    if cross_conjuncts:
        # Safety net: any cross-stage conjunct not fully evaluable during
        # acceptance (e.g. referencing indexed iteration aliases) is
        # re-checked on the completed binding.
        def final_check(binding: dict[str, Event]) -> bool:
            for conjunct in cross_conjuncts:
                if conjunct.aliases() <= binding.keys():
                    if not conjunct.evaluate(binding):
                        return False
            return True

        builder.with_match_condition(final_check)
    return builder.build(name=pattern.name)
