"""Figure 3a — elementary operator baseline (SEQ1, ITER3_1, NSEQ1).

Paper expectation: FASP outperforms FCEP for all three patterns (avg
+28 % for SEQ1/ITER3, up to 20x for NSEQ1); FASP-O2 is the fastest
approach for the iteration.
"""

from benchmarks.common import record_rows, assert_fasp_not_dominated, bench_scale, record
from repro.experiments import render_bars, fig3a_baseline, render_figure, render_speedups


def test_fig3a_baseline(benchmark):
    rows = benchmark.pedantic(
        lambda: fig3a_baseline(bench_scale()), rounds=1, iterations=1
    )
    report = render_figure(rows, "Figure 3a: elementary operator baseline")
    report += "\n\n" + render_speedups(rows)
    report += "\n\n" + render_bars(rows, "throughput bars")
    record("fig3a", report)
    record_rows("fig3a", rows)
    assert_fasp_not_dominated(rows)
    # O2 is the fastest approach for the iteration (paper Section 5.2.1).
    iter_rows = [r for r in rows if r.pattern == "ITER3_1"]
    best = max(iter_rows, key=lambda r: r.throughput_tps)
    assert best.approach == "FASP-O2"
