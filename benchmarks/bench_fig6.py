"""Figure 6 — measured scale-out over 1/2/4 shards (128 keys).

The sharded backend executes each keyed plan as per-shard subgraphs and
reports throughput from the measured makespan (slowest shard). Paper
expectation: both approaches scale out (FCEP relatively the most, from
its low baseline), but FCEP never reaches the mapped queries' absolute
throughput (~60 % average gap).
"""

from benchmarks.common import record_rows, bench_scale, record
from repro.experiments import render_bars, fig6_scalability, render_figure, render_speedups

SHARDS = (1, 2, 4)


def test_fig6_scalability(benchmark):
    scale = bench_scale()
    rows = benchmark.pedantic(
        lambda: fig6_scalability(scale, shard_counts=SHARDS),
        rounds=1, iterations=1,
    )
    report = render_figure(rows, "Figure 6: measured scale-out over shards (128 keys)")
    report += "\n\n" + render_speedups(rows)
    report += "\n\n" + render_bars(rows, "throughput bars")
    record("fig6", report)
    record_rows("fig6", rows)

    def tput(pattern, approach, shards):
        return next(
            r.throughput_tps for r in rows
            if r.pattern == pattern and r.approach == approach
            and r.parameter == f"shards={shards}"
        )

    # Key partitioning is exact: the union of shard-local match sets is
    # the global set, so the count must not depend on the shard count.
    for pattern in ("SEQ7", "ITER4"):
        counts = {
            r.matches for r in rows
            if r.pattern == pattern and r.approach == "FASP-O3"
        }
        assert len(counts) == 1, f"{pattern} match count varies across shards"

    # Scale-out helps FCEP — the paper's emphasis: the resource-starved
    # monolith gains the most from additional workers (up to 6x there).
    assert tput("SEQ7", "FCEP", 4) > tput("SEQ7", "FCEP", 1)
    # The mapped queries must show real measured speedup at four shards.
    for approach in ("FASP-O3", "FASP-O1+O3"):
        assert tput("SEQ7", approach, 4) > tput("SEQ7", approach, 1)
    # And FCEP never catches the best mapped variant (paper: ~60 % gap).
    best_fasp = max(
        tput("SEQ7", a, 4) for a in ("FASP-O3", "FASP-O1+O3")
    )
    assert best_fasp >= tput("SEQ7", "FCEP", 4) * 0.9
