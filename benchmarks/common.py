"""Shared benchmark scaffolding.

Every figure benchmark regenerates its paper table/series, prints it, and
persists it under ``benchmarks/results/`` so a ``pytest benchmarks/
--benchmark-only`` run doubles as the reproduction record consumed by
EXPERIMENTS.md.

Scale is controlled with ``REPRO_BENCH_EVENTS`` (approximate events per
run; default 20000 keeps a full figure under a minute while preserving
the paper's shapes — raise it for longer, smoother runs).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments.common import ExperimentRow, Scale

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale(sensors: int = 4) -> Scale:
    events = int(os.environ.get("REPRO_BENCH_EVENTS", "20000"))
    return Scale(events=events, sensors=sensors, seed=42)


def record(name: str, text: str) -> None:
    """Print the paper-style table and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def assert_fasp_not_dominated(rows: list[ExperimentRow], tolerance: float = 0.8) -> None:
    """The paper's headline shape: in every cell the best FASP variant
    reaches at least ``tolerance`` of FCEP's throughput (usually far
    more). Failed FCEP runs count as FASP wins. The tolerance absorbs
    per-slot timing noise in small cluster cells."""
    cells: dict[tuple, list[ExperimentRow]] = {}
    for row in rows:
        cells.setdefault((row.pattern, row.parameter), []).append(row)
    losing = []
    for cell, cell_rows in sorted(cells.items()):
        fcep = next((r for r in cell_rows if r.approach == "FCEP"), None)
        fasp = [r for r in cell_rows if r.approach != "FCEP" and not r.failed]
        if fcep is None or not fasp:
            continue
        best = max(r.throughput_tps for r in fasp)
        if not (fcep.failed or best >= fcep.throughput_tps * tolerance):
            losing.append(f"{cell[0]}/{cell[1]}")
    assert not losing, f"FASP dominated by FCEP in cells: {losing}"


def record_rows(name: str, rows: list[ExperimentRow]) -> None:
    """Persist raw experiment rows as CSV for downstream plotting."""
    import csv

    RESULTS_DIR.mkdir(exist_ok=True)
    with (RESULTS_DIR / f"{name}.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["experiment", "pattern", "approach", "parameter",
             "throughput_tps", "matches", "events_in", "wall_seconds",
             "peak_state_bytes", "failed"]
        )
        for row in rows:
            writer.writerow(
                [row.experiment, row.pattern, row.approach, row.parameter,
                 f"{row.throughput_tps:.1f}", row.matches, row.events_in,
                 f"{row.wall_seconds:.4f}", row.peak_state_bytes, row.failed]
            )
