"""Shared benchmark scaffolding.

Every figure benchmark regenerates its paper table/series, prints it, and
persists it under ``benchmarks/results/`` so a ``pytest benchmarks/
--benchmark-only`` run doubles as the reproduction record consumed by
EXPERIMENTS.md.

Scale is controlled with ``REPRO_BENCH_EVENTS`` (approximate events per
run; default 20000 keeps a full figure under a minute while preserving
the paper's shapes — raise it for longer, smoother runs).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.common import ExperimentRow, Scale

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable cross-experiment summary, rewritten incrementally by
#: :func:`record_rows`. CI's bench-smoke job uploads it as an artifact
#: and diffs it against the committed ``benchmarks/baseline.json`` via
#: ``tools/check_bench_regression.py``.
SUMMARY_PATH = RESULTS_DIR / "summary.json"


def bench_scale(sensors: int = 4) -> Scale:
    events = int(os.environ.get("REPRO_BENCH_EVENTS", "20000"))
    return Scale(events=events, sensors=sensors, seed=42)


def record(name: str, text: str) -> None:
    """Print the paper-style table and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def assert_fasp_not_dominated(rows: list[ExperimentRow], tolerance: float = 0.8) -> None:
    """The paper's headline shape: in every cell the best FASP variant
    reaches at least ``tolerance`` of FCEP's throughput (usually far
    more). Failed FCEP runs count as FASP wins. The tolerance absorbs
    per-slot timing noise in small cluster cells."""
    cells: dict[tuple, list[ExperimentRow]] = {}
    for row in rows:
        cells.setdefault((row.pattern, row.parameter), []).append(row)
    losing = []
    for cell, cell_rows in sorted(cells.items()):
        fcep = next((r for r in cell_rows if r.approach == "FCEP"), None)
        fasp = [r for r in cell_rows if r.approach != "FCEP" and not r.failed]
        if fcep is None or not fasp:
            continue
        best = max(r.throughput_tps for r in fasp)
        if not (fcep.failed or best >= fcep.throughput_tps * tolerance):
            losing.append(f"{cell[0]}/{cell[1]}")
    assert not losing, f"FASP dominated by FCEP in cells: {losing}"


def summary_key(row: ExperimentRow) -> str:
    """Stable identifier of one figure cell: pattern|approach|parameter."""
    return f"{row.pattern}|{row.approach}|{row.parameter}"


def update_summary(name: str, rows: list[ExperimentRow]) -> dict:
    """Fold one experiment's rows into ``benchmarks/results/summary.json``.

    The summary keeps one throughput number per figure cell (plus match
    counts for sanity), so a CI run of any benchmark subset produces a
    diffable document covering exactly what it ran.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    if SUMMARY_PATH.exists():
        summary = json.loads(SUMMARY_PATH.read_text())
    else:
        summary = {"schema": "repro.bench-summary/v1", "experiments": {}}
    summary["experiments"][name] = {
        "events": int(os.environ.get("REPRO_BENCH_EVENTS", "20000")),
        "cells": {
            summary_key(row): {
                "throughput_tps": round(row.throughput_tps, 1),
                "matches": row.matches,
                "events_in": row.events_in,
                "failed": row.failed,
            }
            for row in rows
        },
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return summary


def record_rows(name: str, rows: list[ExperimentRow]) -> None:
    """Persist raw experiment rows as CSV (plotting) and fold them into
    the machine-readable summary (CI regression gate)."""
    import csv

    RESULTS_DIR.mkdir(exist_ok=True)
    with (RESULTS_DIR / f"{name}.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["experiment", "pattern", "approach", "parameter",
             "throughput_tps", "matches", "events_in", "wall_seconds",
             "peak_state_bytes", "failed"]
        )
        for row in rows:
            writer.writerow(
                [row.experiment, row.pattern, row.approach, row.parameter,
                 f"{row.throughput_tps:.1f}", row.matches, row.events_in,
                 f"{row.wall_seconds:.4f}", row.peak_state_bytes, row.failed]
            )
    update_summary(name, rows)
