"""Serve capacity: shared-scan tenant group vs independent tenants.

PR 9's tenant groups co-submit queries through ``translate_many`` so the
service runs one merged dataflow instead of one dataflow per tenant —
exactly the plan this bench compiles. Eight tenants (catalog factories,
several as near-duplicate window/threshold variants, the realistic
multi-tenant shape) run twice over the same workload:

``serve+shared``
    one tenant group: a single ``translate_many`` dataflow, one pass
    over the input serves every tenant (the PR 8 sharing proof's
    shared scan pipelines do the saving);
``serve``
    eight independent submissions: one ``translate`` dataflow per
    tenant, each consuming its own copy of the streams it needs.

Capacity is the logical input size divided by total wall time, so the
shared/unshared ratio is the number of independent tenants one shared
group replaces. Both cells come from the same process on the same box —
``tools/check_bench_regression.py`` holds the ratio to a hard
machine-independent floor (and equal match totals) via
``check_serve_cells``.
"""

from benchmarks.common import bench_scale, record, record_rows
from repro.asp.operators.source import ListSource
from repro.experiments.common import ExperimentRow, qnv_aq_workload
from repro.mapping.multiquery import translate_many
from repro.mapping.translator import translate
from repro.patterns import traffic_congestion
from repro.sea.parser import parse_pattern

TENANTS = 8


def _tenant_patterns():
    """Eight tenants over the catalog; variants differ in window size,
    the shape PR 8's prover groups under one shared scan prefix."""
    factories = [
        (f"congestion-w{w}", traffic_congestion(window_minutes=w))
        for w in (8, 9, 10, 11, 12, 13, 14, 15)
    ]
    # Re-parse under unique tenant names: a group's sinks/metrics are
    # keyed per tenant, and two tenants may submit the same catalog entry.
    return [parse_pattern(p.render(), name=name) for name, p in factories]


def _sources(streams, types):
    return {
        t: ListSource(list(streams[t]), name=f"src[{t}]", event_type=t)
        for t in sorted(types)
    }


def _keys(matches):
    return sorted(repr(m.dedup_key()) for m in matches)


def test_serve_tenant_group(benchmark):
    scale = bench_scale(sensors=4)
    streams = qnv_aq_workload(scale)
    patterns = _tenant_patterns()
    needed = {t for p in patterns for t in p.distinct_event_types()}
    total_events = sum(len(streams[t]) for t in needed)

    def run_shared():
        multi = translate_many(patterns, _sources(streams, needed))
        result = multi.execute()
        return multi, result

    multi, shared_result = benchmark.pedantic(run_shared, rounds=1, iterations=1)

    separate_wall = 0.0
    separate_matches: list[list] = []
    for pattern in patterns:
        query = translate(pattern, _sources(streams, pattern.distinct_event_types()))
        query.attach_sink()
        separate_wall += query.execute().wall_seconds
        separate_matches.append(query.matches())

    # Byte-identity per tenant: the merged dataflow serves every tenant
    # exactly what a dedicated dataflow would.
    for index, pattern in enumerate(patterns):
        assert _keys(multi.matches_of(index)) == _keys(separate_matches[index]), (
            pattern.name
        )

    total_matches = sum(len(ms) for ms in separate_matches)
    rows = [
        ExperimentRow(
            experiment="serve",
            pattern="tenant-group",
            approach="serve+shared",
            parameter=f"tenants={TENANTS}",
            throughput_tps=total_events / shared_result.wall_seconds,
            matches=total_matches,
            events_in=total_events,
            wall_seconds=shared_result.wall_seconds,
            peak_state_bytes=shared_result.peak_state_bytes,
        ),
        ExperimentRow(
            experiment="serve",
            pattern="tenant-group",
            approach="serve",
            parameter=f"tenants={TENANTS}",
            throughput_tps=total_events / separate_wall,
            matches=total_matches,
            events_in=total_events,
            wall_seconds=separate_wall,
            peak_state_bytes=shared_result.peak_state_bytes,
        ),
    ]

    ratio = separate_wall / shared_result.wall_seconds
    lines = [f"Serve capacity: one shared tenant group vs {TENANTS} independent tenants"]
    lines.append(f"  shared group (one pass):     {shared_result.wall_seconds:.3f} s wall")
    lines.append(f"  {TENANTS} independent dataflows:    {separate_wall:.3f} s wall")
    lines.append(f"  shared scan pipelines:       {multi.num_shared_scans}")
    lines.append(f"  capacity ratio:              {ratio:.2f}x")
    record("serve", "\n".join(lines))
    record_rows("serve", rows)

    # The hard 1.5x floor lives in tools/check_bench_regression.py; here
    # only sanity-check that sharing is not a loss.
    assert multi.num_shared_scans >= 1
    assert shared_result.wall_seconds < separate_wall
