"""Columnar engine vs row-batched engine (columnar speedup cells).

Every cell pair runs the identical translated plan twice on the
micro-batch engine — row batches (``batch_size=256``, fusion on) vs
struct-of-arrays columnar batches — so the ratio isolates the columnar
data path: vectorized predicate masks, sorted ts-run bulk buffering,
and the galloping interval-join probe. Match counts must be identical
within each pair.

The headline >=2x cells (SEQ1, ITER3_1: multi-conjunct filters under
the O1 interval join) hold at the default 20 k-event scale; smoke
scales shrink the batches and windows, so the hard floor lives in
``tools/check_bench_regression.py`` against the blessed baseline, not
here. The catalog cells (traffic-congestion, stalled-traffic) are
match-emission-dominated — work shared by both modes — and only need
parity.
"""

from benchmarks.common import bench_scale, record, record_rows
from repro.experiments import columnar_speedup, render_figure


def _pairs(rows):
    cells = {}
    for row in rows:
        base = row.approach.rsplit("+", 1)[0]
        mode = row.approach.rsplit("+", 1)[1]
        cells.setdefault((row.pattern, base, row.parameter), {})[mode] = row
    return cells


def test_columnar_speedup(benchmark):
    rows = benchmark.pedantic(
        lambda: columnar_speedup(bench_scale()), rounds=1, iterations=1
    )
    cells = _pairs(rows)
    report = render_figure(rows, "Columnar engine vs row-batched engine")
    lines = ["columnar speedup (columnar / batched, identical plan):"]
    for (pattern, base, parameter), pair in sorted(cells.items()):
        ratio = pair["columnar"].throughput_tps / pair["batched"].throughput_tps
        lines.append(f"  {pattern:20s} {parameter:12s} {base:10s} {ratio:6.2f}x")
    report += "\n\n" + "\n".join(lines)
    record("columnar", report)
    record_rows("columnar", rows)

    for key, pair in sorted(cells.items()):
        batched, columnar = pair["batched"], pair["columnar"]
        assert columnar.matches == batched.matches, key
        assert columnar.events_in == batched.events_in, key
        # Columnar must never lose to the row engine by more than noise.
        assert columnar.throughput_tps >= batched.throughput_tps * 0.7, (
            key, batched.throughput_tps, columnar.throughput_tps
        )
