"""Figure 5 — resource utilization (memory / CPU proxy) over time.

Paper expectation: FCEP's memory usage matches or exceeds FASP's even
though it sustains a lower rate (NFA partial matches under implicit
windowing); FASP-O3 (sliding windows) shows the highest CPU utilization
because it constantly creates and processes windows.
"""

from benchmarks.common import bench_scale, record
from repro.experiments import fig5_resources
from repro.runtime.metrics import format_bytes

KEYS = (32, 128)


def test_fig5_resource_usage(benchmark):
    traces = benchmark.pedantic(
        lambda: fig5_resources(bench_scale(), key_counts=KEYS, sample_every=500),
        rounds=1, iterations=1,
    )
    lines = ["Figure 5: resource usage (peak tracked state / mean CPU proxy)"]
    for trace in traces:
        cpu = trace.cpu_series()
        mean_cpu = sum(u for _t, u in cpu) / len(cpu) if cpu else 0.0
        lines.append(
            f"  {trace.pattern:6s} k{trace.keys:<4d} {trace.approach:12s} "
            f"peak mem = {format_bytes(trace.peak_memory()):>10s}   "
            f"mean cpu proxy = {mean_cpu:5.1f} %   "
            f"throughput = {trace.throughput_tps:,.0f} tpl/s"
        )
        series = trace.memory_series()
        points = "   ".join(
            f"{t:.2f}s:{format_bytes(b)}" for t, b in series[:: max(1, len(series) // 6)]
        )
        lines.append(f"      memory series: {points}")
    record("fig5", "\n".join(lines))
    # Full time series as CSV for plotting.
    import csv
    from benchmarks.common import RESULTS_DIR

    with (RESULTS_DIR / "fig5_traces.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["pattern", "keys", "approach", "wall_s",
                         "state_bytes", "events_in"])
        for trace in traces:
            for sample in trace.samples:
                writer.writerow([
                    trace.pattern, trace.keys, trace.approach,
                    f"{sample.wall_s:.4f}", sample.state_bytes,
                    sample.events_in,
                ])

    # Per (pattern, keys): FCEP's peak memory >= the best FASP variant's
    # while sustaining no more throughput (the paper's observation 1).
    by_cell = {}
    for t in traces:
        by_cell.setdefault((t.pattern, t.keys), []).append(t)
    for (pattern, keys), cell in by_cell.items():
        fcep = next(t for t in cell if t.approach == "FCEP")
        fasp_best_mem = min(
            t.peak_memory() for t in cell if t.approach != "FCEP"
        )
        assert fcep.peak_memory() >= fasp_best_mem * 0.5, (pattern, keys)
