"""Detection latency (paper Section 5.2.2 latency observations).

Paper expectation: FASP-O1 has the lowest detection latency (75-85 ms)
because interval joins emit eagerly; plain FASP pays the explicit
sliding-window buffering (~240 ms, bounded by the slide); FCEP's latency
additionally grows with load. Here the event-time detection lag isolates
the windowing component: O1 and the NFA detect at lag ~0, sliding
windows buffer until the watermark passes (see EXPERIMENTS.md for the
deviation notes).
"""

from benchmarks.common import bench_scale, record
from repro.experiments import latency_sweep, render_latency


def test_detection_latency(benchmark):
    rows = benchmark.pedantic(
        lambda: latency_sweep(bench_scale(sensors=4)), rounds=1, iterations=1
    )
    record("latency", render_latency(rows))
    by_key = {(r.approach, r.selectivity_pct): r for r in rows}
    for sigma in {r.selectivity_pct for r in rows}:
        o1 = by_key[("FASP-O1", sigma)]
        fasp = by_key[("FASP", sigma)]
        # Eager interval joins detect strictly earlier than lazy sliding
        # windows (the paper's O1-lowest-latency observation).
        assert o1.mean_lag_ms <= fasp.mean_lag_ms
        # All approaches agree on the detected matches.
        assert o1.matches == fasp.matches == by_key[("FCEP", sigma)].matches
    # The sliding-window lag is bounded by slide + watermark cadence
    # (paper Section 3.1.4: the slide upper-bounds the latency overhead).
    for row in rows:
        if row.approach == "FASP":
            assert row.max_lag_ms <= 10 * 60_000
