"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper, but direct probes of the mechanisms behind
them:

* slide-size ablation — the cost of small slides for sliding-window
  joins (the paper's Section 5.2.3 discussion of FASP-O3 on ITER4);
* duplicate-emission ablation — explicit windowing's duplicates
  (Section 3.1.4 impact 2) versus the first-shared-window emission rule;
* watermark-cadence ablation — windowing overhead versus detection lag.
"""

from benchmarks.common import bench_scale, record
from repro.experiments.common import qnv_workload, seq2_pattern
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.harness import run_fasp


def test_slide_size_ablation(benchmark):
    """Larger slides amortize window processing; slide=W (tumbling) is
    cheapest but violates Theorem 2 for cross-boundary matches."""
    scale = bench_scale(sensors=4)
    streams = qnv_workload(scale)
    pattern = seq2_pattern(0.05, window_minutes=15)

    def sweep():
        rows = []
        for slide_min in (1, 5, 15):
            options = TranslationOptions(slide_override=slide_min * 60_000)
            measurement, sink, _res = run_fasp(pattern, streams, options)
            rows.append((slide_min, measurement.throughput_tps, sink.count))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: sliding-window slide size (SEQ1, W=15)"]
    for slide_min, tput, matches in rows:
        lines.append(f"  slide={slide_min:>2d} min: {tput:>12,.0f} tpl/s  matches={matches}")
    record("ablation_slide", "\n".join(lines))
    by_slide = {s: (t, m) for s, t, m in rows}
    # Theorem 2: slide=1 (== the event grid) finds the most matches;
    # coarser slides lose cross-boundary matches.
    assert by_slide[1][1] >= by_slide[5][1] >= by_slide[15][1]


def test_duplicate_emission_ablation(benchmark):
    """Raw duplicate emission (paper Section 3.1.4) multiplies outputs by
    up to W/slide while the pair-test cost stays identical."""
    scale = bench_scale(sensors=2)
    streams = qnv_workload(scale)
    pattern = seq2_pattern(0.05, window_minutes=10)

    def run_pair():
        deduped_m, deduped_sink, _ = run_fasp(
            pattern, streams, TranslationOptions.fasp()
        )
        raw_m, raw_sink, _ = run_fasp(
            pattern, streams, TranslationOptions(emit_duplicates=True)
        )
        return deduped_sink.count, raw_sink.count

    deduped, raw = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    record(
        "ablation_duplicates",
        "Ablation: duplicate emission across overlapping windows\n"
        f"  first-shared-window rule: {deduped} matches\n"
        f"  raw per-window emission:  {raw} matches "
        f"({raw / max(1, deduped):.1f}x duplicates)",
    )
    assert raw >= deduped
    # Every deduplicated match also appears in the raw output.
    assert raw >= deduped > 0


def test_watermark_cadence_ablation(benchmark):
    """Fewer watermark broadcasts amortize window processing (Flink's
    processing-time cadence); more broadcasts reduce detection lag."""
    scale = bench_scale(sensors=2)
    streams = qnv_workload(scale)
    pattern = seq2_pattern(0.02, window_minutes=15)
    from repro.asp.operators.source import ListSource
    from repro.mapping.translator import translate

    def sweep():
        out = []
        for interval_min in (1, 16, 64):
            sources = {
                t: ListSource(list(v), name=t, event_type=t)
                for t, v in streams.items()
            }
            query = translate(pattern, sources, TranslationOptions.fasp())
            query.attach_sink()
            result = query.execute(watermark_interval=interval_min * 60_000)
            out.append((interval_min, result.throughput_tps, query.sink.count))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: watermark cadence (SEQ1, W=15, slide=1)"]
    for interval, tput, matches in rows:
        lines.append(
            f"  watermark every {interval:>2d} min: {tput:>12,.0f} tpl/s  matches={matches}"
        )
    record("ablation_watermarks", "\n".join(lines))
    counts = {m for _i, _t, m in rows}
    assert len(counts) == 1, "cadence must not change the result set"
