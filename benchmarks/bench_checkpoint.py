"""Checkpoint overhead — what fault tolerance costs when nothing fails.

Runs the SEQ1 workload with checkpointing off and on (every 500 events)
and records both cells for the regression gate. The assertion bounds the
overhead: snapshotting every stateful operator at a 500-event cadence
must not halve throughput (it is pickling a few buffers, not the world).
"""

from benchmarks.common import bench_scale, record, record_rows
from repro.experiments.common import ExperimentRow, qnv_workload, seq2_pattern
from repro.runtime.harness import run_fasp
from repro.runtime.metrics import format_tps

CHECKPOINT_INTERVAL = 500


def test_checkpoint_overhead(benchmark):
    scale = bench_scale(sensors=4)
    streams = qnv_workload(scale)
    pattern = seq2_pattern(0.05, window_minutes=15)

    def run_pair():
        rows = []
        checkpoint_metrics = {}
        for parameter, interval in (
            ("checkpoint=off", None),
            ("checkpoint=on", CHECKPOINT_INTERVAL),
        ):
            measurement, _sink, result = run_fasp(
                pattern, streams, checkpoint_interval=interval
            )
            rows.append(
                ExperimentRow.from_measurement("checkpoint", parameter, measurement)
            )
            if interval is not None:
                checkpoint_metrics = result.metrics.get("checkpoints", {})
        return rows, checkpoint_metrics

    rows, chk = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    off, on = rows
    overhead = 1.0 - on.throughput_tps / max(off.throughput_tps, 1e-9)
    record(
        "checkpoint",
        "Checkpoint overhead (SEQ1, interval "
        f"{CHECKPOINT_INTERVAL} events)\n"
        f"  off: {format_tps(off.throughput_tps)}\n"
        f"  on:  {format_tps(on.throughput_tps)}  "
        f"(overhead {overhead:+.1%})\n"
        f"  checkpoints: {chk.get('count', 0)}, "
        f"{chk.get('bytes_total', 0):,} bytes, "
        f"p95 {chk.get('duration_p95_s', 0.0) * 1000:.2f} ms",
    )
    record_rows("checkpoint", rows)
    assert not off.failed and not on.failed
    assert on.matches == off.matches  # checkpointing never alters output
    assert chk.get("count", 0) > 0
    assert on.throughput_tps >= 0.5 * off.throughput_tps, (
        f"checkpointing cost {overhead:.1%} of throughput"
    )
