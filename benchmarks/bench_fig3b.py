"""Figure 3b — impact of output selectivity on SEQ1.

Paper expectation: FCEP's throughput collapses as sigma_o rises (below
500 tpl/s at 30 % on their testbed — up to 150x slower than FASP); FASP
stays flat up to ~1 % and drops moderately at 30 %, where the interval
join (O1) wins by avoiding duplicate window computations.
"""

from benchmarks.common import record_rows, assert_fasp_not_dominated, bench_scale, record
from repro.experiments import render_bars, fig3b_selectivity, render_figure, render_speedups

SELECTIVITIES = (0.003, 0.1, 3.0, 30.0)


def test_fig3b_selectivity(benchmark):
    rows = benchmark.pedantic(
        lambda: fig3b_selectivity(bench_scale(sensors=8), SELECTIVITIES),
        rounds=1, iterations=1,
    )
    report = render_figure(rows, "Figure 3b: output selectivity sweep (SEQ1)")
    report += "\n\n" + render_speedups(rows)
    report += "\n\n" + render_bars(rows, "throughput bars")
    record("fig3b", report)
    record_rows("fig3b", rows)
    assert_fasp_not_dominated(rows)

    def tput(approach, pct):
        return next(
            r.throughput_tps for r in rows
            if r.approach == approach and r.parameter == f"selectivity={pct:g}%"
        )

    # FCEP degrades monotonically in selectivity (allowing small noise).
    assert tput("FCEP", 30.0) < tput("FCEP", 0.003) * 0.75
    # FASP holds (within noise) up to 3 % — the paper's plateau.
    assert tput("FASP", 3.0) > tput("FASP", 0.003) * 0.5
    # The FASP advantage widens with selectivity.
    low_gap = tput("FASP", 0.003) / tput("FCEP", 0.003)
    high_gap = max(tput("FASP", 30.0), tput("FASP-O1", 30.0)) / tput("FCEP", 30.0)
    assert high_gap > low_gap * 0.8
