"""Figure 3c — impact of the window size on SEQ1.

Paper expectation: FCEP drops by ~76 % from W=30 to W=360 (longer
partial-match lifetimes); FASP and FASP-O1 stay constant.
"""

from benchmarks.common import record_rows, assert_fasp_not_dominated, bench_scale, record
from repro.experiments import render_bars, fig3c_window_size, render_figure, render_speedups

WINDOWS = (30, 90, 360)


def test_fig3c_window_size(benchmark):
    rows = benchmark.pedantic(
        lambda: fig3c_window_size(bench_scale(sensors=4), WINDOWS),
        rounds=1, iterations=1,
    )
    report = render_figure(rows, "Figure 3c: window size sweep (SEQ1)")
    report += "\n\n" + render_speedups(rows)
    report += "\n\n" + render_bars(rows, "throughput bars")
    record("fig3c", report)
    record_rows("fig3c", rows)
    assert_fasp_not_dominated(rows)

    def tput(approach, w):
        return next(
            r.throughput_tps for r in rows
            if r.approach == approach and r.parameter == f"W={w}"
        )

    # FASP stays constant across window sizes (within noise)...
    fasp_ratio = tput("FASP", WINDOWS[-1]) / tput("FASP", WINDOWS[0])
    assert fasp_ratio > 0.7
    # ...and beats FCEP at every window size (the robust form of the
    # paper's widening-gap observation; the exact ratio comparison is
    # noise-dominated at reproduction scale).
    for w in WINDOWS:
        best = max(tput("FASP", w), tput("FASP-O1", w))
        assert best > tput("FCEP", w)
