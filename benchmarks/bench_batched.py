"""Batched + fused engine vs serial reference (engine speedup cells).

Every cell pair runs the identical translated plan twice — per-event
reference vs micro-batched (``batch_size=256``, fusion on) — so the ratio
isolates engine overhead, not plan differences. The match counts must be
identical within each pair (the equivalence suite enforces this per
event; here it doubles as a cheap sanity check on the measured runs).

The headline >=2x cells (SEQ1, ITER3_1, traffic-congestion,
stalled-traffic) hold at the default 20 k-event scale; smoke scales
shrink the batches and windows, so the hard floor lives in
``tools/check_bench_regression.py`` against the blessed baseline, not
here. NSEQ1 is order-sensitive (strict arrival-order merge) and is only
required not to regress.
"""

from benchmarks.common import bench_scale, record, record_rows
from repro.experiments import batched_speedup, render_figure


def _pairs(rows):
    cells = {}
    for row in rows:
        base = row.approach.removesuffix("+batched")
        cells.setdefault((row.pattern, base, row.parameter), {})[
            "batched" if row.approach.endswith("+batched") else "serial"
        ] = row
    return cells


def test_batched_speedup(benchmark):
    rows = benchmark.pedantic(
        lambda: batched_speedup(bench_scale()), rounds=1, iterations=1
    )
    cells = _pairs(rows)
    report = render_figure(rows, "Batched + fused engine vs serial reference")
    lines = ["engine speedup (batched / serial, identical plan):"]
    for (pattern, base, parameter), pair in sorted(cells.items()):
        ratio = pair["batched"].throughput_tps / pair["serial"].throughput_tps
        lines.append(f"  {pattern:20s} {parameter:12s} {base:10s} {ratio:6.2f}x")
    report += "\n\n" + "\n".join(lines)
    record("batched", report)
    record_rows("batched", rows)

    for key, pair in sorted(cells.items()):
        serial, batched = pair["serial"], pair["batched"]
        assert batched.matches == serial.matches, key
        assert batched.events_in == serial.events_in, key
        # Batching must never lose to the reference by more than noise.
        assert batched.throughput_tps >= serial.throughput_tps * 0.7, (
            key, serial.throughput_tps, batched.throughput_tps
        )
