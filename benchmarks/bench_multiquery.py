"""Ablation: shared multi-query execution vs independent runs.

Paper Section 6 lists multi-query optimization among the features
traditional CEP systems lack. After the mapping, standard ASP sharing
applies: a batch of patterns shares source scans and identical filter
pipelines and consumes the input once. This bench measures the saving
against running each pattern separately.
"""

from benchmarks.common import bench_scale, record
from repro.asp.operators.source import ListSource
from repro.experiments.common import qnv_workload, seq2_pattern
from repro.mapping.multiquery import translate_many
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern


def _sources(streams):
    return {t: ListSource(list(v), name=t, event_type=t) for t, v in streams.items()}


def test_multiquery_sharing(benchmark):
    scale = bench_scale(sensors=4)
    streams = qnv_workload(scale)
    base = seq2_pattern(0.02, window_minutes=15)
    # Five patterns sharing the same filtered Q/V scans, different windows.
    patterns = [
        parse_pattern(
            base.render().replace("WITHIN 15 MINUTES", f"WITHIN {w} MINUTES"),
            name=f"w{w}",
        )
        for w in (5, 8, 10, 12, 15)
    ]

    def run_batch():
        multi = translate_many(patterns, _sources(streams))
        result = multi.execute()
        return multi, result

    multi, batch_result = benchmark.pedantic(run_batch, rounds=1, iterations=1)

    separate_wall = 0.0
    for pattern in patterns:
        query = translate(pattern, _sources(streams))
        query.attach_sink()
        separate_wall += query.execute().wall_seconds

    lines = ["Ablation: shared multi-query execution (5 congestion variants)"]
    lines.append(f"  shared batch (one pass):   {batch_result.wall_seconds:.3f} s wall")
    lines.append(f"  5 independent runs:        {separate_wall:.3f} s wall")
    lines.append(
        f"  shared scan pipelines: {multi.num_shared_scans} "
        f"(vs {2 * len(patterns)} unshared)"
    )
    record("ablation_multiquery", "\n".join(lines))
    # Matches agree per pattern with the independent runs.
    for index, pattern in enumerate(patterns):
        query = translate(pattern, _sources(streams))
        query.execute()
        assert {m.dedup_key() for m in multi.matches_of(index)} == {
            m.dedup_key() for m in query.matches()
        }
    # Sharing must not be slower than the sum of independent runs.
    assert batch_result.wall_seconds < separate_wall
