"""Plan optimizer vs default plan (plan speedup cells).

Every cell pair runs the identical pattern + workload twice — default
translation vs cost-model-driven rewrite (``+opt``) — so the ratio
isolates the *plan* difference (join order, window mechanism), the dual
of ``bench_batched.py`` which isolates the engine. Matches must be
byte-identical within each pair: the optimizer's contract is that
rewrites never change output.

The cells form an ablation (see ``repro.experiments.optimizer``):
``AND-skew/o1-only`` is the control where the interval rule declines on
the dense-left default order, ``AND-skew/reorder+o1`` shows the
metrics-fed reorder unlocking it, and ``SEQ-wide/static`` shows the
static W/slide heuristic alone. Hard speedup floors live in
``tools/check_bench_regression.py``; this run enforces the
machine-independent intra-pair rules (equal matches, optimizer never
loses beyond noise) at any scale.
"""

from benchmarks.common import bench_scale, record, record_rows
from repro.experiments import optimizer_speedup, render_figure


def _pairs(rows):
    cells = {}
    for row in rows:
        base = row.approach.removesuffix("+opt")
        cells.setdefault((row.pattern, base, row.parameter), {})[
            "opt" if row.approach.endswith("+opt") else "default"
        ] = row
    return cells


def test_optimizer_speedup(benchmark):
    rows = benchmark.pedantic(
        lambda: optimizer_speedup(bench_scale()), rounds=1, iterations=1
    )
    cells = _pairs(rows)
    report = render_figure(rows, "Plan optimizer vs default translation")
    lines = ["plan speedup (optimized / default, identical output):"]
    for (pattern, base, parameter), pair in sorted(cells.items()):
        ratio = pair["opt"].throughput_tps / pair["default"].throughput_tps
        lines.append(f"  {pattern:12s} {parameter:12s} {base:10s} {ratio:6.2f}x")
    report += "\n\n" + "\n".join(lines)
    record("optimizer", report)
    record_rows("optimizer", rows)

    for key, pair in sorted(cells.items()):
        default, optimized = pair["default"], pair["opt"]
        # Byte-identity is checked per event by the equivalence suite;
        # equal match counts here sanity-check the measured runs.
        assert optimized.matches == default.matches, key
        assert optimized.events_in == default.events_in, key
        # The optimizer must never lose to the default plan by more than
        # measurement noise — including the declining control cell.
        assert optimized.throughput_tps >= default.throughput_tps * 0.7, (
            key, default.throughput_tps, optimized.throughput_tps
        )
