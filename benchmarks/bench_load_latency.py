"""Load-dependent detection latency (paper Section 5.2.2's latency story).

The paper measures FCEP's latency growing from 414 ms to 18 s across the
selectivity sweep while FASP stays at ~240 ms: a queueing effect — the
monolithic operator saturates and its queue diverges. This bench feeds
*measured* per-stage service times into the tandem-queue model
(`repro.runtime.ratesim`) and reports expected latency at increasing
fractions of the FCEP saturation rate.
"""

from benchmarks.common import bench_scale, record
from repro.experiments.common import qnv_workload, seq2_pattern
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.harness import run_fasp, run_fcep
from repro.runtime.ratesim import PipelineModel
from repro.workloads.selectivity import calibrate_filter_selectivity

import math


def test_latency_under_load(benchmark):
    scale = bench_scale(sensors=8)
    streams = qnv_workload(scale)

    def measure():
        out = []
        for sigma_pct in (0.1, 3.0, 30.0):
            p = calibrate_filter_selectivity(
                sigma_pct / 100.0, 15 * 60_000, sensors=scale.sensors
            )
            pattern = seq2_pattern(p, window_minutes=15)
            _m, _s, fcep_run = run_fcep(pattern, streams)
            _m, _s, fasp_run = run_fasp(pattern, streams, TranslationOptions.o1())
            out.append((sigma_pct, PipelineModel.from_run(fcep_run),
                        PipelineModel.from_run(fasp_run)))
        return out

    models = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["Load-dependent latency (tandem-queue model from measured runs)",
             "  offered rate = 90% of each selectivity's FCEP saturation"]
    for sigma_pct, fcep, fasp in models:
        rate = 0.9 * fcep.max_sustainable_tps()
        fcep_ms = fcep.expected_latency_s(rate) * 1000
        fasp_ms = fasp.expected_latency_s(rate) * 1000
        lines.append(
            f"  sigma={sigma_pct:5.3g}%: FCEP saturates at "
            f"{fcep.max_sustainable_tps():>11,.0f} tpl/s | latency @90%: "
            f"FCEP {fcep_ms:8.3f} ms vs FASP-O1 {fasp_ms:8.3f} ms"
        )
        # FASP sustains far more than 90% of FCEP's saturation; its queues
        # stay nearly empty at that rate while FCEP's are near-critical.
        assert math.isfinite(fasp_ms)
        assert fasp_ms <= fcep_ms
    record("load_latency", "\n".join(lines))
    # FCEP's saturation rate degrades with selectivity (the paper's 3b).
    saturations = [fcep.max_sustainable_tps() for _s, fcep, _f in models]
    assert saturations[0] > saturations[-1]
