"""Ablation: Beam-style n-ary window join vs the binary join chain.

Paper Section 4.2.2: only Beam can compose more than two streams in one
Window Join; every other ASPS uses n-1 consecutive binary joins with
event-time re-assignment. This bench compares both physical forms of the
same SEQ(n) pattern — result sets must be identical; the n-ary form
avoids intermediate materialization but concentrates the work in one
stage (less pipeline parallelism), which is why the paper's decomposition
can even beat the "more capable" Beam form.
"""

from benchmarks.common import bench_scale, record
from repro.experiments.common import qnv_aq_workload, seq_n_pattern
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.harness import run_fasp


def test_multiway_vs_binary_chain(benchmark):
    scale = bench_scale(sensors=4)
    mixed = qnv_aq_workload(scale)
    order = ["Q", "V", "PM10", "PM2"]

    def sweep():
        rows = []
        for n in (3, 4):
            pattern = seq_n_pattern(n, window_minutes=15, sensors=scale.sensors)
            streams = {t: mixed[t] for t in order[:n]}
            chain_m, chain_sink, _ = run_fasp(
                pattern, streams, TranslationOptions.fasp()
            )
            nary_m, nary_sink, _ = run_fasp(
                pattern, streams, TranslationOptions(use_multiway_joins=True)
            )
            rows.append(
                (n, chain_m.throughput_tps, nary_m.throughput_tps,
                 chain_sink.count, nary_sink.count)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation: binary join chain vs Beam n-ary window join (SEQ(n))"]
    for n, chain_tps, nary_tps, chain_matches, nary_matches in rows:
        lines.append(
            f"  n={n}: chain {chain_tps:>12,.0f} tpl/s | n-ary {nary_tps:>12,.0f} tpl/s"
            f"  (matches {chain_matches} / {nary_matches})"
        )
    record("ablation_multiway", "\n".join(lines))
    for n, _ct, _nt, chain_matches, nary_matches in rows:
        assert chain_matches == nary_matches, f"n={n}: result sets must agree"
