"""Tables 1 and 2 — regenerated from the implementation.

Table 1 (operator mapping overview) and Table 2 (operator support of
FCEP vs FASP) are derived by probing the actual translator and CEP
pattern compiler, then compared against the paper's published cells.
"""

from benchmarks.common import record
from repro.experiments.tables import render_table, table1_rows, table2_rows


def test_table1_mapping_overview(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=3, iterations=1)
    record("table1", render_table(rows, "Table 1: Operator Mapping Overview"))
    mappings = {(r["operator"], r["optimization"]): r["mapping"] for r in rows}
    assert mappings[("Conjunction (AND)", "-")] == "T × T"
    assert mappings[("Sequence (SEQ)", "-")] == "T ⋈θ T"
    assert mappings[("Disjunction (OR)", "-")] == "T1 ∪ T2"
    assert mappings[("Iteration (ITER^m)", "O2")] == "γ_count(*)(T)"
    assert mappings[("Negated Sequence (NSEQ)", "-")] == "UDF(T1 ∪ T2) ⋈θ T3"


def test_table2_operator_support(benchmark):
    rows = benchmark.pedantic(table2_rows, rounds=3, iterations=1)
    record("table2", render_table(rows, "Table 2: Operator Support of FCEP and FASP"))
    matrix = {(r["engine"], r["policy"]): r for r in rows}
    # FASP supports the full SEA operator set; FCEP misses AND and OR.
    assert all(matrix[("FASP", "stam")][op] for op in ("AND", "SEQ", "OR", "ITER", "NSEQ"))
    for policy in ("stam", "stnm", "sc"):
        fcep = matrix[("FCEP", policy)]
        assert not fcep["AND"] and not fcep["OR"]
        assert fcep["SEQ"] and fcep["ITER"] and fcep["NSEQ"]
