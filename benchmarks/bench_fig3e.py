"""Figure 3e — iteration length with inter-event constraint (ITER^m_2).

Paper expectation: FCEP degrades with m (constraint checks against the
ancestor of every partial match); the mapping stays ahead and FASP-O2
(aggregation, via the sorted-window UDF variant) is the fastest.
"""

from benchmarks.common import record_rows, assert_fasp_not_dominated, bench_scale, record
from repro.experiments import render_bars, fig3e_iteration_consecutive, render_figure, render_speedups

LENGTHS = (3, 6, 9)


def test_fig3e_iteration_consecutive(benchmark):
    rows = benchmark.pedantic(
        lambda: fig3e_iteration_consecutive(bench_scale(sensors=4), LENGTHS),
        rounds=1, iterations=1,
    )
    report = render_figure(rows, "Figure 3e: iteration length ITER^m_2 (inter-event constraint)")
    report += "\n\n" + render_speedups(rows)
    report += "\n\n" + render_bars(rows, "throughput bars")
    record("fig3e", report)
    record_rows("fig3e", rows)
    assert_fasp_not_dominated(rows)
    for m in LENGTHS:
        cell = [r for r in rows if r.parameter == f"m={m}"]
        best = max(cell, key=lambda r: r.throughput_tps)
        assert best.approach.startswith("FASP")
