"""Figure 3f — iteration length with threshold filter (ITER^m_3).

Paper expectation: FCEP degrades with m (less steeply than ITER_2); all
FASP variants hold roughly constant, O2 on top (up to 15x vs FCEP).
"""

from benchmarks.common import record_rows, assert_fasp_not_dominated, bench_scale, record
from repro.experiments import render_bars, fig3f_iteration_threshold, render_figure, render_speedups

LENGTHS = (3, 6, 9)


def test_fig3f_iteration_threshold(benchmark):
    rows = benchmark.pedantic(
        lambda: fig3f_iteration_threshold(bench_scale(sensors=4), LENGTHS),
        rounds=1, iterations=1,
    )
    report = render_figure(rows, "Figure 3f: iteration length ITER^m_3 (threshold filter)")
    report += "\n\n" + render_speedups(rows)
    report += "\n\n" + render_bars(rows, "throughput bars")
    record("fig3f", report)
    record_rows("fig3f", rows)
    assert_fasp_not_dominated(rows)

    def tput(approach, m):
        return next(
            r.throughput_tps for r in rows
            if r.approach == approach and r.parameter == f"m={m}"
        )

    assert tput("FCEP", 9) < tput("FCEP", 3)        # FCEP degrades with m
    assert tput("FASP-O2", 9) > tput("FCEP", 9)      # O2 stays on top
