"""Figure 4 — impact of data characteristics (number of keys) with O3.

Paper expectation: with key partitioning enabled both approaches gain,
but the mapped queries outperform FCEP by ~60 % on average; the window
flavours split (interval joins win where each join reduces the output
frequency, e.g. ITER4); O2+O3 dominates iterations; and FCEP fails by
memory exhaustion under high ingestion while FASP completes (probe).
"""

from benchmarks.common import record_rows, bench_scale, record
from repro.experiments import render_bars, fig4_keys, fig4_memory_failure, render_figure, render_speedups

KEYS = (16, 32, 128)


def test_fig4_data_characteristics(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4_keys(bench_scale(), key_counts=KEYS), rounds=1, iterations=1
    )
    report = render_figure(rows, "Figure 4: varying data characteristics (keys)")
    report += "\n\n" + render_speedups(rows)
    report += "\n\n" + render_bars(rows, "throughput bars")
    record("fig4", report)
    record_rows("fig4", rows)
    # All approaches agree on matches per cell (exact variants).
    exact = [r for r in rows if r.approach != "FASP-O2+O3"]
    cells = {}
    for r in exact:
        cells.setdefault((r.pattern, r.parameter), set()).add(r.matches)
    for cell, counts in cells.items():
        assert len(counts) == 1, f"{cell}: {counts}"
    def tput(pattern, approach, keys):
        return next(
            r.throughput_tps for r in rows
            if r.pattern == pattern and r.approach == approach
            and r.parameter == f"keys={keys}"
        )

    # The best mapped variant beats (or at least matches) FCEP per cell.
    from benchmarks.common import assert_fasp_not_dominated

    assert_fasp_not_dominated(rows, tolerance=0.75)
    # FASP leverages additional keys (allowing makespan noise).
    assert tput("SEQ7", "FASP-O1+O3", 128) > tput("SEQ7", "FASP-O1+O3", 16) * 0.7
    # Interval joins beat sliding windows for ITER4 -- the paper's
    # Section 5.2.3 discussion of the slide-size overhead. Small cluster
    # cells carry per-slot timing noise, so require the ordering in the
    # majority of cells rather than every one.
    wins = sum(
        tput("ITER4", "FASP-O1+O3", keys) > tput("ITER4", "FASP-O3", keys)
        for keys in KEYS
    )
    assert wins >= 2, f"interval join won only {wins}/{len(KEYS)} ITER4 cells"
    # O2+O3 is the best mapping for the iteration.
    assert tput("ITER4", "FASP-O2+O3", 128) >= tput("ITER4", "FASP-O1+O3", 128) * 0.8


def test_fig4_memory_exhaustion_probe(benchmark):
    rows = benchmark.pedantic(
        lambda: fig4_memory_failure(bench_scale()), rounds=1, iterations=1
    )
    lines = ["Figure 4 (memory probe): bounded budget, ITER3 workload"]
    for r in rows:
        status = "FAILED (memory exhausted)" if r.failed else "completed"
        lines.append(
            f"  {r.approach:10s} {status:26s} peak state = {r.peak_state_bytes} B"
        )
    record("fig4_memory", "\n".join(lines))
    fcep = next(r for r in rows if r.approach == "FCEP")
    fasp = next(r for r in rows if r.approach != "FCEP")
    assert fcep.failed and not fasp.failed
