"""End-to-end: the pattern catalog over a realistic rush-hour day.

Runs every FCEP-expressible catalog pattern on both engines over
rush-hour traffic (plus air-quality streams for the cross-domain
pattern), with the FASP side configured by the advisor — the complete
product story: declarative pattern -> recommended mapping -> shared
sensors -> alerts, with the NFA baseline as the semantic cross-check.
"""

from benchmarks.common import record
from repro.asp.datamodel import merge_events
from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.cep.matches import dedup
from repro.cep.nfa import run_nfa
from repro.cep.pattern_api import from_sea_pattern
from repro.errors import TranslationError
from repro.mapping.advisor import recommend_options, statistics_from_streams
from repro.mapping.translator import translate
from repro.patterns import CATALOG, catalog_pattern
from repro.runtime.metrics import format_tps
from repro.workloads import generate_rush_hour_traffic
from repro.workloads.airquality import AirQualityConfig, aq_streams


def test_catalog_over_rush_hour_day(benchmark):
    duration = minutes(1440)  # one day
    streams = {
        **generate_rush_hour_traffic(4, duration, seed=17),
        **aq_streams(
            AirQualityConfig(num_sensors=4, duration_ms=duration, seed=17),
            types=("PM10", "PM2"),
        ),
    }
    stats = statistics_from_streams(streams)

    def run_all():
        rows = []
        for name in sorted(CATALOG):
            pattern = catalog_pattern(name)
            options = recommend_options(pattern, stats).options
            approximate = options.iteration_strategy == "aggregate"
            sources = {
                t: ListSource(list(v), name=t, event_type=t)
                for t, v in streams.items()
            }
            query = translate(pattern, sources, options)
            result = query.execute()
            fasp_matches = dedup(query.matches())
            if approximate:
                # O2 emits one aggregate per window: per-combination
                # comparison with the NFA is undefined by design.
                rows.append(
                    (name, options.label(), result.throughput_tps,
                     len(fasp_matches), "approximate (O2)", True, options)
                )
                continue
            try:
                cep = from_sea_pattern(pattern)
                # Cross-check on the morning-rush slice: the unkeyed NFA
                # is quartic on the stalled-traffic iteration, so a
                # full-day baseline run would dominate the whole bench.
                cutoff = minutes(12 * 60)
                slice_streams = {
                    t: [e for e in streams[t] if e.ts < cutoff]
                    for t in pattern.distinct_event_types()
                }
                merged = merge_events(*slice_streams.values())
                fcep_matches = dedup(run_nfa(cep, merged))
                slice_sources = {
                    t: ListSource(v, name=t, event_type=t)
                    for t, v in slice_streams.items()
                }
                slice_query = translate(pattern, slice_sources, options)
                slice_query.execute()
                fasp_slice = dedup(slice_query.matches())
                agrees = {m.dedup_key() for m in fcep_matches} == {
                    m.dedup_key() for m in fasp_slice
                }
                fcep_note = "agrees" if agrees else "DISAGREES"
            except TranslationError:
                agrees = True  # nothing to compare
                fcep_note = "unsupported by FCEP"
            rows.append(
                (name, options.label(), result.throughput_tps,
                 len(fasp_matches), fcep_note, agrees, options)
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["Pattern catalog over one rush-hour day (4 segments/sensors)"]
    for name, label, tput, matches, fcep_note, _agrees, _o in rows:
        lines.append(
            f"  {name:26s} {label:12s} {format_tps(tput):>14s} "
            f"{matches:6d} alerts   [FCEP: {fcep_note}]"
        )
    record("catalog", "\n".join(lines))
    assert all(r[5] for r in rows), "engines disagreed on an exact pattern"
    congestion = next(r for r in rows if r[0] == "traffic-congestion")
    assert congestion[3] > 0, "a rush-hour day must produce congestion alerts"
