"""Figure 3d — impact of the pattern length: nested SEQ(n), n = 2..6.

Paper expectation: FCEP loses throughput with every added source (the
forced union feeds the single NFA); the decomposed mapping stays stable
(13x gap beyond length 4 on the paper's testbed).
"""

from benchmarks.common import record_rows, assert_fasp_not_dominated, bench_scale, record
from repro.experiments import render_bars, fig3d_pattern_length, render_figure, render_speedups

LENGTHS = (2, 3, 4, 5, 6)


def test_fig3d_pattern_length(benchmark):
    rows = benchmark.pedantic(
        lambda: fig3d_pattern_length(bench_scale(sensors=4), LENGTHS),
        rounds=1, iterations=1,
    )
    report = render_figure(rows, "Figure 3d: nested sequence length SEQ(n)")
    report += "\n\n" + render_speedups(rows)
    report += "\n\n" + render_bars(rows, "throughput bars")
    record("fig3d", report)
    record_rows("fig3d", rows)
    assert_fasp_not_dominated(rows)

    def tput(approach, n):
        return next(
            r.throughput_tps for r in rows
            if r.approach == approach and r.parameter == f"n={n}"
        )

    # FCEP at n=6 clearly below FCEP at n=2; FASP keeps a higher fraction.
    assert tput("FCEP", 6) < tput("FCEP", 2)
    fasp_keep = tput("FASP", 6) / tput("FASP", 2)
    fcep_keep = tput("FCEP", 6) / tput("FCEP", 2)
    assert fasp_keep > fcep_keep * 0.9
