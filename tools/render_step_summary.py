#!/usr/bin/env python
"""Render CI reports as GitHub step-summary markdown.

Reads one of this repo's JSON report formats and prints a compact
markdown table, meant to be appended to ``$GITHUB_STEP_SUMMARY`` so the
run page shows the result without downloading artifacts::

    python tools/render_step_summary.py chaos chaos-report.json >> "$GITHUB_STEP_SUMMARY"
    python tools/render_step_summary.py bench benchmarks/results/summary.json >> "$GITHUB_STEP_SUMMARY"
    python tools/render_step_summary.py serve serve-smoke-report.json >> "$GITHUB_STEP_SUMMARY"

Formats:

``chaos``  a ``repro chaos --report`` file: per-query crash/recover
           verdicts (serial + sharded) and the overall gate.
``bench``  a ``benchmarks/results/summary.json`` written by
           ``benchmarks.common.record_rows``: per-cell throughput.
``serve``  a ``tools/serve_smoke.py --report`` file: per-query
           server-vs-batch match counts and byte-identity (plus the
           kill−9/resume/replay line in ``--kill-after`` runs).
``soak``   a ``tools/serve_soak.py --report`` file: tenant lifecycle
           table and queue-depth/round-latency gauges.
``lint``   a ``repro lint --report`` file (``repro.lint/v1``): per-code
           diagnostic counts and the worst findings.

Missing files render a note instead of failing — summaries must never
mask the real job status.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _cell(text: object) -> str:
    """Escape markdown table delimiters inside cell content."""
    return str(text).replace("|", "\\|")


def render_chaos(report: dict) -> list[str]:
    lines = [
        "## Chaos suite",
        "",
        "| query | clean matches | serial crash | sharded crash |",
        "| --- | ---: | --- | --- |",
    ]
    for query in report.get("queries", []):
        serial = query["serial"]
        sharded = query["sharded"]
        serial_ok = "ok" if serial["match"] else "**MISMATCH**"
        serial_cell = f"{serial_ok} (restarts={serial['restarts']})"
        if sharded.get("skipped"):
            sharded_cell = f"skipped ({sharded['skipped']})"
        else:
            sharded_ok = "ok" if sharded["match"] else "**MISMATCH**"
            sharded_cell = f"{sharded_ok} (restarts={sharded['restarts']})"
        lines.append(
            f"| {_cell(query['pattern'])} | {query['clean_matches']} "
            f"| {serial_cell} | {sharded_cell} |"
        )
    verdict = "**OK**" if report.get("ok") else "**FAIL**"
    lines += ["", f"Verdict: {verdict}"]
    return lines


def render_bench(report: dict) -> list[str]:
    lines = ["## Benchmark summary", ""]
    for name, experiment in sorted(report.get("experiments", {}).items()):
        lines += [
            f"### {name}",
            "",
            "| cell | events | matches | throughput (ev/s) |",
            "| --- | ---: | ---: | ---: |",
        ]
        for cell, row in sorted(experiment.get("cells", {}).items()):
            status = " (failed)" if row.get("failed") else ""
            events = row.get("events_in", "-")
            matches = row.get("matches", "-")
            throughput = row.get("throughput_tps", 0)
            lines.append(f"| {_cell(cell)}{status} | {events} | {matches} | {throughput:,.0f} |")
        lines.append("")
    return lines


def render_serve(report: dict) -> list[str]:
    mode = report.get("mode", {})
    title = "## Serve smoke"
    if mode.get("kill_after") is not None:
        title = "## Serve restart (kill −9 → resume → replay)"
    lines = [
        title,
        "",
        f"Streamed **{report.get('events_streamed', '?')}** events over TCP "
        f"to {len(report.get('queries', {}))} live queries "
        f"({report.get('rounds', '?')} processing rounds, "
        f"{report.get('checkpoints', '?')} checkpoints).",
        "",
    ]
    flags = [k for k in ("group", "sharded") if mode.get(k)]
    if flags:
        lines += [f"Mode: {', '.join(flags)}.", ""]
    if mode.get("kill_after") is not None:
        resumed = report.get("resumed") or {}
        lines += [
            f"SIGKILLed the server after **{report.get('killed_after', '?')}** "
            f"events; the restart resumed jobs "
            f"{', '.join(resumed.get('jobs', [])) or '(none)'} from "
            f"{resumed.get('wal_events', '?')} WAL events, and the full-stream "
            f"re-send deduplicated **{report.get('duplicates_on_replay', '?')}** "
            "durable duplicates.",
            "",
        ]
    lines += [
        "| query | server matches | batch matches | byte-identical |",
        "| --- | ---: | ---: | --- |",
    ]
    for name, row in sorted(report.get("queries", {}).items()):
        identical = "yes" if row.get("identical") else "**NO**"
        server = row.get("server_matches", "-")
        batch = row.get("batch_matches", "-")
        lines.append(f"| {name} | {server} | {batch} | {identical} |")
    verdict = "**OK**" if report.get("ok") else "**FAIL**"
    lines += ["", f"Verdict: {verdict}"]
    return lines


def render_soak(report: dict) -> list[str]:
    gauges = report.get("gauges", {})
    trigger = gauges.get("round_trigger_latency_ms", {})
    duration = gauges.get("round_duration_ms", {})
    lines = [
        "## Serve soak",
        "",
        f"**{report.get('tenants', '?')}** tenants for "
        f"{report.get('seconds', '?')} s: {report.get('events_streamed', '?')} "
        f"events streamed, {report.get('submitted', '?')} submits, "
        f"{report.get('cancelled', '?')} cancels, "
        f"{report.get('rounds', '?')} processing rounds "
        f"({gauges.get('slo_rounds', '?')} SLO-triggered).",
        "",
        f"Queue depth max **{gauges.get('queue_depth_max', '?')}**; "
        f"round trigger latency p95 {trigger.get('p95_ms', '?')} ms "
        f"(max {trigger.get('max_ms', '?')} ms); "
        f"round duration p95 {duration.get('p95_ms', '?')} ms.",
        "",
        "| job | tenant | state | rounds | events | matches | max queue |",
        "| --- | --- | --- | ---: | ---: | ---: | ---: |",
    ]
    for job_id, row in sorted(report.get("jobs", {}).items()):
        state = row.get("state", "?")
        if state not in ("drained", "cancelled"):
            state = f"**{state}**"
        lines.append(
            f"| {job_id} | {_cell(row.get('name', '?'))} | {state} "
            f"| {row.get('rounds', '-')} | {row.get('events_processed', '-')} "
            f"| {row.get('matches', '-')} | {row.get('queue_depth_max', '-')} |"
        )
    verdict = "**OK**" if report.get("ok") else "**FAIL**"
    lines += ["", f"Verdict: {verdict}"]
    return lines


def render_lint(report: dict) -> list[str]:
    mode = report.get("mode", "plan")
    lines = [
        f"## Static analysis ({mode} lint)",
        "",
        f"{report.get('errors', '?')} error(s), "
        f"{report.get('warnings', '?')} warning(s) over "
        f"{len(report.get('reports', []))} target(s).",
        "",
    ]
    diags = [
        (sub.get("target", ""), d)
        for sub in report.get("reports", [])
        for d in sub.get("diagnostics", [])
    ]
    if diags:
        lines += [
            "| severity | code | target | message |",
            "| --- | --- | --- | --- |",
        ]
        order = {"error": 0, "warning": 1}
        diags.sort(key=lambda td: (order.get(td[1].get("severity"), 2), td[1].get("code", "")))
        for target, diag in diags[:20]:
            severity = diag.get("severity", "?")
            if severity == "error":
                severity = "**error**"
            where = diag.get("where") or target
            lines.append(
                f"| {severity} | `{diag.get('code', '?')}` "
                f"| {_cell(where)} | {_cell(diag.get('message', ''))} |"
            )
        if len(diags) > 20:
            lines.append(f"| … | | | {len(diags) - 20} more |")
        lines.append("")
    # Sharing proofs: surface what was proven, not only what failed.
    for sub in report.get("reports", []):
        for group in sub.get("groups", []) or []:
            shared = " AND ".join(group.get("shared_filters", []))
            lines.append(
                f"- shared prefix ({group.get('level')}): `{group.get('event_type')}`"
                f" [{_cell(shared)}] across {', '.join(group.get('queries', []))}"
            )
    verdict = "**OK**" if report.get("ok") else "**FAIL**"
    lines += ["", f"Verdict: {verdict}"]
    return lines


RENDERERS = {
    "chaos": render_chaos,
    "bench": render_bench,
    "serve": render_serve,
    "soak": render_soak,
    "lint": render_lint,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("kind", choices=sorted(RENDERERS))
    parser.add_argument("report", help="path to the JSON report")
    args = parser.parse_args(argv)

    path = Path(args.report)
    if not path.exists():
        print(f"_No {args.kind} report at `{path}` (step skipped or failed)._")
        return 0
    try:
        report = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"_Unreadable {args.kind} report at `{path}`: {exc}_")
        return 0
    print("\n".join(RENDERERS[args.kind](report)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
