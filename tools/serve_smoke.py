#!/usr/bin/env python
"""End-to-end smoke of `repro serve` for CI (and local debugging).

Boots the real server as a subprocess (`python -m repro serve`, ephemeral
ports, durable state dir, stdout/stderr captured to ``--log``), then
drives it exactly like a tenant would:

1. submit the catalog queries over the HTTP control API — as separate
   jobs, or (``--group``) as one shared-scan tenant group, plus one job
   whose rounds run on the columnar struct-of-arrays engine
   (``"columnar": true``); ``--sharded`` additionally submits an
   O3-partitioned inline pattern whose rounds run on the sharded
   backend;
2. stream the merged QnV/air-quality workload over the TCP ingestion
   socket (per-source sequence numbers, watermark heartbeats every 500
   events). With ``--kill-after N`` the server is SIGKILLed after N
   events, restarted against the same ``--state-dir``, checked for
   resumed jobs, and the *whole* stream is re-sent (the durable prefix
   must deduplicate);
3. drain, and assert every query's matches are byte-identical to the
   one-shot batch reference computed in this process;
4. assert the metrics endpoint serves a ``repro.metrics/v1`` tree with
   the admission counters, and the checkpoints endpoint a non-empty
   durable chain;
5. stop the server with SIGTERM and require a clean graceful-drain exit.

Exits nonzero on any mismatch; ``--report`` writes a JSON summary that
``tools/render_step_summary.py serve`` renders for the step summary.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py --events 2000 \
        --report serve-smoke-report.json --log serve-smoke.log
    PYTHONPATH=src python tools/serve_smoke.py --events 2000 \
        --group --sharded --kill-after 900 --report serve-restart.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.asp.operators.source import ListSource  # noqa: E402
from repro.asp.runtime import ExecutionSettings, SerialBackend  # noqa: E402
from repro.asp.runtime.fault.chaos import canonical_match_bytes  # noqa: E402
from repro.experiments.common import Scale, qnv_aq_workload  # noqa: E402
from repro.mapping.optimizations import TranslationOptions  # noqa: E402
from repro.mapping.advisor import recommend_options  # noqa: E402
from repro.mapping.translator import translate  # noqa: E402
from repro.patterns import CATALOG  # noqa: E402
from repro.runtime.service import (  # noqa: E402
    ServiceClient,
    merge_streams_for_wire,
    stream_events,
)
from repro.sea.parser import parse_pattern  # noqa: E402

QUERIES = ("traffic-congestion", "street-lighting-demand")
#: The --sharded job: an O3-partitioned pattern the RA40x proof accepts.
SHARDED_NAME = "sharded-id"
SHARDED_PATTERN = "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 10 MINUTES"
#: Always-submitted columnar job: the same catalog query as one of the
#: row jobs, but its rounds run on the struct-of-arrays engine — the
#: byte-identity check against the row-serial batch reference then
#: covers the columnar hot path end to end through the service.
COLUMNAR_NAME = "tc-columnar"
COLUMNAR_QUERY = "traffic-congestion"


def build_streams(events: int, seed: int) -> dict[str, list]:
    """Workload with per-type ts offsets (unique cross-type timestamps,
    so the wire order matches the batch scan-merge order)."""
    scale = Scale(events=events, sensors=8, seed=seed)
    streams = {t: list(evs) for t, evs in qnv_aq_workload(scale).items()}
    for offset, evs in enumerate(streams.values()):
        for event in evs:
            event.ts += offset
    return streams


def _batch_bytes(pattern, options, streams: dict[str, list]) -> bytes:
    sources = {
        t: ListSource(streams[t], name=f"batch[{t}]", event_type=t)
        for t in pattern.distinct_event_types()
    }
    query = translate(pattern, sources, options)
    query.attach_sink()
    settings = ExecutionSettings(watermark_interval=query.plan.window_slide)
    SerialBackend().execute(query.env.flow, settings)
    return canonical_match_bytes(query.matches())


def batch_reference(query_name: str, streams: dict[str, list]) -> bytes:
    if query_name == SHARDED_NAME:
        pattern = parse_pattern(SHARDED_PATTERN, name=SHARDED_NAME)
        return _batch_bytes(
            pattern, TranslationOptions(partition_attribute="id"), streams
        )
    if query_name == COLUMNAR_NAME:
        query_name = COLUMNAR_QUERY  # row-serial reference for the columnar job
    pattern = CATALOG[query_name]()
    return _batch_bytes(pattern, recommend_options(pattern).options, streams)


def wait_for_ready(path: Path, proc: subprocess.Popen, timeout: float) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early with {proc.returncode}")
        if path.exists():
            return json.loads(path.read_text())
        time.sleep(0.1)
    raise RuntimeError(f"server not ready within {timeout}s")


def start_server(
    tmp: str, log_file, state_dir: str | None, ready_name: str
) -> tuple[subprocess.Popen, Path]:
    ready_file = Path(tmp) / ready_name
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--http-port", "0",
        "--tcp-port", "0",
        "--ready-file", str(ready_file),
        "--round-events", "250",
        "--checkpoint-interval", "100",
    ]
    if state_dir is not None:
        cmd += ["--state-dir", state_dir]
    else:
        cmd += ["--checkpoint-dir", str(Path(tmp) / "checkpoints")]
    env = dict(os.environ)
    paths = [str(REPO_ROOT / "src"), env.get("PYTHONPATH")]
    env["PYTHONPATH"] = os.pathsep.join(p for p in paths if p)
    proc = subprocess.Popen(
        cmd,
        env=env,
        stdout=log_file,
        stderr=subprocess.STDOUT,
        cwd=str(REPO_ROOT),
    )
    return proc, ready_file


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--group", action="store_true",
                        help="co-submit the catalog queries as one "
                             "shared-scan tenant group")
    parser.add_argument("--sharded", action="store_true",
                        help="also submit an O3-partitioned job that runs "
                             "on the sharded backend")
    parser.add_argument("--kill-after", type=int, metavar="N",
                        help="SIGKILL the server after N streamed events, "
                             "restart against the same state dir, and "
                             "re-send the whole stream")
    parser.add_argument("--state-dir", metavar="DIR",
                        help="durable state root (default: a temp dir; "
                             "required implicitly by --kill-after)")
    parser.add_argument("--report", metavar="PATH", help="write the JSON summary here")
    parser.add_argument(
        "--log", metavar="PATH", default="serve-smoke.log", help="server stdout/stderr capture"
    )
    parser.add_argument("--timeout", type=float, default=60.0)
    args = parser.parse_args(argv)

    report: dict = {
        "ok": False,
        "queries": {},
        "events_streamed": 0,
        "mode": {
            "group": args.group,
            "sharded": args.sharded,
            "kill_after": args.kill_after,
        },
    }
    failures: list[str] = []
    log_file = open(args.log, "w")
    with tempfile.TemporaryDirectory() as tmp:
        durable = args.kill_after is not None or args.state_dir is not None
        state_dir = args.state_dir or (str(Path(tmp) / "state") if durable else None)
        proc, ready_file = start_server(tmp, log_file, state_dir, "ready.json")
        try:
            ports = wait_for_ready(ready_file, proc, args.timeout)
            client = ServiceClient(
                ports["host"], ports["http_port"], retries=3, backoff_base_ms=100
            )
            print(f"server up: http={ports['http_port']} tcp={ports['tcp_port']}")

            jobs: dict[str, str] = {}  # query name -> serving job id
            if args.group:
                info = client.submit({"name": "group", "queries": list(QUERIES)})
                for query_name in QUERIES:
                    jobs[query_name] = info["id"]
                print(
                    f"submitted tenant group {info['id']}: "
                    f"{info['queries']} (shared scans: {info['shared_scans']})"
                )
                if not (info["sharing"] and info["sharing"]["ok"]):
                    failures.append("tenant group lacks a sharing proof")
            else:
                for query_name in QUERIES:
                    info = client.submit({"name": query_name, "query": query_name})
                    jobs[query_name] = info["id"]
                    print(f"submitted {query_name} -> {info['id']}")
            info = client.submit({
                "name": COLUMNAR_NAME,
                "query": {"catalog": COLUMNAR_QUERY, "name": COLUMNAR_NAME},
                "batch_size": 256,
                "columnar": True,
            })
            jobs[COLUMNAR_NAME] = info["id"]
            print(f"submitted {COLUMNAR_NAME} -> {info['id']} (columnar rounds)")
            if args.sharded:
                info = client.submit({
                    "name": SHARDED_NAME,
                    "query": {
                        "pattern": SHARDED_PATTERN,
                        "name": SHARDED_NAME,
                        "options": {"o3": "id"},
                    },
                    "shards": 2,
                })
                jobs[SHARDED_NAME] = info["id"]
                print(
                    f"submitted {SHARDED_NAME} -> {info['id']} "
                    f"(backend={info['backend']}, shards={info['shards']})"
                )
                if info["backend"] != "sharded":
                    failures.append(
                        f"{SHARDED_NAME}: expected the sharded backend, "
                        f"got {info['backend']}"
                    )

            streams = build_streams(args.events, args.seed)
            wire = list(merge_streams_for_wire(streams))

            if args.kill_after is not None:
                prefix = wire[: args.kill_after]
                summary = stream_events(
                    ports["host"], ports["tcp_port"], prefix,
                    source="smoke", watermark_every=500, timeout=args.timeout,
                )
                print(
                    f"streamed {len(prefix)} events pre-kill: "
                    f"accepted={summary['accepted']}"
                )
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=args.timeout)
                print(f"killed server (SIGKILL) after {len(prefix)} events; "
                      "restarting against the same --state-dir")
                report["killed_after"] = len(prefix)
                proc, ready_file = start_server(
                    tmp, log_file, state_dir, "ready-restart.json"
                )
                ports = wait_for_ready(ready_file, proc, args.timeout)
                client = ServiceClient(
                    ports["host"], ports["http_port"],
                    retries=5, backoff_base_ms=100,
                )
                resumed = client.server_metrics().get("resumed") or {}
                report["resumed"] = resumed
                missing = sorted(set(jobs.values()) - set(resumed.get("jobs", [])))
                if missing:
                    failures.append(f"jobs not resumed after restart: {missing}")
                else:
                    print(
                        f"restart resumed jobs={resumed['jobs']} "
                        f"wal_events={resumed['wal_events']}"
                    )
                for job_id in sorted(set(jobs.values())):
                    status = client.job(job_id)
                    if status["state"] != "running":
                        failures.append(
                            f"{job_id}: resumed in state {status['state']}"
                        )

            # The full stream — after a kill this is the producer's
            # re-send: the durable prefix must dedup, the rest is fresh.
            summary = stream_events(
                ports["host"], ports["tcp_port"], wire,
                source="smoke", watermark_every=500, timeout=args.timeout,
            )
            report["events_streamed"] = len(wire)
            report["duplicates_on_replay"] = summary["duplicates"]
            print(
                f"streamed {len(wire)} events: accepted={summary['accepted']} "
                f"duplicates={summary['duplicates']} "
                f"rejected={summary['rejected']} errors={len(summary['errors'])}"
            )
            if summary["errors"]:
                failures.append(f"ingest errors: {summary['errors'][:3]}")
            if summary["rejected"]:
                failures.append(f"{summary['rejected']} events rejected")
            if args.kill_after is not None and not summary["duplicates"]:
                failures.append("replay after restart deduplicated nothing")

            client.drain()

            rounds = checkpoints = 0
            for job_id in sorted(set(jobs.values())):
                metrics = client.metrics(job_id)
                if metrics.get("schema") != "repro.metrics/v1":
                    failures.append(f"{job_id}: bad metrics schema")
                ingress = metrics["service"]["ingress"]["ingress"]
                if ingress["admission.accepted"]["value"] <= 0:
                    failures.append(f"{job_id}: no admission accounting")
                rounds += metrics["service"]["rounds"]
                chain = client.checkpoints(job_id)
                if not (chain["durable"] and chain["entries"]):
                    failures.append(f"{job_id}: no durable checkpoints")
                checkpoints += chain["coordinator"]["count"]

            for query_name, job_id in jobs.items():
                batch = batch_reference(query_name, streams)
                served_keys = client.matches(job_id)["queries"][query_name]["keys"]
                served = "\n".join(served_keys).encode("utf-8")
                identical = served == batch
                row = {
                    "job": job_id,
                    "server_matches": len(served_keys),
                    "batch_matches": len(batch.split(b"\n")) if batch else 0,
                    "identical": identical,
                }
                report["queries"][query_name] = row
                print(
                    f"{query_name}: server={row['server_matches']} "
                    f"batch={row['batch_matches']} identical={identical}"
                )
                if not identical:
                    failures.append(f"{query_name}: server != batch")
            report["rounds"] = rounds
            report["checkpoints"] = checkpoints

            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=args.timeout)
            if proc.returncode != 0:
                failures.append(f"server exit code {proc.returncode}")
            else:
                print("server drained and exited cleanly")
        except Exception as exc:  # noqa: BLE001 - report, then fail the job
            failures.append(f"{type(exc).__name__}: {exc}")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            log_file.close()

    report["ok"] = not failures
    report["failures"] = failures
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2, sort_keys=True))
    if failures:
        print("FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
