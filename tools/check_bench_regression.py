#!/usr/bin/env python
"""Benchmark regression gate for CI.

Compares a fresh ``benchmarks/results/summary.json`` (written by any
benchmark run via ``benchmarks.common.record_rows``) against the
committed ``benchmarks/baseline.json``.

Absolute throughput does not transfer between machines (or even between
runs on a loaded CI box), so the gate checks the *mix*: every cell's
current/baseline throughput ratio is normalized by the run's median
ratio, which cancels uniform machine-speed shifts. A cell whose
normalized ratio falls outside the tolerance (default ±30%) regressed
relative to the rest of the suite — the signature of a code change
slowing one operator or optimization — and fails the job. Mismatched
*match counts* on identical input sizes fail immediately: those are
correctness, not noise. The trade-off: a perfectly uniform slowdown of
every cell is indistinguishable from a slower machine and only produces
a warning; ``--absolute`` restores raw-ratio checking for same-machine
comparisons.

Usage::

    python tools/check_bench_regression.py benchmarks/results/summary.json
    python tools/check_bench_regression.py summary.json --tolerance 0.5
    python tools/check_bench_regression.py summary.json --absolute
    python tools/check_bench_regression.py summary.json --update   # rebless
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: {path} not found")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")


def iter_cells(summary: dict):
    for experiment, payload in sorted(summary.get("experiments", {}).items()):
        for key, cell in sorted(payload.get("cells", {}).items()):
            yield experiment, key, cell


#: Cells where the batched + fused engine must beat the per-event serial
#: reference by at least this factor at full scale (the ISSUE acceptance
#: floor; measured headroom is 3-5.5x). Patterns not listed only need
#: parity: NSEQ1's next-occurrence UDF is order-sensitive, which pins the
#: scheduler to strict arrival-order runs where batching cannot help.
BATCHED_SPEEDUP_FLOORS = {
    "SEQ1": 2.0,
    "ITER3_1": 2.0,
    "traffic-congestion": 2.0,
    "stalled-traffic": 2.0,
}
BATCHED_PARITY_FLOOR = 0.7
#: The speedup floors assume full-scale batches/windows; smoke runs
#: (REPRO_BENCH_EVENTS below this) only check parity.
BATCHED_FULL_SCALE_EVENTS = 20_000


def check_batched_cells(summary: dict) -> list[str]:
    """Intra-summary rule: every ``X+batched`` cell vs its sibling ``X``.

    Unlike the baseline comparison this is machine-independent — both
    cells of a pair come from the same run on the same box, so the ratio
    is a pure engine-overhead measurement and gets a hard floor.
    """
    breaches: list[str] = []
    for experiment, payload in sorted(summary.get("experiments", {}).items()):
        cells = payload.get("cells", {})
        full_scale = payload.get("events", 0) >= BATCHED_FULL_SCALE_EVENTS
        for key, cell in sorted(cells.items()):
            pattern, approach, parameter = key.split("|")
            if not approach.endswith("+batched"):
                continue
            sibling_key = f"{pattern}|{approach.removesuffix('+batched')}|{parameter}"
            sibling = cells.get(sibling_key)
            if sibling is None:
                columnar_key = (
                    f"{pattern}|{approach.removesuffix('+batched')}+columnar|{parameter}"
                )
                if columnar_key in cells:
                    # The pair belongs to the columnar gate: the batched
                    # row is the reference there, not the subject here.
                    continue
                breaches.append(
                    f"{experiment}/{key}: no serial sibling cell {sibling_key}"
                )
                continue
            if cell.get("matches") != sibling.get("matches"):
                breaches.append(
                    f"{experiment}/{key}: matches {cell.get('matches')} != "
                    f"serial sibling {sibling.get('matches')} -- batched "
                    "execution changed the output (correctness regression)"
                )
                continue
            serial_tps = sibling.get("throughput_tps") or 0.0
            batched_tps = cell.get("throughput_tps") or 0.0
            if serial_tps <= 0 or batched_tps <= 0:
                continue
            floor = BATCHED_PARITY_FLOOR
            if full_scale:
                floor = BATCHED_SPEEDUP_FLOORS.get(pattern, BATCHED_PARITY_FLOOR)
            ratio = batched_tps / serial_tps
            if ratio < floor:
                breaches.append(
                    f"{experiment}/{key}: batched engine {ratio:.2f}x the "
                    f"serial sibling (floor {floor:.2f}x) -- the batched "
                    "hot path lost its advantage"
                )
    return breaches


#: Cells where the columnar engine must beat the row-batched engine by at
#: least this factor at full scale (the ISSUE acceptance floor; measured
#: headroom is ~3-3.7x). The headline cells are filter-dominated
#: multi-conjunct operating points under the O1 interval join — the
#: regime the vectorized masks and galloping probe target. Patterns not
#: listed (the match-heavy catalog cells, where emission work shared by
#: both modes dominates) only need parity.
COLUMNAR_SPEEDUP_FLOORS = {
    "SEQ1": 2.0,
    "ITER3_1": 2.0,
}
COLUMNAR_PARITY_FLOOR = 0.7
#: The speedup floors assume full-scale batches/windows; smoke runs
#: (REPRO_BENCH_EVENTS below this) only check parity.
COLUMNAR_FULL_SCALE_EVENTS = 20_000


def check_columnar_cells(summary: dict) -> list[str]:
    """Intra-summary rule: every ``X+columnar`` cell vs its ``X+batched``
    sibling.

    Same machine-independence argument as :func:`check_batched_cells`:
    both cells of a pair come from the same run on the same box, so the
    ratio is a pure data-path measurement (row predicate interpretation
    vs vectorized masks) and gets a hard floor. Equal match counts are a
    hard requirement — columnar execution is an engine mode, never a
    semantics change.
    """
    breaches: list[str] = []
    for experiment, payload in sorted(summary.get("experiments", {}).items()):
        cells = payload.get("cells", {})
        full_scale = payload.get("events", 0) >= COLUMNAR_FULL_SCALE_EVENTS
        for key, cell in sorted(cells.items()):
            pattern, approach, parameter = key.split("|")
            if not approach.endswith("+columnar"):
                continue
            sibling_key = (
                f"{pattern}|{approach.removesuffix('+columnar')}+batched|{parameter}"
            )
            sibling = cells.get(sibling_key)
            if sibling is None:
                breaches.append(
                    f"{experiment}/{key}: no row-batched sibling cell {sibling_key}"
                )
                continue
            if cell.get("matches") != sibling.get("matches"):
                breaches.append(
                    f"{experiment}/{key}: matches {cell.get('matches')} != "
                    f"batched sibling {sibling.get('matches')} -- columnar "
                    "execution changed the output (correctness regression)"
                )
                continue
            batched_tps = sibling.get("throughput_tps") or 0.0
            columnar_tps = cell.get("throughput_tps") or 0.0
            if batched_tps <= 0 or columnar_tps <= 0:
                continue
            floor = COLUMNAR_PARITY_FLOOR
            if full_scale:
                floor = COLUMNAR_SPEEDUP_FLOORS.get(pattern, COLUMNAR_PARITY_FLOOR)
            ratio = columnar_tps / batched_tps
            if ratio < floor:
                breaches.append(
                    f"{experiment}/{key}: columnar engine {ratio:.2f}x the "
                    f"row-batched sibling (floor {floor:.2f}x) -- the "
                    "columnar hot path lost its advantage"
                )
    return breaches


#: Cells where the plan optimizer must beat the default translation by at
#: least this factor at full scale, keyed by (pattern, parameter). The
#: ISSUE acceptance criterion: a multiway AND cell whose win comes from
#: join reordering under the metrics-fed cost model (measured ~2x; the
#: o1-only sibling is the ablation control showing the interval rule
#: alone declines), plus the static W/slide interval switch (~9x).
OPTIMIZER_SPEEDUP_FLOORS = {
    ("AND-skew", "reorder+o1"): 1.25,
    ("SEQ-wide", "static"): 2.0,
}
#: Every other optimized cell — including the deliberately-declining
#: control — must hold parity: the optimizer never loses beyond noise.
OPTIMIZER_PARITY_FLOOR = 0.7
OPTIMIZER_FULL_SCALE_EVENTS = 20_000


def check_optimizer_cells(summary: dict) -> list[str]:
    """Intra-summary rule: every ``X+opt`` cell vs its sibling ``X``.

    Same machine-independence argument as :func:`check_batched_cells`:
    both cells of a pair come from the same run, so the ratio is a pure
    plan-quality measurement. Equal match counts are a hard requirement —
    an optimized plan that changes output is a correctness bug, not a
    perf regression.
    """
    breaches: list[str] = []
    for experiment, payload in sorted(summary.get("experiments", {}).items()):
        cells = payload.get("cells", {})
        full_scale = payload.get("events", 0) >= OPTIMIZER_FULL_SCALE_EVENTS
        for key, cell in sorted(cells.items()):
            pattern, approach, parameter = key.split("|")
            if not approach.endswith("+opt"):
                continue
            sibling_key = f"{pattern}|{approach.removesuffix('+opt')}|{parameter}"
            sibling = cells.get(sibling_key)
            if sibling is None:
                breaches.append(
                    f"{experiment}/{key}: no default-plan sibling cell {sibling_key}"
                )
                continue
            if cell.get("matches") != sibling.get("matches"):
                breaches.append(
                    f"{experiment}/{key}: matches {cell.get('matches')} != "
                    f"default-plan sibling {sibling.get('matches')} -- the "
                    "optimized plan changed the output (correctness regression)"
                )
                continue
            default_tps = sibling.get("throughput_tps") or 0.0
            opt_tps = cell.get("throughput_tps") or 0.0
            if default_tps <= 0 or opt_tps <= 0:
                continue
            floor = OPTIMIZER_PARITY_FLOOR
            if full_scale:
                floor = OPTIMIZER_SPEEDUP_FLOORS.get(
                    (pattern, parameter), OPTIMIZER_PARITY_FLOOR
                )
            ratio = opt_tps / default_tps
            if ratio < floor:
                breaches.append(
                    f"{experiment}/{key}: optimized plan {ratio:.2f}x the "
                    f"default sibling (floor {floor:.2f}x) -- the rewrite "
                    "lost its advantage"
                )
    return breaches


#: The shared tenant-group cell must deliver at least this multiple of
#: the unshared per-tenant capacity (the PR 9 acceptance floor; measured
#: ~2x for 8 co-submitted congestion variants sharing the Q/V scans).
SERVE_SHARED_FLOOR = 1.5
#: The scan-sharing ratio is scale-stable, so the floor applies at the
#: CI smoke scale already; below it only parity is required.
SERVE_FULL_SCALE_EVENTS = 4_000


def check_serve_cells(summary: dict) -> list[str]:
    """Intra-summary rule: every ``X+shared`` cell vs its sibling ``X``.

    Same machine-independence argument as :func:`check_batched_cells`:
    both cells of a tenant-group pair come from the same run, so the
    ratio is a pure scan-sharing measurement. Equal match totals are a
    hard requirement — a merged dataflow that changes any tenant's
    output is a correctness bug, not a capacity regression.
    """
    breaches: list[str] = []
    for experiment, payload in sorted(summary.get("experiments", {}).items()):
        cells = payload.get("cells", {})
        full_scale = payload.get("events", 0) >= SERVE_FULL_SCALE_EVENTS
        for key, cell in sorted(cells.items()):
            pattern, approach, parameter = key.split("|")
            if not approach.endswith("+shared"):
                continue
            sibling_key = f"{pattern}|{approach.removesuffix('+shared')}|{parameter}"
            sibling = cells.get(sibling_key)
            if sibling is None:
                breaches.append(
                    f"{experiment}/{key}: no unshared sibling cell {sibling_key}"
                )
                continue
            if cell.get("matches") != sibling.get("matches"):
                breaches.append(
                    f"{experiment}/{key}: matches {cell.get('matches')} != "
                    f"unshared sibling {sibling.get('matches')} -- the merged "
                    "tenant-group dataflow changed the output (correctness "
                    "regression)"
                )
                continue
            unshared_tps = sibling.get("throughput_tps") or 0.0
            shared_tps = cell.get("throughput_tps") or 0.0
            if unshared_tps <= 0 or shared_tps <= 0:
                continue
            floor = SERVE_SHARED_FLOOR if full_scale else BATCHED_PARITY_FLOOR
            ratio = shared_tps / unshared_tps
            if ratio < floor:
                breaches.append(
                    f"{experiment}/{key}: shared tenant group {ratio:.2f}x the "
                    f"unshared capacity (floor {floor:.2f}x) -- scan sharing "
                    "lost its advantage"
                )
    return breaches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("summary", type=Path, help="summary.json produced by the benchmark run")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative deviation of a cell's normalized throughput ratio (default 0.30)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw throughput ratios without median normalization (same-machine runs)",
    )
    parser.add_argument(
        "--only-slower", action="store_true", help="fail only on slowdowns, not on speedups"
    )
    parser.add_argument(
        "--update", action="store_true", help="overwrite the baseline with the current summary"
    )
    args = parser.parse_args(argv)

    summary = load(args.summary)
    if args.update:
        args.baseline.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = load(args.baseline)
    baseline_cells = {(exp, key): cell for exp, key, cell in iter_cells(baseline)}

    skipped = 0
    breaches = (
        check_batched_cells(summary)
        + check_columnar_cells(summary)
        + check_optimizer_cells(summary)
        + check_serve_cells(summary)
    )
    ratios: dict[tuple[str, str], float] = {}
    for experiment, key, cell in iter_cells(summary):
        reference = baseline_cells.get((experiment, key))
        if reference is None:
            skipped += 1
            continue
        if cell.get("failed") != reference.get("failed"):
            breaches.append(
                f"{experiment}/{key}: failed={cell.get('failed')} "
                f"(baseline failed={reference.get('failed')})"
            )
            continue
        same_input = cell.get("events_in") == reference.get("events_in")
        if cell.get("matches") != reference.get("matches") and same_input:
            breaches.append(
                f"{experiment}/{key}: matches {cell.get('matches')} != "
                f"baseline {reference.get('matches')} (same input size -- "
                "correctness regression, not noise)"
            )
            continue
        base_tps = reference.get("throughput_tps") or 0.0
        cur_tps = cell.get("throughput_tps") or 0.0
        if base_tps > 0 and cur_tps > 0:
            ratios[(experiment, key)] = cur_tps / base_tps

    median = statistics.median(ratios.values()) if ratios else 1.0
    scale = 1.0 if args.absolute else median
    lower, upper = 1.0 - args.tolerance, 1.0 + args.tolerance
    for (experiment, key), ratio in sorted(ratios.items()):
        normalized = ratio / scale
        if normalized < lower:
            breaches.append(
                f"{experiment}/{key}: {normalized:.2f}x the suite trend "
                f"(raw {ratio:.2f}x baseline; < {lower:.2f}x) -- this cell "
                "regressed relative to the rest of the run"
            )
        elif normalized > upper and not args.only_slower:
            breaches.append(
                f"{experiment}/{key}: {normalized:.2f}x the suite trend "
                f"(raw {ratio:.2f}x baseline; > {upper:.2f}x; rebless with "
                "--update if this speedup is real)"
            )

    mode = "absolute" if args.absolute else f"normalized by median {median:.2f}x"
    print(
        f"bench regression gate: {len(ratios)} cells checked ({mode}), "
        f"{skipped} not in baseline, tolerance ±{args.tolerance:.0%}"
    )
    if not args.absolute and not (lower <= median <= upper):
        print(
            f"warning: uniform throughput shift vs baseline ({median:.2f}x) "
            "-- machine speed difference, or a global regression the "
            "normalized gate cannot distinguish"
        )
    if breaches:
        print(f"\n{len(breaches)} breach(es):")
        for line in breaches:
            print(f"  - {line}")
        return 1
    if not ratios:
        print("warning: no overlapping cells between summary and baseline")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
