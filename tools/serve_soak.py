#!/usr/bin/env python
"""Multi-tenant soak of `repro serve` for CI (and local debugging).

Boots an in-process service (real HTTP control + TCP ingest servers,
``start_in_thread``) and keeps eight tenants busy for a wall-clock
budget: a shared-scan tenant group plus individual jobs, with events
streaming over TCP the whole time and a churn loop cancelling tenants
and submitting replacements — the steady-state life of a multi-tenant
server rather than one submit/drain pass.

The gate is lifecycle hygiene, not byte-identity (the smoke covers
that): after the final drain every job ever submitted must sit in a
terminal state (``drained``/``cancelled``), none ``failed``, none stuck
``running``. The JSON report carries queue-depth and round-latency
gauges (max depth seen, trigger-latency/duration histograms merged
across jobs, SLO-triggered round count) for the step summary.

Usage::

    PYTHONPATH=src python tools/serve_soak.py --seconds 30 \
        --report serve-soak-report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.asp.runtime.observability.registry import percentile_from_buckets  # noqa: E402
from repro.experiments.common import Scale, qnv_aq_workload  # noqa: E402
from repro.runtime.service import (  # noqa: E402
    ServiceClient,
    ServiceConfig,
    merge_streams_for_wire,
    start_in_thread,
    stream_events,
)

#: The persistent shared-scan tenant group (sharing proof known to pass).
GROUP_QUERIES = ("traffic-congestion", "street-lighting-demand")
#: Churned individual tenants: congestion window variants, the realistic
#: per-tenant parameterization of one catalog detector.
VARIANT_PATTERN = (
    "PATTERN SEQ(Q q1, V v1) WHERE q1.value > 80.0 AND v1.value < 30.0 "
    "AND q1.id = v1.id WITHIN {w} MINUTES SLIDE 1 MINUTE"
)
VARIANT_WINDOWS = (8, 9, 10, 11, 12, 13)
TENANTS = len(GROUP_QUERIES) + len(VARIANT_WINDOWS)


def build_wire(events: int, seed: int) -> list:
    """Merged workload with unique cross-type timestamps (as the smoke)."""
    scale = Scale(events=events, sensors=8, seed=seed)
    streams = {t: list(evs) for t, evs in qnv_aq_workload(scale).items()}
    for offset, evs in enumerate(streams.values()):
        for event in evs:
            event.ts += offset
    return list(merge_streams_for_wire(streams))


def submit_variant(client: ServiceClient, window: int, generation: int) -> str:
    name = f"tenant-w{window}g{generation}"
    info = client.submit({
        "name": name,
        "query": {"pattern": VARIANT_PATTERN.format(w=window), "name": name},
    })
    return info["id"]


def merge_histograms(snapshots: list[dict]) -> dict:
    """Merge same-bounds histogram snapshots; report count/mean/p95/max."""
    live = [s for s in snapshots if s.get("count")]
    if not live:
        return {"count": 0, "mean_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0}
    bounds = live[0]["bounds"]
    counts = [0] * (len(bounds) + 1)
    for snap in live:
        for index, value in enumerate(snap["counts"]):
            counts[index] += value
    count = sum(s["count"] for s in live)
    total = sum(s["sum"] for s in live)
    vmin = min(s["min"] for s in live)
    vmax = max(s["max"] for s in live)
    return {
        "count": count,
        "mean_ms": round(total / count, 3),
        "p95_ms": round(
            percentile_from_buckets(bounds, counts, count, vmin, vmax, 95), 3
        ),
        "max_ms": round(vmax, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=30.0,
                        help="wall-clock soak budget (default 30)")
    parser.add_argument("--events", type=int, default=24000,
                        help="workload size generated up front (default 24000)")
    parser.add_argument("--chunk", type=int, default=400,
                        help="events streamed per tick (default 400)")
    parser.add_argument("--churn-every", type=int, default=3, metavar="TICKS",
                        help="cancel+replace one tenant every N ticks (default 3)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--round-slo-ms", type=float, default=100.0,
                        help="per-job round SLO under soak (default 100)")
    parser.add_argument("--report", metavar="PATH", help="write the JSON summary here")
    args = parser.parse_args(argv)

    report: dict = {
        "ok": False,
        "seconds": args.seconds,
        "tenants": TENANTS,
        "jobs": {},
        "gauges": {},
    }
    failures: list[str] = []
    wire = build_wire(args.events, args.seed)
    job_names: dict[str, str] = {}  # job id -> display name
    depth_max: dict[str, int] = {}
    submitted = cancelled = 0
    streamed = duplicates = rejected = 0

    with tempfile.TemporaryDirectory() as tmp:
        # round_events is set high so the round SLO — not the count
        # threshold — is what keeps latency bounded under soak traffic.
        config = ServiceConfig(
            checkpoint_dir=str(Path(tmp) / "checkpoints"),
            round_events=1000,
            checkpoint_interval=500,
            round_slo_ms=args.round_slo_ms,
        )
        handle = start_in_thread(config)
        try:
            client = ServiceClient(
                handle.host, handle.http_port, retries=3, backoff_base_ms=100
            )
            print(
                f"service up: http={handle.http_port} tcp={handle.tcp_port} "
                f"round_slo_ms={args.round_slo_ms:g}"
            )

            info = client.submit({"name": "group", "queries": list(GROUP_QUERIES)})
            group_id = info["id"]
            job_names[group_id] = f"group({', '.join(GROUP_QUERIES)})"
            submitted += 1
            if not (info["sharing"] and info["sharing"]["ok"]):
                failures.append("tenant group lacks a sharing proof")

            variants: list[tuple[int, str]] = []  # (window, job id), oldest first
            for window in VARIANT_WINDOWS:
                variants.append((window, submit_variant(client, window, 0)))
                job_names[variants[-1][1]] = f"tenant-w{window}g0"
                submitted += 1
            print(f"{TENANTS} tenants live: group {group_id} + "
                  f"{len(variants)} congestion variants")

            deadline = time.monotonic() + args.seconds
            tick = generation = 0
            offset = 0
            group_tenant_cancelled = False
            while time.monotonic() < deadline:
                tick += 1
                chunk = wire[offset:offset + args.chunk]
                offset += len(chunk)
                if chunk:
                    summary = stream_events(
                        handle.host, handle.tcp_port, chunk,
                        source="soak", start_seq=streamed + 1,
                        watermark_every=10 * args.chunk,
                    )
                    streamed += len(chunk)
                    duplicates += summary["duplicates"]
                    rejected += summary["rejected"]
                    if summary["errors"]:
                        failures.append(f"ingest errors: {summary['errors'][:3]}")
                        break
                for status in client.jobs():
                    depth = status["queue_depth"]
                    if depth > depth_max.get(status["id"], -1):
                        depth_max[status["id"]] = depth
                    if status["state"] == "failed":
                        failures.append(
                            f"{status['id']} failed mid-soak: {status['failure']}"
                        )
                if any("failed mid-soak" in f for f in failures):
                    break
                if tick % args.churn_every == 0:
                    # Cancel the oldest variant tenant, submit a fresh one.
                    generation += 1
                    window, victim = variants.pop(0)
                    client.cancel(victim)
                    cancelled += 1
                    replacement = submit_variant(client, window, generation)
                    job_names[replacement] = f"tenant-w{window}g{generation}"
                    variants.append((window, replacement))
                    submitted += 1
                elif not group_tenant_cancelled and tick > 2 * args.churn_every:
                    # Once, mid-soak: cancel one tenant inside the shared
                    # group; the group (and its other tenant) must survive.
                    client.cancel_tenant(group_id, GROUP_QUERIES[1])
                    group_tenant_cancelled = True
                    cancelled += 1

            print(
                f"soak loop done: {tick} ticks, {streamed} events streamed, "
                f"{submitted} submits, {cancelled} cancels, "
                f"rejected={rejected} duplicates={duplicates}"
            )
            if not group_tenant_cancelled:
                failures.append("soak too short to exercise tenant cancel")

            client.drain()

            trigger_snaps: list[dict] = []
            duration_snaps: list[dict] = []
            slo_rounds = rounds = 0
            for status in client.jobs():
                job_id = status["id"]
                if status["state"] not in ("drained", "cancelled"):
                    failures.append(
                        f"{job_id} ({job_names.get(job_id, '?')}) stuck "
                        f"non-terminal after drain: {status['state']}"
                    )
                rounds += status["rounds"]
                report["jobs"][job_id] = {
                    "name": job_names.get(job_id, status["name"]),
                    "state": status["state"],
                    "rounds": status["rounds"],
                    "events_processed": status["events_processed"],
                    "queue_depth_max": depth_max.get(job_id, 0),
                    "matches": sum(status["matches"].values()),
                }
                metrics = client.metrics(job_id)["service"]["ingress"]
                rounds_scope = metrics.get("rounds", {})
                trigger_snaps.append(rounds_scope.get("trigger_latency_ms", {}))
                duration_snaps.append(rounds_scope.get("duration_ms", {}))
                slo_rounds += rounds_scope.get("slo_triggered", {}).get("value", 0)

            group_status = client.job(group_id)
            if group_status["tenants"].get(GROUP_QUERIES[1]) != "cancelled":
                failures.append("group tenant cancel did not stick")
            if group_status["matches"][GROUP_QUERIES[0]] <= 0:
                failures.append("surviving group tenant produced no matches")

            report["gauges"] = {
                "queue_depth_max": max(depth_max.values(), default=0),
                "round_trigger_latency_ms": merge_histograms(trigger_snaps),
                "round_duration_ms": merge_histograms(duration_snaps),
                "slo_rounds": slo_rounds,
            }
            report.update(
                events_streamed=streamed,
                duplicates=duplicates,
                rejected=rejected,
                submitted=submitted,
                cancelled=cancelled,
                rounds=rounds,
            )
            gauges = report["gauges"]
            print(
                f"gauges: queue_depth_max={gauges['queue_depth_max']} "
                f"trigger_p95={gauges['round_trigger_latency_ms']['p95_ms']}ms "
                f"duration_p95={gauges['round_duration_ms']['p95_ms']}ms "
                f"slo_rounds={slo_rounds}"
            )
        except Exception as exc:  # noqa: BLE001 - report, then fail the job
            failures.append(f"{type(exc).__name__}: {exc}")
        finally:
            handle.stop()

    report["ok"] = not failures
    report["failures"] = failures
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2, sort_keys=True))
    if failures:
        print("FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print(f"serve soak: OK ({TENANTS} tenants, {submitted} submits, "
          f"{cancelled} cancels)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
