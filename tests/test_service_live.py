"""Live-socket coverage of `repro serve`: HTTP control API + TCP ingest.

Boots the real asyncio server (ephemeral ports) in a background thread
and drives it with the stdlib client: submit/cancel/status round-trips,
structured error documents for every control-plane failure, NDJSON
ingestion over both transports with per-line error reporting, and the
headline guarantee — matches streamed through the live server are
byte-identical to the one-shot batch run, including when the job crashes
mid-stream and recovers from its checkpoints.
"""

import json

import pytest

from repro.runtime.service import (
    ServiceClient,
    ServiceConfig,
    start_in_thread,
    stream_events,
)
from tests.test_service import batch_reference, offset_streams
from repro.runtime.service import merge_streams_for_wire


@pytest.fixture()
def handle():
    service = start_in_thread(
        ServiceConfig(round_events=250, checkpoint_interval=100)
    )
    try:
        yield service
    finally:
        service.stop()


@pytest.fixture()
def client(handle):
    return ServiceClient(handle.host, handle.http_port)


class TestControlApi:
    def test_healthz_and_empty_listing(self, client):
        health = client.healthz()
        assert health["status"] == "ok" and health["jobs"] == 0
        assert client.jobs() == []

    def test_submit_status_cancel_roundtrip(self, client):
        info = client.submit({"name": "tc", "query": "traffic-congestion"})
        assert info["state"] == "running"
        assert client.job(info["id"])["name"] == "tc"
        assert client.job("tc")["id"] == info["id"]  # unique-name lookup
        assert [j["id"] for j in client.jobs()] == [info["id"]]
        assert client.cancel(info["id"])["state"] == "cancelled"

    def test_error_documents_not_stack_traces(self, client):
        client.submit({"name": "tc", "query": "traffic-congestion"})
        for method, path, body, status, code in [
            ("POST", "/jobs", {"name": "tc", "query": "traffic-congestion"},
             409, "duplicate-job"),
            ("POST", "/jobs", {"query": "no-such"}, 404, "unknown-query"),
            ("POST", "/jobs", {"query": {"pattern": "SEQ(Q q,"}},
             400, "bad-pattern"),
            ("POST", "/jobs", b"not json", 400, "bad-request"),
            ("GET", "/jobs/missing", None, 404, "unknown-job"),
            ("GET", "/nope", None, 404, "not-found"),
        ]:
            got_status, doc = client.request(method, path, body)
            assert got_status == status, (path, doc)
            assert doc["error"]["code"] == code
            assert "message" in doc["error"]

    def test_static_analysis_diagnostics_over_http(self, client):
        status, doc = client.request(
            "POST", "/jobs",
            {"query": {"pattern": "PATTERN SEQ(Q a, V b) "
                                  "WHERE a.bogus = b.id WITHIN 15 MINUTES"}},
        )
        assert status == 400
        assert doc["error"]["code"] == "static-analysis"
        assert doc["error"]["details"][0]["severity"] == "error"

    def test_http_ingest_reports_per_line_errors(self, client):
        client.submit({"query": "traffic-congestion"})
        status, summary = client.ingest_lines(
            ['{"type": "Q", "ts": 60000, "value": 1.0}',
             "not json",
             '{"type": "Q"}',
             '{"watermark": 60000}']
        )
        assert status == 400  # partial failure is a structured 400
        assert summary["accepted"] == 1 and summary["watermarks"] == 1
        codes = [e["code"] for e in summary["errors"]]
        assert codes == ["bad-json", "bad-event"]
        assert [e["line"] for e in summary["errors"]] == [2, 3]


class TestLiveEquivalence:
    def test_tcp_stream_matches_batch(self, handle, client):
        streams = offset_streams(events=1400, seed=7)
        info = client.submit(
            {"name": "combo",
             "queries": ["traffic-congestion", "street-lighting-demand"]}
        )
        wire = list(merge_streams_for_wire(streams))
        summary = stream_events(
            handle.host, handle.tcp_port, wire,
            source="live", watermark_every=400,
        )
        assert summary["errors"] == []
        assert summary["accepted"] > 0 and summary["rejected"] == 0
        client.drain()
        status = client.job(info["id"])
        assert status["state"] == "drained"
        matches = client.matches(info["id"])
        for query_name in ("traffic-congestion", "street-lighting-demand"):
            served = "\n".join(
                matches["queries"][query_name]["keys"]
            ).encode("utf-8")
            assert served == batch_reference(query_name, streams), query_name

    def test_crash_midstream_recovers_and_matches_batch(self, handle, client):
        streams = offset_streams(events=1200, seed=13)
        info = client.submit(
            {"query": "traffic-congestion", "fault_plan": "crash:at=500"}
        )
        wire = list(merge_streams_for_wire(streams))
        stream_events(handle.host, handle.tcp_port, wire,
                      source="crashy", watermark_every=300)
        client.drain()
        status = client.job(info["id"])
        assert status["state"] == "drained"
        assert status["restarts"] == 1, "worker must have crashed + recovered"
        served = "\n".join(
            client.matches(info["id"])["queries"]["traffic-congestion"]["keys"]
        ).encode("utf-8")
        assert served == batch_reference("traffic-congestion", streams)

    def test_tcp_retransmit_is_deduplicated(self, handle, client):
        client.submit({"query": "traffic-congestion"})
        streams = offset_streams(events=400, seed=21)
        wire = list(merge_streams_for_wire(streams))[:100]
        first = stream_events(handle.host, handle.tcp_port, wire, source="p")
        again = stream_events(handle.host, handle.tcp_port, wire, source="p")
        assert first["duplicates"] == 0
        assert again["duplicates"] == 100  # full retransmit absorbed
        assert client.server_metrics()["ingest"]["duplicates"] == 100

    def test_tcp_malformed_lines_get_error_lines(self, handle):
        import socket

        with socket.create_connection(
            (handle.host, handle.tcp_port), timeout=10
        ) as sock:
            writer = sock.makefile("wb")
            reader = sock.makefile("rb")
            writer.write(b'{"type": "Q"}\n')       # bad-event
            writer.write(b"garbage\n")             # bad-json
            writer.write(b'{"op": "sync"}\n')
            writer.flush()
            lines = [json.loads(reader.readline()) for _ in range(3)]
        assert lines[0]["error"]["code"] == "bad-event"
        assert lines[0]["error"]["line"] == 1
        assert lines[1]["error"]["code"] == "bad-json"
        assert lines[2]["sync"]["errors"] != []

    def test_metrics_and_checkpoints_endpoints(self, handle, client):
        info = client.submit({"query": "traffic-congestion"})
        streams = offset_streams(events=600, seed=17)
        stream_events(
            handle.host, handle.tcp_port,
            merge_streams_for_wire(streams), source="m", watermark_every=200,
        )
        client.drain()
        report = client.metrics(info["id"])
        assert report["schema"] == "repro.metrics/v1"
        assert report["service"]["rounds"] >= 1
        ingress = report["service"]["ingress"]["ingress"]
        assert ingress["admission.accepted"]["value"] > 0
        chk = client.checkpoints(info["id"])
        assert chk["coordinator"]["count"] >= 1 and chk["entries"]

    def test_shutdown_endpoint_drains_then_stops(self):
        service = start_in_thread(ServiceConfig(round_events=100))
        client = ServiceClient(service.host, service.http_port)
        info = client.submit({"query": "traffic-congestion"})
        streams = offset_streams(events=300, seed=29)
        for event in merge_streams_for_wire(streams):
            service.manager.ingest_event(event)
        assert client.shutdown()["status"] == "shutting-down"
        service.thread.join(timeout=10)
        assert not service.thread.is_alive()
        # drained before exit: queue empty, final checkpoint taken
        job = service.manager.jobs[info["id"]]
        assert job.state == "drained" and job.pending == 0
        assert job.store.latest() is not None
