"""Tests for the time model and explicit windowing (paper Eqs. 4/5)."""

import pytest
from hypothesis import given, strategies as st

from repro.asp.operators.window import (
    IntervalBounds,
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    WindowSpec,
    sliding,
    tumbling,
    validate_slide_for_rate,
)
from repro.asp.time import (
    MS_PER_MINUTE,
    TimeInterval,
    Watermark,
    WatermarkGenerator,
    hours,
    minutes,
    seconds,
)


class TestTimeConverters:
    def test_minutes(self):
        assert minutes(1) == 60_000
        assert minutes(1.5) == 90_000

    def test_seconds(self):
        assert seconds(2) == 2_000

    def test_hours(self):
        assert hours(1) == 3_600_000


class TestTimeInterval:
    def test_contains_half_open(self):
        iv = TimeInterval(10, 20)
        assert iv.contains(10)
        assert iv.contains(19)
        assert not iv.contains(20)
        assert not iv.contains(9)

    def test_length(self):
        assert TimeInterval(5, 15).length == 10

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(10, 5)

    def test_overlaps(self):
        assert TimeInterval(0, 10).overlaps(TimeInterval(9, 20))
        assert not TimeInterval(0, 10).overlaps(TimeInterval(10, 20))

    def test_intersect(self):
        assert TimeInterval(0, 10).intersect(TimeInterval(5, 20)) == TimeInterval(5, 10)
        assert TimeInterval(0, 5).intersect(TimeInterval(5, 10)) is None

    def test_shift(self):
        assert TimeInterval(0, 10).shift(5) == TimeInterval(5, 15)


class TestWatermark:
    def test_covers(self):
        wm = Watermark(100)
        assert wm.covers(100)
        assert not wm.covers(101)

    def test_terminal(self):
        assert Watermark.terminal().is_terminal
        assert not Watermark(5).is_terminal

    def test_ordering(self):
        assert Watermark(1) < Watermark(2)


class TestWatermarkGenerator:
    def test_emits_after_interval(self):
        gen = WatermarkGenerator(emit_interval=10)
        assert gen.observe(5) is not None  # first emission
        assert gen.observe(7) is None
        wm = gen.observe(16)
        assert wm is not None and wm.value == 16

    def test_out_of_orderness_lag(self):
        gen = WatermarkGenerator(max_out_of_orderness=5, emit_interval=1)
        wm = gen.observe(100)
        assert wm.value == 95

    def test_watermark_never_regresses(self):
        gen = WatermarkGenerator(emit_interval=1)
        gen.observe(100)
        assert gen.observe(50) is None  # older event, no regression
        assert gen.current().value == 100

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WatermarkGenerator(max_out_of_orderness=-1)
        with pytest.raises(ValueError):
            WatermarkGenerator(emit_interval=0)


class TestWindowSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSpec(size=0, slide=1)
        with pytest.raises(ValueError):
            WindowSpec(size=10, slide=0)
        with pytest.raises(ValueError):
            WindowSpec(size=10, slide=20)  # gaps would drop events

    def test_is_tumbling(self):
        assert tumbling(10).is_tumbling
        assert not sliding(10, 5).is_tumbling

    def test_windows_per_event(self):
        assert sliding(15, 1).windows_per_event() == 15
        assert sliding(10, 3).windows_per_event() == 4  # ceil(10/3)


class TestSlidingWindowAssigner:
    def test_assignment_matches_definition(self):
        assigner = SlidingWindowAssigner(sliding(10, 5))
        windows = assigner.assign(12)
        assert all(w.begin <= 12 < w.end for w in windows)
        assert [(w.begin, w.end) for w in windows] == [(5, 15), (10, 20)]

    def test_event_in_size_over_slide_windows(self):
        assigner = SlidingWindowAssigner(sliding(15, 1))
        assert len(assigner.assign(100)) == 15

    def test_tumbling_single_window(self):
        assigner = TumblingWindowAssigner(10)
        assert len(assigner.assign(7)) == 1
        assert assigner.assign(7)[0] == TimeInterval(0, 10)

    def test_last_index_before(self):
        assigner = SlidingWindowAssigner(sliding(10, 5))
        # window k ends at 5k + 10; complete when end <= wm
        assert assigner.last_index_before(20) == 2
        assert assigner.window_for_index(2).end == 20

    @given(ts=st.integers(min_value=0, max_value=10**9),
           size=st.integers(min_value=1, max_value=1000),
           slide=st.integers(min_value=1, max_value=1000))
    def test_property_every_assigned_window_contains_ts(self, ts, size, slide):
        if slide > size:
            return
        assigner = SlidingWindowAssigner(WindowSpec(size, slide))
        windows = assigner.assign(ts)
        assert windows, "every timestamp belongs to at least one window"
        for w in windows:
            assert w.begin <= ts < w.end
            assert w.length == size
        # And no adjacent window outside the list contains ts.
        first_k = assigner.indices_for(ts)[0]
        last_k = assigner.indices_for(ts)[-1]
        assert not assigner.window_for_index(first_k - 1).contains(ts)
        assert not assigner.window_for_index(last_k + 1).contains(ts)

    @given(a=st.integers(min_value=0, max_value=10**6),
           gap=st.integers(min_value=0, max_value=999))
    def test_property_theorem2_no_match_lost_with_unit_slide(self, a, gap):
        """Theorem 2: with slide-by-one, any pair closer than W shares a
        window."""
        size = 1000
        assigner = SlidingWindowAssigner(WindowSpec(size, 1))
        b = a + gap  # gap < size
        shared = set(assigner.indices_for(a)) & set(assigner.indices_for(b))
        assert shared, "pair within W must co-occur in some window"


class TestTheorem2SlideValidation:
    def test_slide_within_gap_ok(self):
        assert validate_slide_for_rate(sliding(minutes(15), minutes(1)), MS_PER_MINUTE)

    def test_slide_exceeding_gap_rejected(self):
        assert not validate_slide_for_rate(
            sliding(minutes(15), minutes(2)), MS_PER_MINUTE
        )


class TestIntervalBounds:
    def test_sequence_bounds_exclusive(self):
        bounds = IntervalBounds.sequence(10)
        assert bounds.accepts(100, 105)
        assert not bounds.accepts(100, 100)  # strictly after
        assert not bounds.accepts(100, 110)  # strictly within W

    def test_conjunction_bounds_symmetric(self):
        bounds = IntervalBounds.conjunction(10)
        assert bounds.accepts(100, 95)
        assert bounds.accepts(100, 105)
        assert not bounds.accepts(100, 90)
        assert not bounds.accepts(100, 110)

    def test_window_for_matches_accepts(self):
        bounds = IntervalBounds.sequence(10)
        win = bounds.window_for(100)
        for ts in range(90, 120):
            assert win.contains(ts) == bounds.accepts(100, ts)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            IntervalBounds(5, 5)
