"""The paper's claims, each as an executable assertion.

Every test here cites the paper section it checks. Where the claim is
about performance *shape*, the full-scale version lives in benchmarks/;
these are the semantic and structural claims that hold at any scale.
"""

import random

import pytest

from repro.asp.datamodel import Event
from repro.asp.operators.source import ListSource
from repro.asp.operators.window import WindowSpec
from repro.asp.time import minutes
from repro.cep.matches import dedup
from repro.cep.nfa import run_nfa
from repro.cep.pattern_api import from_sea_pattern
from repro.cep.policies import STAM, STNM, STRICT
from repro.errors import PatternValidationError, TranslationError
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.plan import CountAggregate, JoinKind, UnionAll, WindowJoin
from repro.mapping.rules import build_plan
from repro.mapping.translator import translate
from repro.sea.ast import Pattern, conj, disj, iteration, ref, seq
from repro.sea.parser import parse_pattern
from repro.sea.semantics import evaluate_pattern, evaluate_window

MIN = minutes(1)
W = WindowSpec(size=5 * MIN, slide=MIN)


def stream(seed, n=40, types=("Q", "V", "W")):
    rng = random.Random(seed)
    return [
        Event(rng.choice(types), ts=i * MIN, id=rng.randint(1, 2),
              value=round(rng.uniform(0, 100), 2))
        for i in range(n)
    ]


def sources_for(events):
    by_type = {}
    for e in events:
        by_type.setdefault(e.event_type, []).append(e)
    return {t: ListSource(v, name=t, event_type=t) for t, v in by_type.items()}


def mapped(pattern, events, options=None):
    query = translate(pattern, sources_for(events), options or TranslationOptions())
    query.execute()
    return query.matches()


class TestSection2DataModel:
    def test_claim_event_is_tuple_with_timestamp(self):
        """§2 model 1: 'one can map an event of the CEP model to an ASP
        tuple with an additional timestamp attribute.'"""
        event = Event("Q", ts=5, id=1, value=2.0)
        as_tuple = event.as_dict()
        assert "ts" in as_tuple and as_tuple["type"] == "Q"

    def test_claim_match_carries_tsb_tse(self):
        """§2 model 1: each match is ce(e1..en, ts_b, ts_e) with the
        first/last contributing timestamps."""
        matches = mapped(
            parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES SLIDE 1 MINUTE"),
            stream(1),
        )
        for match in matches:
            assert match.ts_b == min(e.ts for e in match.events)
            assert match.ts_e == max(e.ts for e in match.events)

    def test_claim_all_match_pairs_within_window(self):
        """§2 model 1: for each pair (e_i, e_j) of a match,
        |e_i.ts - e_j.ts| < W."""
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b, W c) WITHIN 4 MINUTES SLIDE 1 MINUTE"
        )
        for match in mapped(pattern, stream(2)):
            timestamps = [e.ts for e in match.events]
            assert max(timestamps) - min(timestamps) < 4 * MIN


class TestSection3Semantics:
    def test_claim_closure_property(self):
        """§3.1.1: operators return sets of events, not booleans (closure
        of SEA) — every oracle result is a composition of actual stream
        events."""
        events = stream(3)
        pool = set(id(e) for e in events)
        for match in evaluate_pattern(
            parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES SLIDE 1 MINUTE"),
            events,
        ):
            assert all(id(e) in pool for e in match.events)

    def test_claim_window_mandatory(self):
        """§3.1.4 impact 4: 'the specification of a window operator is
        mandatory for every pattern using our semantics.'"""
        with pytest.raises(PatternValidationError):
            Pattern(root=seq(ref("Q", "a"), ref("V", "b")), window=None)

    def test_claim_overlapping_windows_cause_duplicates(self):
        """§3.1.4 impact 2: overlapping substreams detect duplicate
        matches (before elimination)."""
        events = [Event("Q", ts=10 * MIN), Event("V", ts=11 * MIN)]
        pattern = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES SLIDE 1 MINUTE")
        raw = evaluate_pattern(pattern, events, deduplicate=False)
        deduped = evaluate_pattern(pattern, events)
        assert len(raw) > len(deduped) == 1

    def test_claim_and_commutative(self):
        """§3.2: 'A conjunction ... is associative and commutative.'"""
        events = stream(4)
        window = W
        a = Pattern(conj(ref("Q", "a"), ref("V", "b")), window=window)
        b = Pattern(conj(ref("V", "b"), ref("Q", "a")), window=window)
        left = {m.ordered_dedup_key() for m in evaluate_pattern(a, events)}
        right = {m.ordered_dedup_key() for m in evaluate_pattern(b, events)}
        assert left == right

    def test_claim_seq_not_commutative(self):
        """§3.2: 'a sequence is not commutative.'"""
        events = stream(5)
        a = Pattern(seq(ref("Q", "a"), ref("V", "b")), window=W)
        b = Pattern(seq(ref("V", "b"), ref("Q", "a")), window=W)
        left = {m.ordered_dedup_key() for m in evaluate_pattern(a, events)}
        right = {m.ordered_dedup_key() for m in evaluate_pattern(b, events)}
        assert left != right  # generically different on random streams

    def test_claim_nested_simplification(self):
        """§3.2 syntax: SEQ(T1, SEQ(T2, T3)) == SEQ(T1, T2, T3); same for
        AND and OR (associativity)."""
        events = stream(6)
        for outer, ctor in (("SEQ", seq), ("AND", conj), ("OR", disj)):
            if outer == "OR":
                nested = Pattern(
                    disj(ref("Q", "a"), disj(ref("V", "b"), ref("W", "c"))), window=W
                )
                flat = Pattern(
                    disj(ref("Q", "a"), ref("V", "b"), ref("W", "c")), window=W
                )
            else:
                nested = Pattern(
                    ctor(ref("Q", "a"), ctor(ref("V", "b"), ref("W", "c"))), window=W
                )
                flat = Pattern(
                    ctor(ref("Q", "a"), ref("V", "b"), ref("W", "c")), window=W
                )
            left = {m.dedup_key() for m in evaluate_pattern(nested, events)}
            right = {m.dedup_key() for m in evaluate_pattern(flat, events)}
            assert left == right, outer

    def test_claim_iteration_bounded_not_kleene(self):
        """§3.2: 'in contrast to the Kleene* and Kleene+ operator ... the
        SEA iteration operator is bounded to the exact occurrence of m
        events.'"""
        events = [Event("V", ts=i * MIN) for i in range(4)]
        bounded = Pattern(iteration(ref("V", "v"), 3), window=W)
        matches = evaluate_window(bounded, events)
        assert all(len(m) == 3 for m in matches)

    def test_claim_stam_superset_of_other_policies(self):
        """§3.1.4: 'The matches derived by skip-till-any-match are
        supersets of these policies.'"""
        events = stream(7)
        sea = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        stam = {m.dedup_key() for m in run_nfa(from_sea_pattern(sea, STAM), events)}
        for policy in (STNM, STRICT):
            subset = {
                m.dedup_key() for m in run_nfa(from_sea_pattern(sea, policy), events)
            }
            assert subset <= stam, policy


class TestSection4Mapping:
    def test_claim_table1_join_kinds(self):
        """Table 1: AND -> Cartesian product, SEQ -> Theta Join, OR ->
        union, ITER -> self-join chain / aggregation, with O3 turning
        joins into Equi Joins."""
        and_plan = build_plan(
            parse_pattern("PATTERN AND(Q a, V b) WITHIN 5 MINUTES")
        )
        assert and_plan.root.kind is JoinKind.CROSS
        seq_plan = build_plan(
            parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        )
        assert seq_plan.root.kind is JoinKind.THETA
        or_plan = build_plan(parse_pattern("PATTERN OR(Q a, V b) WITHIN 5 MINUTES"))
        assert isinstance(or_plan.root, UnionAll)
        iter_plan = build_plan(parse_pattern("PATTERN ITER3(V v) WITHIN 5 MINUTES"))
        assert sum(1 for n in iter_plan.root.walk() if isinstance(n, WindowJoin)) == 2
        o2_plan = build_plan(
            parse_pattern("PATTERN ITER3(V v) WITHIN 5 MINUTES"),
            TranslationOptions.o2(),
        )
        assert isinstance(o2_plan.root, CountAggregate)
        o3_plan = build_plan(
            parse_pattern("PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 5 MINUTES")
        )
        assert o3_plan.root.kind is JoinKind.EQUI

    def test_claim_semantic_equivalence_after_dedup(self):
        """§4 (after Negri et al.): 'two queries are semantically
        equivalent if, for all input tuples, the output tuples obtained
        are equivalent after ... eliminating duplicates.' Mapped query ==
        formal semantics on every tested stream."""
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.value < b.value "
            "WITHIN 5 MINUTES SLIDE 1 MINUTE"
        )
        for seed in range(5):
            events = stream(seed)
            want = {m.dedup_key() for m in evaluate_pattern(pattern, events)}
            got = {m.dedup_key() for m in dedup(mapped(pattern, events))}
            assert got == want

    def test_claim_seq_n_uses_n_minus_1_joins(self):
        """§4.2.2: SEQ(n) translates to n-1 consecutive Window Joins on
        non-Beam systems."""
        for n, types in ((3, "Q a, V b, W c"), (4, "Q a, V b, W c, PM10 d")):
            plan = build_plan(
                parse_pattern(f"PATTERN SEQ({types}) WITHIN 5 MINUTES")
            )
            joins = [x for x in plan.root.walk() if isinstance(x, WindowJoin)]
            assert len(joins) == n - 1

    def test_claim_o1_no_duplicates(self):
        """§4.3.1: 'the Interval Join detects all matches and prevents the
        creation of duplicates.'"""
        pattern = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES SLIDE 1 MINUTE")
        for seed in range(3):
            events = stream(seed)
            matches = mapped(pattern, events, TranslationOptions.o1())
            keys = [m.dedup_key() for m in matches]
            assert len(keys) == len(set(keys))
            want = {m.dedup_key() for m in evaluate_pattern(pattern, events)}
            assert set(keys) == want

    def test_claim_o2_approximate_one_tuple_per_window(self):
        """§4.3.2: 'aggregations return one tuple ... per window instead
        of multiple tuples with the composition of events.'"""
        events = [Event("V", ts=i * MIN) for i in range(4)]
        pattern = parse_pattern("PATTERN ITER2(V v) WITHIN 10 MINUTES SLIDE 10 MINUTES")
        exact = evaluate_pattern(pattern, events)
        approx = mapped(pattern, events, TranslationOptions.o2())
        assert len(exact) > len(approx) == 1
        (aggregate,) = approx
        assert aggregate.events[0].value >= 2  # the count, not a composition

    def test_claim_o2_no_kleene_star(self):
        """§4.3.2: 'ASP window aggregations do not trigger a window that
        has no event assigned. Thus, O2 cannot support Kleene*.' A window
        with zero qualifying events emits nothing."""
        events = [Event("V", ts=MIN, value=99.0)]  # filtered out below
        pattern = parse_pattern(
            "PATTERN ITER1(V v) WHERE v.value < 10 WITHIN 5 MINUTES SLIDE 1 MINUTE"
        )
        approx = mapped(pattern, events, TranslationOptions.o2())
        assert approx == []

    def test_claim_fcep_gap_and_or(self):
        """Table 2 / §5.1.2: the mapping enables the entire SEA operator
        set; FCEP cannot express AND or OR."""
        for text in ("PATTERN AND(Q a, V b) WITHIN 5 MINUTES",
                     "PATTERN OR(Q a, V b) WITHIN 5 MINUTES"):
            pattern = parse_pattern(text)
            assert mapped(pattern, stream(9)) is not None  # FASP runs it
            with pytest.raises(TranslationError):
                from_sea_pattern(pattern)

    def test_claim_union_before_unary_cep_operator(self):
        """§5.1.2: 'The unary CEP operator can only be applied to a single
        input stream, which requires the previous union of all input
        streams' — the harness builds exactly that topology."""
        from repro.experiments.common import Scale, qnv_workload, seq2_pattern
        from repro.runtime.harness import run_fcep

        streams = qnv_workload(Scale(events=1000, sensors=1))
        pattern = seq2_pattern(0.2, window_minutes=5)
        _m, _sink, result = run_fcep(pattern, streams)
        assert any("union" in name for name in result.stage_seconds)
        cep_stages = [n for n in result.stage_seconds if n.startswith("cep[")]
        assert len(cep_stages) == 1  # one monolithic operator

    def test_claim_decomposition_multiple_operators(self):
        """§1/§7: 'our mapping decomposes the pattern workload into
        multiple operators' — the mapped SEQ(3) runs >= 3 stateful/
        stream operators instead of one."""
        plan = build_plan(parse_pattern("PATTERN SEQ(Q a, V b, W c) WITHIN 5 MINUTES"))
        assert len(plan.operators()) >= 5  # 3 scans + 2 joins
