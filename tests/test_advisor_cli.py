"""Tests for the optimization advisor and the command-line interface."""

import pytest

from repro.asp.datamodel import Event, TypeRegistry
from repro.asp.time import minutes
from repro.cli import main
from repro.mapping.advisor import (
    Recommendation,
    StreamStatistics,
    recommend_options,
    statistics_from_streams,
)
from repro.mapping.plan import WindowStrategy
from repro.sea.parser import parse_pattern


def stats(**rates):
    return {
        t: StreamStatistics(t, rate_eps=r) for t, r in rates.items()
    }


class TestAdvisor:
    def test_equi_predicates_trigger_o3_reasoning(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 15 MINUTES"
        )
        rec = recommend_options(pattern, stats(Q=1.0, V=1.0))
        assert any("O3" in r for r in rec.reasons)

    def test_explicit_partition_attribute(self):
        pattern = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES")
        rec = recommend_options(pattern, partition_attribute="id")
        assert rec.options.partition_attribute == "id"

    def test_sparse_left_stream_selects_interval_join(self):
        pattern = parse_pattern("PATTERN SEQ(PM10 a, V b) WITHIN 15 MINUTES")
        rec = recommend_options(pattern, stats(PM10=0.01, V=1.0))
        assert rec.options.join_strategy is WindowStrategy.INTERVAL
        assert any("O1" in r for r in rec.reasons)

    def test_busy_left_stream_keeps_sliding_windows(self):
        pattern = parse_pattern(
            "PATTERN SEQ(V a, PM10 b) WITHIN 15 MINUTES SLIDE 1 MINUTE"
        )
        rec = recommend_options(pattern, stats(V=1.0, PM10=0.01))
        assert rec.options.join_strategy is WindowStrategy.SLIDING
        assert any("sliding windows kept" in r for r in rec.reasons)

    def test_many_concurrent_windows_select_interval_join(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WITHIN 90 MINUTES SLIDE 1 MINUTE"
        )
        rec = recommend_options(pattern, stats(Q=1.0, V=1.0))
        assert rec.options.join_strategy is WindowStrategy.INTERVAL

    def test_iterations_recommend_o2(self):
        pattern = parse_pattern("PATTERN ITER3(V v) WITHIN 15 MINUTES")
        rec = recommend_options(pattern)
        assert rec.options.iteration_strategy == "aggregate"

    def test_exact_iterations_on_request(self):
        pattern = parse_pattern("PATTERN ITER3(V v) WITHIN 15 MINUTES")
        rec = recommend_options(pattern, allow_approximate_iterations=False)
        assert rec.options.iteration_strategy == "join"

    def test_kleene_plus_forces_o2(self):
        pattern = parse_pattern("PATTERN ITER2+(V v) WITHIN 15 MINUTES")
        rec = recommend_options(pattern, allow_approximate_iterations=False)
        assert rec.options.iteration_strategy == "aggregate"
        assert any("Kleene" in r for r in rec.reasons)

    def test_conjunction_reorders_with_registry(self):
        pattern = parse_pattern("PATTERN AND(Q a, PM10 b) WITHIN 15 MINUTES")
        rec = recommend_options(pattern, registry=TypeRegistry.paper_default())
        assert rec.options.reorder_by_frequency

    def test_registry_frequencies_used_as_fallback(self):
        pattern = parse_pattern(
            "PATTERN SEQ(PM10 a, Q b) WITHIN 15 MINUTES SLIDE 1 MINUTE"
        )
        rec = recommend_options(pattern, registry=TypeRegistry.paper_default())
        # PM10 reports every 4 minutes vs Q every minute: sparse left.
        assert rec.options.join_strategy is WindowStrategy.INTERVAL

    def test_no_opportunity_yields_plain_fasp(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES SLIDE 1 MINUTE"
        )
        rec = recommend_options(pattern)
        assert rec.options.label() == "FASP"
        assert rec.reasons

    def test_explain_renders(self):
        pattern = parse_pattern("PATTERN ITER3(V v) WITHIN 15 MINUTES")
        text = recommend_options(pattern).explain()
        assert "recommended configuration" in text

    def test_statistics_from_streams(self):
        streams = {
            "Q": [Event("Q", ts=i * minutes(1)) for i in range(61)],
            "E": [Event("E", ts=0)],
        }
        got = statistics_from_streams(streams)
        assert got["Q"].rate_eps == pytest.approx(61 / 3600.0, rel=0.05)
        assert got["E"].rate_eps == 0.0

    def test_recommended_options_execute(self):
        """End-to-end: advisor output translates and runs."""
        from repro.asp.operators.source import ListSource
        from repro.mapping.translator import translate

        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 10 MINUTES SLIDE 1 MINUTE"
        )
        events_q = [Event("Q", ts=i * minutes(1), id=1, value=50.0) for i in range(20)]
        events_v = [Event("V", ts=i * minutes(1) + 30, id=1, value=10.0) for i in range(20)]
        rec = recommend_options(
            pattern, statistics_from_streams({"Q": events_q, "V": events_v})
        )
        query = translate(
            pattern,
            {"Q": ListSource(events_q, event_type="Q"),
             "V": ListSource(events_v, event_type="V")},
            rec.options,
        )
        query.execute()
        assert query.matches()


class TestCli:
    def test_explain(self, capsys):
        rc = main(["explain", "-p", "PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "LogicalPlan" in out
        assert "SELECT *" in out

    def test_generate_and_run_roundtrip(self, tmp_path, capsys):
        rc = main([
            "generate", "--out", str(tmp_path), "--segments", "2",
            "--minutes", "120",
        ])
        assert rc == 0
        rc = main([
            "run", "-p",
            "PATTERN SEQ(Q a, V b) WHERE a.value > 80 AND b.value < 30 "
            "WITHIN 15 MINUTES",
            "--stream", f"Q={tmp_path}/Q.csv",
            "--stream", f"V={tmp_path}/V.csv",
            "--engine", "both", "--show", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "engines agree: True" in out

    def test_run_with_o1_flag(self, tmp_path, capsys):
        main(["generate", "--out", str(tmp_path), "--segments", "2",
              "--minutes", "60"])
        rc = main([
            "run", "-p", "PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES", "--o1",
            "--stream", f"Q={tmp_path}/Q.csv",
            "--stream", f"V={tmp_path}/V.csv",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FASP-O1" in out

    def test_advise(self, tmp_path, capsys):
        main(["generate", "--out", str(tmp_path), "--segments", "2",
              "--minutes", "120", "--air-quality"])
        rc = main([
            "advise", "-p",
            "PATTERN SEQ(PM10 a, Q b) WHERE a.id = b.id WITHIN 30 MINUTES",
            "--stream", f"PM10={tmp_path}/PM10.csv",
            "--stream", f"Q={tmp_path}/Q.csv",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "recommended configuration" in out

    def test_missing_pattern_errors(self, capsys):
        rc = main(["explain"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_stream_spec_errors(self, capsys):
        rc = main([
            "run", "-p", "PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES",
            "--stream", "no-equals-sign",
        ])
        assert rc == 2

    def test_pattern_file(self, tmp_path, capsys):
        pattern_file = tmp_path / "p.sase"
        pattern_file.write_text("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        rc = main(["explain", "--pattern-file", str(pattern_file)])
        assert rc == 0

    def test_fcep_rejects_or_gracefully(self, tmp_path, capsys):
        main(["generate", "--out", str(tmp_path), "--segments", "1",
              "--minutes", "30"])
        rc = main([
            "run", "-p", "PATTERN OR(Q a, V b) WITHIN 5 MINUTES",
            "--stream", f"Q={tmp_path}/Q.csv",
            "--stream", f"V={tmp_path}/V.csv",
            "--engine", "fcep",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "unsupported" in out


class TestCliBench:
    def test_bench_subcommand(self, capsys):
        rc = main(["bench", "fig3a", "--events", "2000", "--sensors", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SEQ1" in out and "speedups vs FCEP" in out

    def test_bench_unknown_experiment(self, capsys):
        rc = main(["bench", "fig99"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err
