"""Tests for the window joins — the physical heart of the mapping.

Both join flavours are validated against brute-force reference
computations, including the duplicate-free property of interval joins
(paper O1) and the first-shared-window emission rule of sliding joins.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.datamodel import Event
from repro.asp.operators.join import IntervalJoin, SlidingWindowJoin, compose
from repro.asp.operators.window import IntervalBounds, WindowSpec
from repro.asp.state import StateRegistry
from repro.asp.time import Watermark

MIN = 60_000


def drive_join(join, left, right, watermark_step=MIN):
    """Feed two time-ordered streams into a binary join, interleaved by
    timestamp, advancing the watermark as time passes."""
    join.setup(StateRegistry())
    out = []
    items = sorted(
        [(e.ts, 0, e) for e in left] + [(e.ts, 1, e) for e in right],
        key=lambda t: (t[0], t[1]),
    )
    last_wm = None
    for ts, port, event in items:
        wm_due = ts - watermark_step
        if last_wm is None or wm_due - last_wm >= watermark_step:
            out.extend(join.on_watermark(Watermark(wm_due)))
            last_wm = wm_due
        out.extend(join.process(event, port=port))
    out.extend(join.on_watermark(Watermark.terminal()))
    return out


def brute_force_cowindow_pairs(left, right, size, slide, theta=None):
    """All (l, r) pairs sharing at least one sliding window."""
    out = []
    for l in left:
        for r in right:
            newest = max(l.ts, r.ts)
            oldest = min(l.ts, r.ts)
            first_k = -(-(newest - size + 1) // slide)
            if first_k * slide <= oldest:
                if theta is None or theta(l, r):
                    out.append((l, r))
    return out


def events_every_minute(event_type, count, start=0, id=1):
    return [Event(event_type, ts=start + i * MIN, id=id, value=i) for i in range(count)]


class TestCompose:
    def test_min_ts_for_partial_matches(self):
        q, v = Event("Q", ts=10), Event("V", ts=30)
        ce = compose(q, v, "min")
        assert ce.ts == 10

    def test_max_ts_for_complete_matches(self):
        q, v = Event("Q", ts=10), Event("V", ts=30)
        assert compose(q, v, "max").ts == 30

    def test_flattens_nested_compositions(self):
        q, v, w = Event("Q", ts=1), Event("V", ts=2), Event("W", ts=3)
        pair = compose(q, v, "min")
        triple = compose(pair, w, "min")
        assert triple.events == (q, v, w)


class TestSlidingWindowJoin:
    def test_matches_brute_force(self):
        left = events_every_minute("Q", 20)
        right = events_every_minute("V", 20, start=30_000)
        spec = WindowSpec(5 * MIN, MIN)
        join = SlidingWindowJoin(spec, theta=lambda l, r: l.ts < r.ts)
        got = drive_join(join, left, right)
        expected = brute_force_cowindow_pairs(
            left, right, spec.size, spec.slide, theta=lambda l, r: l.ts < r.ts
        )
        assert len(got) == len(expected)
        assert {(ce.events[0].ts, ce.events[1].ts) for ce in got} == {
            (l.ts, r.ts) for l, r in expected
        }

    def test_no_duplicate_emissions_by_default(self):
        left = events_every_minute("Q", 10)
        right = events_every_minute("V", 10)
        join = SlidingWindowJoin(WindowSpec(5 * MIN, MIN))
        got = drive_join(join, left, right)
        keys = [ce.dedup_key() for ce in got]
        assert len(keys) == len(set(keys))

    def test_emit_duplicates_produces_per_window_copies(self):
        left = [Event("Q", ts=10 * MIN)]
        right = [Event("V", ts=10 * MIN)]
        join = SlidingWindowJoin(WindowSpec(5 * MIN, MIN), emit_duplicates=True)
        got = drive_join(join, left, right)
        # co-located pair shares all 5 overlapping windows
        assert len(got) == 5

    def test_keyed_join_restricts_to_same_key(self):
        left = [Event("Q", ts=MIN, id=1), Event("Q", ts=MIN, id=2)]
        right = [Event("V", ts=2 * MIN, id=1)]
        join = SlidingWindowJoin(
            WindowSpec(5 * MIN, MIN),
            left_key=lambda e: e.id,
            right_key=lambda e: e.id,
        )
        got = drive_join(join, left, right)
        assert len(got) == 1
        assert got[0].events[0].id == 1

    def test_eviction_bounds_state(self):
        join = SlidingWindowJoin(WindowSpec(5 * MIN, MIN))
        registry = StateRegistry()
        join.setup(registry)
        for i in range(100):
            join.process(Event("Q", ts=i * MIN), port=0)
            join.on_watermark(Watermark(i * MIN - MIN))
        # only ~window-size worth of items retained
        assert registry.total_items() <= 8

    def test_theta_none_is_cross_product(self):
        left = [Event("Q", ts=MIN), Event("Q", ts=2 * MIN)]
        right = [Event("V", ts=MIN + 1000), Event("V", ts=2 * MIN + 1000)]
        join = SlidingWindowJoin(WindowSpec(10 * MIN, MIN))
        got = drive_join(join, left, right)
        assert len(got) == 4  # all pairs co-window

    def test_invalid_port(self):
        join = SlidingWindowJoin(WindowSpec(MIN, MIN))
        join.setup(StateRegistry())
        with pytest.raises(ValueError):
            join.process(Event("Q", ts=1), port=2)

    def test_watermark_delay_equals_window_size(self):
        join = SlidingWindowJoin(WindowSpec(5 * MIN, MIN))
        assert join.watermark_delay() == 5 * MIN

    def test_pairs_tested_counts_work(self):
        left = events_every_minute("Q", 5)
        right = events_every_minute("V", 5)
        join = SlidingWindowJoin(WindowSpec(3 * MIN, MIN))
        drive_join(join, left, right)
        assert join.pairs_tested > 0
        assert join.pairs_emitted <= join.pairs_tested


class TestIntervalJoin:
    def test_sequence_bounds_match_brute_force(self):
        left = events_every_minute("Q", 20)
        right = events_every_minute("V", 20, start=30_000)
        W = 5 * MIN
        join = IntervalJoin(IntervalBounds.sequence(W))
        got = drive_join(join, left, right)
        expected = [
            (l, r) for l in left for r in right if l.ts < r.ts < l.ts + W
        ]
        assert {(ce.events[0].ts, ce.events[1].ts) for ce in got} == {
            (l.ts, r.ts) for l, r in expected
        }
        assert len(got) == len(expected)  # duplicate-free (O1)

    def test_conjunction_bounds_symmetric(self):
        left = [Event("Q", ts=10 * MIN)]
        right = [Event("V", ts=8 * MIN), Event("V", ts=12 * MIN), Event("V", ts=20 * MIN)]
        join = IntervalJoin(IntervalBounds.conjunction(5 * MIN))
        got = drive_join(join, left, right)
        assert len(got) == 2  # both within +-5 minutes

    def test_eager_emission_on_arrival(self):
        join = IntervalJoin(IntervalBounds.sequence(5 * MIN))
        join.setup(StateRegistry())
        assert not list(join.process(Event("Q", ts=MIN), port=0))
        out = list(join.process(Event("V", ts=2 * MIN), port=1))
        assert len(out) == 1

    def test_late_left_joins_buffered_right(self):
        join = IntervalJoin(IntervalBounds.conjunction(5 * MIN))
        join.setup(StateRegistry())
        join.process(Event("V", ts=2 * MIN), port=1)
        out = list(join.process(Event("Q", ts=3 * MIN), port=0))
        assert len(out) == 1

    def test_keyed_interval_join(self):
        join = IntervalJoin(
            IntervalBounds.sequence(5 * MIN),
            left_key=lambda e: e.id,
            right_key=lambda e: e.id,
        )
        join.setup(StateRegistry())
        join.process(Event("Q", ts=MIN, id=1), port=0)
        assert not list(join.process(Event("V", ts=2 * MIN, id=2), port=1))
        assert list(join.process(Event("V", ts=2 * MIN, id=1), port=1))

    def test_eviction_by_watermark(self):
        join = IntervalJoin(IntervalBounds.sequence(2 * MIN))
        registry = StateRegistry()
        join.setup(registry)
        for i in range(50):
            join.process(Event("Q", ts=i * MIN), port=0)
            join.on_watermark(Watermark(i * MIN))
        assert registry.total_items() <= 4

    def test_watermark_delay(self):
        assert IntervalJoin(IntervalBounds.sequence(7)).watermark_delay() == 7
        assert IntervalJoin(IntervalBounds.conjunction(7)).watermark_delay() == 7


class TestJoinEquivalenceProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        left_ts=st.lists(st.integers(min_value=0, max_value=40), min_size=0,
                         max_size=12, unique=True),
        right_ts=st.lists(st.integers(min_value=0, max_value=40), min_size=0,
                          max_size=12, unique=True),
        window_slots=st.integers(min_value=1, max_value=10),
    )
    def test_sliding_join_equals_brute_force_on_grid(self, left_ts, right_ts, window_slots):
        """Grid-aligned streams: sliding join == brute-force co-window
        pairs (after the first-shared-window dedup)."""
        left = [Event("Q", ts=t * MIN, value=t) for t in sorted(left_ts)]
        right = [Event("V", ts=t * MIN, value=t) for t in sorted(right_ts)]
        spec = WindowSpec(window_slots * MIN, MIN)
        join = SlidingWindowJoin(spec, theta=lambda l, r: l.ts < r.ts)
        got = drive_join(join, left, right)
        expected = brute_force_cowindow_pairs(
            left, right, spec.size, spec.slide, theta=lambda l, r: l.ts < r.ts
        )
        assert {(ce.events[0].ts, ce.events[1].ts) for ce in got} == {
            (l.ts, r.ts) for l, r in expected
        }

    @settings(max_examples=30, deadline=None)
    @given(
        left_ts=st.lists(st.integers(min_value=0, max_value=10**6), min_size=0,
                         max_size=12, unique=True),
        right_ts=st.lists(st.integers(min_value=0, max_value=10**6), min_size=0,
                          max_size=12, unique=True),
        window=st.integers(min_value=1, max_value=10**5),
    )
    def test_interval_join_exact_for_arbitrary_timestamps(self, left_ts, right_ts, window):
        """O1 needs no grid alignment: exact for arbitrary timestamps."""
        left = [Event("Q", ts=t) for t in sorted(left_ts)]
        right = [Event("V", ts=t) for t in sorted(right_ts)]
        join = IntervalJoin(IntervalBounds.sequence(window))
        got = drive_join(join, left, right, watermark_step=window)
        expected = {
            (l.ts, r.ts)
            for l in left
            for r in right
            if l.ts < r.ts < l.ts + window
        }
        assert {(ce.events[0].ts, ce.events[1].ts) for ce in got} == expected
