"""Reduced-scale chaos exactness over the pattern catalog.

CI's ``chaos`` job runs the full suite via ``python -m repro chaos``;
this test keeps a smaller always-on version inside the tier-1 suite so
a recovery regression fails fast, locally, before CI.
"""

from repro.asp.datamodel import ComplexEvent, Event
from repro.asp.runtime.fault.chaos import canonical_match_bytes, run_chaos_suite
from repro.cli import main


def _ce(ts, ids):
    return ComplexEvent(tuple(Event("Q", ts=ts, id=i, value=1.0) for i in ids))


class TestCanonicalBytes:
    def test_order_independent_but_multiset_sensitive(self):
        a, b = _ce(10, [1]), _ce(20, [2])
        assert canonical_match_bytes([a, b]) == canonical_match_bytes([b, a])
        assert canonical_match_bytes([a]) != canonical_match_bytes([a, a])
        assert canonical_match_bytes([]) == b""


class TestChaosSuite:
    def test_reduced_scale_catalog_subset(self):
        report = run_chaos_suite(
            events=600,
            sensors=2,
            seed=11,
            shards=2,
            checkpoint_interval=50,
            patterns=["traffic-congestion", "street-lighting-demand"],
        )
        assert report["ok"] is True
        assert len(report["queries"]) == 2
        for query in report["queries"]:
            serial = query["serial"]
            assert serial["match"] is True
            assert serial["restarts"] >= 1  # a crash actually fired
            assert serial["checkpoints"]["count"] > 0
            sharded = query["sharded"]
            if not sharded.get("skipped"):
                assert sharded["match"] is True
                assert sharded["restarts"] >= 1

    def test_cli_chaos_writes_report(self, tmp_path, capsys):
        report_path = tmp_path / "chaos.json"
        code = main(
            [
                "chaos",
                "--events", "400",
                "--sensors", "2",
                "--seed", "3",
                "--checkpoint-interval", "40",
                "--patterns", "vehicle-pollution-alert",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos suite (1 queries): OK" in out
        import json

        written = json.loads(report_path.read_text())
        assert written["ok"] is True
        assert written["queries"][0]["pattern"] == "vehicle-pollution-alert"
