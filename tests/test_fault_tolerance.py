"""Checkpoint/recovery and fault injection (repro.asp.runtime.fault).

Covers the stores, the coordinator's overhead metrics, the injector's
determinism, and the exactness guarantee: a crashed-and-recovered run —
serial or sharded — emits exactly what the clean run emits.
"""

import time

import pytest

from repro.asp.datamodel import Event
from repro.asp.operators.dedup import DedupOperator
from repro.asp.operators.sink import CollectSink
from repro.asp.runtime import (
    DirectoryCheckpointStore,
    FaultPlan,
    FaultSpec,
    InMemoryCheckpointStore,
    ShardedBackend,
    parse_fault_plan,
)
from repro.asp.runtime.fault.injection import FaultInjector
from repro.asp.runtime.fault.store import (
    Checkpoint,
    CheckpointStore,
    pickle_payload,
    unpickle_payload,
)
from repro.asp.stream import StreamEnvironment
from repro.asp.time import minutes
from repro.errors import ExecutionError, InjectedFaultError
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern

MIN = minutes(1)


def make_events(n, ids=3, event_type="Q"):
    return [
        Event(event_type, ts=i * MIN, id=(i % ids) + 1, value=float(i % 50))
        for i in range(n)
    ]


def dedup_env(events):
    """src -> dedup -> collect; stateful, single-operator pipeline."""
    env = StreamEnvironment("ft")
    sink = (
        env.from_events(events, name="src", event_type="Q")
        .transform(DedupOperator(window_size=10 * MIN, name="dedup"))
        .sink(CollectSink())
    )
    return env, sink


def keyed_query(events_q, events_v, partition=None):
    pattern = parse_pattern(
        "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 5 MINUTES",
        name="ft-keyed",
    )
    sources = {"Q": events_q, "V": events_v}
    from repro.asp.operators.source import ListSource

    typed = {
        t: ListSource(list(evs), name=f"src[{t}]", event_type=t)
        for t, evs in sources.items()
    }
    options = TranslationOptions(partition_attribute=partition)
    return translate(pattern, typed, options, analyze=False)


class TestStores:
    def test_in_memory_retention(self):
        store = InMemoryCheckpointStore(retain=3)
        for i in range(5):
            store.save(Checkpoint(i, offset=i * 10, payload=b"x" * i))
        kept = store.checkpoints()
        assert [c.checkpoint_id for c in kept] == [2, 3, 4]
        assert store.latest().offset == 40
        store.clear()
        assert store.latest() is None

    def test_in_memory_scoped_is_independent(self):
        store = InMemoryCheckpointStore()
        scoped = store.scoped("shard-0")
        scoped.save(Checkpoint(1, offset=5, payload=b"s"))
        assert store.latest() is None
        assert scoped.latest().checkpoint_id == 1

    def test_directory_store_survives_reopen(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path / "chk", retain=2)
        for i in range(4):
            store.save(Checkpoint(i, offset=i * 7, payload=f"p{i}".encode()))
        reopened = DirectoryCheckpointStore(tmp_path / "chk", retain=2)
        assert [c.checkpoint_id for c in reopened.checkpoints()] == [2, 3]
        assert reopened.latest().payload == b"p3"
        # Stale blobs were actually deleted, not just delisted. Names are
        # chk-<writer>-<id>.pickle so concurrent stores never collide.
        files = sorted(p.name for p in (tmp_path / "chk").glob("chk-*.pickle"))
        assert [name.rsplit("-", 1)[-1] for name in files] == [
            "2.pickle",
            "3.pickle",
        ]
        assert isinstance(store, CheckpointStore)

    def test_directory_store_scoped_subdir(self, tmp_path):
        store = DirectoryCheckpointStore(tmp_path)
        shard = store.scoped("shard-1")
        shard.save(Checkpoint(9, offset=3, payload=b"z"))
        assert store.latest() is None
        assert list((tmp_path / "shard-1").glob("chk-*-9.pickle"))

    def test_payload_round_trip_and_corruption(self):
        import pickle

        data = {"operators": {1: {"work_units": 3}}, "offset": 12}
        assert unpickle_payload(pickle_payload(data)) == data
        with pytest.raises(TypeError):
            unpickle_payload(pickle.dumps([1, 2]))

    def test_directory_store_concurrent_writers_same_dir(self, tmp_path):
        """Two stores over one directory (the `repro serve` shape when
        jobs share a checkpoint root) must not lose or corrupt
        checkpoints: writer-tagged filenames plus manifest locking."""
        import threading

        stores = [
            DirectoryCheckpointStore(tmp_path / "chk", retain=50)
            for _ in range(4)
        ]
        errors = []

        def writer(store, base):
            try:
                for i in range(25):
                    store.save(
                        Checkpoint(base + i, offset=i, payload=b"x" * 64)
                    )
                    store.latest()
                    store.checkpoints()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(store, 1000 * n))
            for n, store in enumerate(stores)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        merged = DirectoryCheckpointStore(tmp_path / "chk", retain=200)
        kept = merged.checkpoints()
        # No lost updates: 100 saves through a retain-50 manifest must
        # leave exactly 50 entries (unlocked read-modify-write races drop
        # entries), and every referenced payload file must still exist
        # and be intact (races delete files another writer still lists).
        assert len(kept) == 50
        for checkpoint in kept:
            assert checkpoint.payload == b"x" * 64
        # each writer's surviving ids appear in its own save order
        ids = [c.checkpoint_id for c in kept]
        for n in range(4):
            per_writer = [i for i in ids if 1000 * n <= i < 1000 * n + 25]
            assert per_writer == sorted(per_writer)

    def test_directory_store_scoped_jobs_never_interfere(self, tmp_path):
        import threading

        base = DirectoryCheckpointStore(tmp_path)
        results = {}

        def job(label):
            scoped = base.scoped(label)
            for i in range(20):
                scoped.save(Checkpoint(i, offset=i, payload=label.encode()))
            results[label] = scoped.latest()

        threads = [
            threading.Thread(target=job, args=(f"job-{n}",)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for label, latest in results.items():
            assert latest.checkpoint_id == 19
            assert latest.payload == label.encode()


class TestFaultPlans:
    def test_parse_full_plan(self):
        plan = parse_fault_plan(
            "crash:at=250,shard=1; slow:op=dedup,delay=0.001; drop:from=a,to=b"
        )
        crash, slow, drop = plan.faults
        assert (crash.kind, crash.at_event, crash.shard) == ("crash", 250, 1)
        assert (slow.operator, slow.delay_s) == ("dedup", 0.001)
        assert drop.edge == ("a", "b")

    @pytest.mark.parametrize(
        "text",
        ["", "explode:now", "crash:at", "crash:at=zero", "slow:op=x"],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ExecutionError):
            parse_fault_plan(text)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("crash")
        with pytest.raises(ValueError):
            FaultSpec("slow", operator="x", delay_s=0.0)
        with pytest.raises(ValueError):
            FaultSpec("warp", at_event=1)

    def test_for_shard_filters(self):
        plan = FaultPlan(
            (
                FaultSpec("crash", at_event=10, shard=0),
                FaultSpec("crash", at_event=20, shard=1),
                FaultSpec("slow", operator="x", delay_s=0.1),
            )
        )
        shard0 = plan.for_shard(0)
        assert [f.at_event for f in shard0.faults if f.kind == "crash"] == [10]
        assert any(f.kind == "slow" for f in shard0.faults)
        assert plan.for_shard(7).faults == (FaultSpec("slow", operator="x", delay_s=0.1),)

    def test_crash_each_shard_once_is_seeded(self):
        a = FaultPlan.crash_each_shard_once(4, 10, 500, seed=3)
        b = FaultPlan.crash_each_shard_once(4, 10, 500, seed=3)
        assert a == b
        assert sorted(f.shard for f in a.faults) == [0, 1, 2, 3]
        assert all(10 <= f.at_event <= 500 for f in a.faults)

    def test_crash_fires_exactly_once(self):
        injector = FaultInjector(FaultPlan((FaultSpec("crash", at_event=5),)))
        with pytest.raises(InjectedFaultError) as exc_info:
            injector.before_event(5)
        assert exc_info.value.at_event == 5
        injector.before_event(5)  # replay past the same offset: no re-fire
        assert injector.crashes_fired == 1


class TestSerialRecovery:
    def test_recovered_run_is_identical_to_clean(self):
        events = make_events(400)
        clean_env, clean_sink = dedup_env(events)
        clean_env.execute()

        env, sink = dedup_env(events)
        plan = FaultPlan((FaultSpec("crash", at_event=123),))
        result = env.execute(checkpoint_interval=50, fault_plan=plan)

        assert not result.failed
        assert sink.items == clean_sink.items
        recovery = result.metrics["recovery"]
        assert recovery["attempts"] == 2
        assert recovery["recovered"] is True
        (restart,) = recovery["restarts"]
        assert restart["failed_at_event"] == 123
        assert restart["resumed_from_offset"] == 100
        assert restart["replayed_events"] == 22
        checkpoints = result.metrics["checkpoints"]
        assert checkpoints["count"] >= 8
        assert checkpoints["bytes_total"] > 0
        assert checkpoints["duration_p95_s"] >= 0.0

    def test_crash_before_first_cadence_checkpoint(self):
        # Checkpoint 0 (pre-stream) makes a crash at event 3 recoverable
        # even though the first cadence checkpoint would be at 100.
        events = make_events(150)
        clean_env, clean_sink = dedup_env(events)
        clean_env.execute()
        env, sink = dedup_env(events)
        plan = FaultPlan((FaultSpec("crash", at_event=3),))
        result = env.execute(checkpoint_interval=100, fault_plan=plan)
        assert not result.failed
        assert result.metrics["recovery"]["restarts"][0]["resumed_from_offset"] == 0
        assert sink.items == clean_sink.items

    def test_two_crashes_three_attempts(self):
        events = make_events(300)
        env, sink = dedup_env(events)
        plan = FaultPlan(
            (FaultSpec("crash", at_event=80), FaultSpec("crash", at_event=160))
        )
        result = env.execute(checkpoint_interval=25, fault_plan=plan)
        assert not result.failed
        assert result.metrics["recovery"]["attempts"] == 3
        clean_env, clean_sink = dedup_env(events)
        clean_env.execute()
        assert sink.items == clean_sink.items

    def test_restart_budget_exhaustion_fails_the_run(self):
        events = make_events(100)
        env, _sink = dedup_env(events)
        plan = FaultPlan((FaultSpec("crash", at_event=10),))
        result = env.execute(checkpoint_interval=20, fault_plan=plan, max_restarts=0)
        assert result.failed
        assert "injected crash" in result.failure
        recovery = result.metrics["recovery"]
        assert recovery["recovered"] is False
        assert recovery["attempts"] == 1

    def test_directory_store_backs_recovery(self, tmp_path):
        events = make_events(200)
        clean_env, clean_sink = dedup_env(events)
        clean_env.execute()
        store = DirectoryCheckpointStore(tmp_path / "job")
        env, sink = dedup_env(events)
        plan = FaultPlan((FaultSpec("crash", at_event=77),))
        result = env.execute(
            checkpoint_interval=30, checkpoint_store=store, fault_plan=plan
        )
        assert not result.failed
        assert sink.items == clean_sink.items
        assert store.latest() is not None
        assert (tmp_path / "job" / "manifest.json").exists()


class TestSlowAndDropFaults:
    def test_slow_fault_advances_virtual_not_wall_time(self):
        events = make_events(200)
        env, _sink = dedup_env(events)
        plan = FaultPlan((FaultSpec("slow", operator="dedup", delay_s=0.05),))
        started = time.perf_counter()
        result = env.execute(fault_plan=plan)
        real_elapsed = time.perf_counter() - started
        # 200 items x 50ms of virtual delay = 10s of virtual wall time,
        # while no real sleeping happened.
        assert result.wall_seconds >= 10.0
        assert real_elapsed < 5.0

    def test_slow_fault_unknown_operator_is_an_error(self):
        events = make_events(20)
        env, _sink = dedup_env(events)
        plan = FaultPlan((FaultSpec("slow", operator="nonesuch", delay_s=0.1),))
        with pytest.raises(ExecutionError, match="nonesuch"):
            env.execute(fault_plan=plan)

    def test_drop_fault_severs_the_channel(self):
        events = make_events(50)
        clean_env, clean_sink = dedup_env(events)
        clean_env.execute()
        assert clean_sink.items  # the clean pipeline does emit

        env, sink = dedup_env(events)
        plan = FaultPlan((FaultSpec("drop", edge=("src", "dedup")),))
        result = env.execute(fault_plan=plan)
        assert not result.failed
        assert sink.items == []


class TestShardedRecovery:
    def _streams(self, n=240, ids=4):
        qs = make_events(n, ids=ids, event_type="Q")
        vs = [
            Event("V", ts=e.ts + MIN // 2, id=e.id, value=e.value)
            for e in qs
        ]
        return qs, vs

    def test_crashed_shards_recover_to_serial_output(self):
        qs, vs = self._streams()
        clean = keyed_query(qs, vs, partition="id")
        clean.execute()
        want = sorted(repr(m.dedup_key()) for m in clean.matches())
        assert want  # the reference run finds matches

        crashed = keyed_query(qs, vs, partition="id")
        backend = ShardedBackend(shards=2, key_attribute="id", mode="inline")
        plan = FaultPlan.crash_each_shard_once(2, 20, 90, seed=5)
        result = crashed.execute(
            backend=backend, checkpoint_interval=25, fault_plan=plan
        )
        got = sorted(repr(m.dedup_key()) for m in crashed.matches())
        assert not result.failed
        assert got == want
        recovery = result.metrics["recovery"]
        assert recovery["restarts"] == 2  # every shard died once
        assert recovery["recovered"] is True
        assert len(recovery["shards"]) == 2
        assert result.metrics["checkpoints"]["count"] > 0

    def test_shard_scoped_fault_leaves_other_shards_alone(self):
        qs, vs = self._streams()
        query = keyed_query(qs, vs, partition="id")
        backend = ShardedBackend(shards=2, key_attribute="id", mode="inline")
        plan = FaultPlan((FaultSpec("crash", at_event=30, shard=1),))
        result = query.execute(
            backend=backend, checkpoint_interval=20, fault_plan=plan
        )
        assert not result.failed
        shard_reports = result.metrics["recovery"]["shards"]
        restart_counts = [len(s["restarts"]) for s in shard_reports]
        assert sorted(restart_counts) == [0, 1]
