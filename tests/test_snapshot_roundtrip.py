"""Property tests for the operator snapshot protocol.

Random patterns (the PR 3 hypothesis generators) drive two properties
over every stateful operator the translator can produce — joins,
aggregates, dedup, NSEQ UDF, the NFA operator:

* snapshot -> pickle -> restore into a fresh twin -> snapshot again is a
  fixed point (state survives serialization byte-for-byte);
* a run crashed mid-stream and recovered from a checkpoint finishes with
  exactly the clean run's matches.
"""

from hypothesis import given, settings, strategies as st

from repro.asp.runtime import FaultPlan, FaultSpec
from repro.asp.runtime.backends.base import ExecutionSettings
from repro.asp.runtime.backends.serial import SerialJob
from repro.asp.runtime.fault.checkpoint import capture_job_state, restore_job_state
from repro.asp.runtime.fault.store import pickle_payload, unpickle_payload
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern

from tests.test_random_patterns import (
    flat_pattern_text,
    make_stream,
    nested_pattern_text,
    sources_for,
)


def _fresh_query(pattern, events):
    query = translate(pattern, sources_for(events))
    query.attach_sink()
    return query


def _state_key(state):
    """The parts of a captured job state that restore must reproduce."""
    return pickle_payload(
        {"operators": state["operators"], "watermark": state["watermark"]}
    )


class TestSnapshotRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(text=flat_pattern_text(), seed=st.integers(min_value=0, max_value=10**6))
    def test_restore_into_twin_is_a_fixed_point(self, text, seed):
        pattern = parse_pattern(text)
        events = make_stream(seed, n=35)

        original = _fresh_query(pattern, events)
        job = SerialJob(original.env.flow, ExecutionSettings())
        job.run()
        state = capture_job_state(job)
        payload = pickle_payload(state)

        twin = _fresh_query(pattern, events)
        twin_job = SerialJob(twin.env.flow, ExecutionSettings())
        restore_job_state(twin_job, unpickle_payload(payload))
        assert _state_key(capture_job_state(twin_job)) == _state_key(state)

    @settings(max_examples=8, deadline=None)
    @given(text=nested_pattern_text(), seed=st.integers(min_value=0, max_value=10**6))
    def test_nested_patterns_round_trip_too(self, text, seed):
        pattern = parse_pattern(text)
        events = make_stream(seed, n=30)
        original = _fresh_query(pattern, events)
        job = SerialJob(original.env.flow, ExecutionSettings())
        job.run()
        state = capture_job_state(job)
        twin = _fresh_query(pattern, events)
        twin_job = SerialJob(twin.env.flow, ExecutionSettings())
        restore_job_state(twin_job, unpickle_payload(pickle_payload(state)))
        assert _state_key(capture_job_state(twin_job)) == _state_key(state)


class TestCrashRecoveryEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        text=flat_pattern_text(),
        seed=st.integers(min_value=0, max_value=10**6),
        crash_at=st.integers(min_value=2, max_value=28),
        interval=st.integers(min_value=3, max_value=12),
    )
    def test_recovered_matches_equal_clean_matches(
        self, text, seed, crash_at, interval
    ):
        pattern = parse_pattern(text)
        events = make_stream(seed, n=30)

        clean = _fresh_query(pattern, events)
        clean.env.execute()
        want = sorted(repr(m.dedup_key()) for m in clean.matches())

        crashed = _fresh_query(pattern, events)
        plan = FaultPlan((FaultSpec("crash", at_event=crash_at),))
        result = crashed.env.execute(checkpoint_interval=interval, fault_plan=plan)
        got = sorted(repr(m.dedup_key()) for m in crashed.matches())

        assert not result.failed
        # The crash only fires if the pattern's sources carry that many
        # events (the generator spreads the stream over types Q/V/W).
        relevant = [
            e for e in events if e.event_type in pattern.distinct_event_types()
        ]
        fired = crash_at <= len(relevant)
        assert result.metrics["recovery"]["attempts"] == (2 if fired else 1)
        assert got == want, text
