"""Zero-false-positive guarantee of the static verifier.

Every pattern the repository itself ships (the smart-city catalog) and a
hypothesis-generated population of random valid patterns must translate
with the pre-flight enabled and produce **zero error diagnostics** under
every optimization level — the analyzer may warn, but an error on a
valid plan is a false positive and a test failure.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_query
from repro.asp.operators.source import ListSource
from repro.mapping.advisor import recommend_options
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.translator import translate
from repro.patterns import CATALOG
from repro.sea.parser import parse_pattern

import pytest

TYPES = ["Q", "V", "W"]


def empty_sources(pattern):
    return {
        t: ListSource([], name=t, event_type=t)
        for t in pattern.distinct_event_types()
    }


@st.composite
def valid_pattern_text(draw):
    """Random valid flat or nested patterns (mirrors test_random_patterns)."""
    shape = draw(st.sampled_from(["flat", "nested", "iter"]))
    if shape == "iter":
        m = draw(st.integers(min_value=2, max_value=4))
        structure = f"ITER{m}({draw(st.sampled_from(TYPES))} v)"
        aliases = ["v"]
    elif shape == "nested":
        inner = draw(st.sampled_from(["SEQ", "AND"]))
        outer = draw(st.sampled_from(["SEQ", "AND"]))
        t = [draw(st.sampled_from(TYPES)) for _ in range(3)]
        structure = f"{outer}({t[0]} x0, {inner}({t[1]} x1, {t[2]} x2))"
        aliases = ["x0", "x1", "x2"]
    else:
        operator = draw(st.sampled_from(["SEQ", "AND", "OR"]))
        n = draw(st.integers(min_value=2, max_value=3))
        refs = [f"{draw(st.sampled_from(TYPES))} x{i}" for i in range(n)]
        structure = f"{operator}({', '.join(refs)})"
        aliases = [] if operator == "OR" else [f"x{i}" for i in range(n)]
    clauses = []
    if aliases and draw(st.booleans()):
        alias = draw(st.sampled_from(aliases))
        op = draw(st.sampled_from([">", "<", ">=", "<="]))
        clauses.append(f"{alias}.value {op} {draw(st.integers(10, 90))}")
    if len(aliases) >= 2 and draw(st.booleans()):
        clauses.append(f"{aliases[0]}.id = {aliases[1]}.id")
    where = f"WHERE {' AND '.join(clauses)} " if clauses else ""
    window = draw(st.integers(min_value=3, max_value=8))
    return f"PATTERN {structure} {where}WITHIN {window} MINUTES SLIDE 1 MINUTE"


class TestCatalogLintsClean:
    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_catalog_pattern_has_zero_errors(self, name):
        pattern = CATALOG[name]()
        options = recommend_options(pattern).options
        query = translate(pattern, empty_sources(pattern), options)
        report = query.analysis
        assert report is not None
        assert report.errors == (), report.render()

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_catalog_pattern_is_clean_under_default_options(self, name):
        pattern = CATALOG[name]()
        query = translate(pattern, empty_sources(pattern))
        assert query.analysis.errors == (), query.analysis.render()


class TestGeneratedPatternsLintClean:
    @settings(max_examples=40, deadline=None)
    @given(text=valid_pattern_text())
    def test_no_false_positive_errors(self, text):
        pattern = parse_pattern(text)
        for options in (
            TranslationOptions.fasp(),
            TranslationOptions.o1(),
            TranslationOptions.o2(),
        ):
            query = translate(pattern, empty_sources(pattern), options)
            report = analyze_query(query)
            assert report.errors == (), (text, options.label(), report.render())
