"""The `repro serve` subsystem: wire codec, job manager, admission.

In-process tests (no sockets): parsing strictness of the NDJSON
ingestion format, the job manager's submit/ingest/round/drain lifecycle,
server-vs-batch byte-identity of matches (including after injected
crashes recovered from checkpoints), and the backpressure policies on
bounded ingress queues. Live-socket coverage lives in
``test_service_live.py``.
"""

import threading
import time

import pytest

from repro.asp.datamodel import Event
from repro.asp.operators.source import ListSource
from repro.asp.runtime import ExecutionSettings, SerialBackend
from repro.asp.runtime.fault.chaos import canonical_match_bytes
from repro.errors import ServiceError
from repro.experiments.common import Scale, qnv_aq_workload
from repro.mapping.advisor import recommend_options
from repro.mapping.translator import translate
from repro.patterns import CATALOG
from repro.runtime.service import (
    JobManager,
    ServiceConfig,
    SourceTracker,
    WireError,
    event_from_wire,
    event_to_wire,
    merge_streams_for_wire,
    parse_wire_line,
)


def offset_streams(events=1200, sensors=6, seed=11):
    """QnV/AQ workload with per-type ts offsets so no two *different*
    types share a timestamp (the batch cross-type tie-break is scan
    registration order, which the wire stream cannot know)."""
    streams = {
        t: list(evs)
        for t, evs in qnv_aq_workload(
            Scale(events=events, sensors=sensors, seed=seed)
        ).items()
    }
    for offset, evs in enumerate(streams.values()):
        for event in evs:
            event.ts += offset
    return streams


def batch_reference(query_name, streams):
    """Canonical match bytes of the one-shot batch run on ``streams``."""
    pattern = CATALOG[query_name]()
    options = recommend_options(pattern).options
    sources = {
        t: ListSource(streams[t], name=f"batch[{t}]", event_type=t)
        for t in pattern.distinct_event_types()
    }
    query = translate(pattern, sources, options)
    query.attach_sink()
    SerialBackend().execute(
        query.env.flow,
        ExecutionSettings(watermark_interval=query.plan.window_slide),
    )
    return canonical_match_bytes(query.matches())


def served_bytes(manager, job_id, query_name):
    keys = manager.job_matches(job_id)["queries"][query_name]["keys"]
    return "\n".join(keys).encode("utf-8")


class TestWireCodec:
    def test_event_roundtrip(self):
        event = Event("Q", ts=60000, id=3, value=81.5, lat=1.0, lon=2.0,
                      attrs={"road": "a5"})
        doc = event_to_wire(event, source="gen", seq=9)
        message = parse_wire_line(__import__("json").dumps(doc))
        assert message["kind"] == "event"
        assert message["source"] == "gen" and message["seq"] == 9
        back = message["event"]
        assert back.event_type == "Q" and back.ts == 60000
        assert back.value == 81.5 and back.attrs == {"road": "a5"}

    def test_watermark_and_ops(self):
        assert parse_wire_line('{"watermark": 120, "source": "s"}') == {
            "kind": "watermark", "ts": 120, "source": "s",
        }
        assert parse_wire_line(b'{"op": "sync"}')["op"] == "sync"

    @pytest.mark.parametrize(
        "line,code",
        [
            ("", "empty-line"),
            ("not json", "bad-json"),
            ("[1,2]", "bad-json"),
            ('{"ts": 5}', "bad-event"),
            ('{"type": "", "ts": 5}', "bad-event"),
            ('{"type": "Q"}', "bad-event"),
            ('{"type": "Q", "ts": 1.5}', "bad-event"),
            ('{"type": "Q", "ts": true}', "bad-event"),
            ('{"type": "Q", "ts": 5, "value": "x"}', "bad-event"),
            ('{"type": "Q", "ts": 5, "seq": "x"}', "bad-event"),
            ('{"watermark": "x"}', "bad-watermark"),
            ('{"op": "explode"}', "bad-op"),
            (b"\xff\xfe", "bad-encoding"),
        ],
    )
    def test_malformed_lines_get_stable_codes(self, line, code):
        with pytest.raises(WireError) as err:
            parse_wire_line(line)
        assert err.value.code == code
        assert err.value.as_dict()["code"] == code

    def test_unknown_keys_become_attrs(self):
        event = event_from_wire({"type": "Q", "ts": 1, "road": "a5", "seq": 4})
        assert event.attrs == {"road": "a5"}  # seq is wire metadata

    def test_source_tracker_dedups_and_counts_gaps(self):
        tracker = SourceTracker()
        assert tracker.admit("a", 1) and tracker.admit("a", 2)
        assert not tracker.admit("a", 2)  # retransmit
        assert not tracker.admit("a", 1)
        assert tracker.admit("a", 5)  # gap, still admitted
        assert tracker.admit(None, None)  # untracked producers always pass
        assert tracker.duplicates == 2 and tracker.gaps == 1
        tracker.heartbeat("a", 100)
        tracker.heartbeat("a", 50)  # regressions ignored
        tracker.heartbeat("b", 80)
        assert tracker.min_watermark() == 80
        assert tracker.as_dict()["sources"]["a"]["watermark"] == 100

    def test_merge_streams_is_a_stable_ts_merge(self):
        streams = {
            "A": [Event("A", ts=1), Event("A", ts=3)],
            "B": [Event("B", ts=2), Event("B", ts=4)],
        }
        merged = list(merge_streams_for_wire(streams))
        assert [e.ts for e in merged] == [1, 2, 3, 4]


class TestSubmit:
    def test_submit_catalog_query(self):
        manager = JobManager()
        info = manager.submit({"query": "traffic-congestion"})
        assert info["state"] == "running"
        assert info["queries"] == ["traffic-congestion"]
        assert set(info["event_types"]) == {"Q", "V"}

    def test_cosubmitted_queries_share_scans(self):
        manager = JobManager()
        info = manager.submit(
            {"name": "combo",
             "queries": ["traffic-congestion", "street-lighting-demand"]}
        )
        assert info["shared_scans"] >= 1  # Q/V scans shared across plans

    def test_inline_pattern(self):
        manager = JobManager()
        info = manager.submit(
            {"query": {"pattern":
                       "PATTERN SEQ(Q a, V b) WHERE a.value > 100 "
                       "WITHIN 15 MINUTES",
                       "name": "hot"}}
        )
        assert info["queries"] == ["hot"]

    def test_duplicate_job_name_is_409(self):
        manager = JobManager()
        manager.submit({"name": "x", "query": "traffic-congestion"})
        with pytest.raises(ServiceError) as err:
            manager.submit({"name": "x", "query": "street-lighting-demand"})
        assert err.value.status == 409 and err.value.code == "duplicate-job"
        # a cancelled job frees its name
        manager.cancel("x")
        manager.submit({"name": "x", "query": "street-lighting-demand"})

    def test_unknown_catalog_query_is_404(self):
        with pytest.raises(ServiceError) as err:
            JobManager().submit({"query": "no-such-query"})
        assert err.value.status == 404 and err.value.code == "unknown-query"

    def test_bad_pattern_text_is_structured_400(self):
        with pytest.raises(ServiceError) as err:
            JobManager().submit({"query": {"pattern": "SEQ(Q q,"}})
        assert err.value.status == 400 and err.value.code == "bad-pattern"

    def test_sharing_conflict_rejects_co_submission(self):
        # Both queries pass their individual lints, but their bare Q
        # scans form one shared prefix while the O3 overrides demand
        # different partition keys — the prover's RA813 makes the merged
        # submit a structured 400.
        with pytest.raises(ServiceError) as err:
            JobManager().submit(
                {"queries": [
                    {"pattern": "PATTERN SEQ(Q a, Q b) WHERE a.id = b.id "
                                "WITHIN 10 MINUTES",
                     "name": "by-id", "options": {"o3": "id"}},
                    {"pattern": "PATTERN SEQ(Q a, Q b) WHERE a.value = b.value "
                                "WITHIN 10 MINUTES",
                     "name": "by-value", "options": {"o3": "value"}},
                ]}
            )
        assert err.value.code == "sharing-conflict"
        assert err.value.status == 400
        assert any(d["code"] == "RA813" for d in err.value.details)

    def test_aligned_partition_keys_are_accepted_with_proof(self):
        manager = JobManager()
        info = manager.submit(
            {"queries": [
                {"pattern": "PATTERN SEQ(Q a, Q b) WHERE a.id = b.id "
                            "WITHIN 10 MINUTES",
                 "name": "one", "options": {"o3": "id"}},
                {"pattern": "PATTERN SEQ(Q a, Q b) WHERE a.id = b.id "
                            "WITHIN 10 MINUTES",
                 "name": "two", "options": {"o3": "id"}},
            ]}
        )
        status = manager.job_status(info["id"])
        assert status["sharing"] is not None and status["sharing"]["ok"]
        assert status["sharing"]["groups"], "expected a proven shared prefix"

    def test_format_service_error_renders_diagnostics(self):
        from repro.runtime.service import format_service_error

        with pytest.raises(ServiceError) as err:
            JobManager().submit(
                {"query": {"pattern":
                           "PATTERN SEQ(Q a, V b) "
                           "WHERE a.bogus = b.id "
                           "WITHIN 15 MINUTES"}}
            )
        text = format_service_error(err.value)
        assert text.startswith("static-analysis (HTTP 400)")
        assert "[RA101]" in text  # one rendered line per diagnostic

    def test_static_analysis_rejection_carries_diagnostics(self):
        # An unresolvable attribute reference is an error-level
        # diagnostic: the submit must fail as a structured 400 whose
        # details are the analyzer's diagnostics, not a stack trace.
        with pytest.raises(ServiceError) as err:
            JobManager().submit(
                {"query": {"pattern":
                           "PATTERN SEQ(Q a, V b) "
                           "WHERE a.bogus = b.id "
                           "WITHIN 15 MINUTES"}}
            )
        assert err.value.code == "static-analysis"
        assert err.value.status == 400
        assert err.value.details, "diagnostics must be attached"
        assert all("code" in d and "severity" in d for d in err.value.details)

    def test_bad_requests(self):
        manager = JobManager()
        for body, code in [
            ({}, "bad-request"),
            ({"queries": []}, "bad-request"),
            ({"query": 42}, "bad-query"),
            ({"query": {"x": 1}}, "bad-query"),
            ({"query": "traffic-congestion", "optimize": "warp"}, "bad-request"),
            ({"query": "traffic-congestion", "admission": "drop"}, "bad-request"),
            ({"query": "traffic-congestion", "fault_plan": "nope"},
             "bad-fault-plan"),
            ({"queries": ["traffic-congestion", "traffic-congestion"]},
             "duplicate-query"),
        ]:
            with pytest.raises(ServiceError) as err:
                manager.submit(body)
            assert err.value.code == code, body


class TestRoundsEquivalence:
    def ingest_all(self, manager, streams):
        for seq, event in enumerate(merge_streams_for_wire(streams), start=1):
            manager.ingest_event(event, source="t", seq=seq)

    def test_server_matches_batch_bytes(self):
        streams = offset_streams()
        manager = JobManager(ServiceConfig(round_events=200,
                                           checkpoint_interval=100))
        info = manager.submit({"query": "traffic-congestion"})
        self.ingest_all(manager, streams)
        manager.run_round(manager.jobs[info["id"]])  # mid-stream round
        manager.drain()
        status = manager.job_status(info["id"])
        assert status["state"] == "drained"
        assert status["rounds"] >= 2
        assert served_bytes(manager, info["id"], "traffic-congestion") == \
            batch_reference("traffic-congestion", streams)

    def test_crash_recovery_preserves_byte_identity(self):
        streams = offset_streams()
        manager = JobManager(ServiceConfig(round_events=300,
                                           checkpoint_interval=150))
        info = manager.submit(
            {"query": "traffic-congestion", "fault_plan": "crash:at=700"}
        )
        self.ingest_all(manager, streams)
        manager.run_round(manager.jobs[info["id"]])
        manager.drain()
        status = manager.job_status(info["id"])
        assert status["state"] == "drained"
        assert status["restarts"] == 1, "the injected crash must have fired"
        assert served_bytes(manager, info["id"], "traffic-congestion") == \
            batch_reference("traffic-congestion", streams)

    def test_cosubmitted_queries_both_match_batch(self):
        streams = offset_streams(events=900, seed=5)
        manager = JobManager(ServiceConfig(round_events=250))
        info = manager.submit(
            {"queries": ["traffic-congestion", "street-lighting-demand"]}
        )
        self.ingest_all(manager, streams)
        manager.drain()
        for query_name in ("traffic-congestion", "street-lighting-demand"):
            assert served_bytes(manager, info["id"], query_name) == \
                batch_reference(query_name, streams), query_name

    def test_restart_budget_exhaustion_fails_the_job(self):
        streams = offset_streams(events=600, seed=3)
        manager = JobManager(ServiceConfig(round_events=100))
        info = manager.submit(
            {"query": "traffic-congestion",
             "fault_plan": "crash:at=50;crash:at=50;crash:at=50",
             "max_restarts": 1}
        )
        self.ingest_all(manager, streams)
        manager.run_round(manager.jobs[info["id"]])
        status = manager.job_status(info["id"])
        assert status["state"] == "failed"
        assert "restart budget" in manager.jobs[info["id"]].failure

    def test_durable_store_uses_per_job_subdirectories(self, tmp_path):
        streams = offset_streams(events=600, seed=9)
        manager = JobManager(
            ServiceConfig(round_events=100, checkpoint_dir=str(tmp_path))
        )
        a = manager.submit({"name": "a", "query": "traffic-congestion"})
        b = manager.submit({"name": "b", "query": "street-lighting-demand"})
        self.ingest_all(manager, streams)
        manager.drain()
        assert (tmp_path / a["id"]).is_dir() and (tmp_path / b["id"]).is_dir()
        for job_id in (a["id"], b["id"]):
            chk = manager.job_checkpoints(job_id)
            assert chk["durable"] and chk["entries"]


class TestAdmissionControl:
    def make_events(self, n):
        return [Event("Q", ts=60000 * (i + 1), id=1, value=50.0)
                for i in range(n)]

    def test_reject_policy_counts_and_hints(self):
        manager = JobManager(
            ServiceConfig(queue_limit=5, admission="reject",
                          round_events=1000, retry_after_ms=99)
        )
        info = manager.submit({"query": "traffic-congestion"})
        outcomes = [manager.ingest_event(e) for e in self.make_events(8)]
        rejected = [o for o in outcomes if o.get("rejections")]
        assert len(rejected) == 3
        assert rejected[0]["rejections"][0]["reason"] == "queue-full"
        assert rejected[0]["rejections"][0]["retry_after_ms"] == 99
        report = manager.job_metrics(info["id"])
        ingress = report["service"]["ingress"]["ingress"]
        assert ingress["admission.accepted"]["value"] == 5
        assert ingress["admission.rejected"]["value"] == 3

    def test_block_policy_waits_for_the_worker(self):
        manager = JobManager(
            ServiceConfig(queue_limit=4, admission="block", round_events=4)
        )
        info = manager.submit({"query": "traffic-congestion"})
        job = manager.jobs[info["id"]]
        events = self.make_events(10)
        done = threading.Event()

        def produce():
            for event in events:
                manager.ingest_event(event)
            done.set()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        # The producer must stall on the full queue until rounds drain it.
        deadline = time.monotonic() + 10
        while not done.is_set() and time.monotonic() < deadline:
            manager.run_round(job)
            time.sleep(0.01)
        assert done.is_set(), "blocked producer never unblocked"
        manager.drain()
        report = manager.job_metrics(info["id"])
        ingress = report["service"]["ingress"]["ingress"]
        assert ingress["admission.accepted"]["value"] == 10
        assert ingress["admission.blocked"]["value"] >= 1
        assert manager.job_status(info["id"])["events_processed"] == 10

    def test_blocked_producer_released_by_cancel(self):
        manager = JobManager(
            ServiceConfig(queue_limit=2, admission="block", round_events=100)
        )
        info = manager.submit({"query": "traffic-congestion"})
        results = []

        def produce():
            for event in self.make_events(5):
                results.append(manager.ingest_event(event))

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        time.sleep(0.2)
        manager.cancel(info["id"])
        producer.join(timeout=5)
        assert not producer.is_alive()
        reasons = [
            r["reason"]
            for outcome in results
            for r in outcome.get("rejections", ())
        ]
        assert "job-cancelled" in reasons

    def test_ingest_routes_only_matching_types(self):
        manager = JobManager()
        manager.submit({"query": "traffic-congestion"})  # wants Q, V
        routed = manager.ingest_event(Event("Q", ts=1, value=1.0))
        ignored = manager.ingest_event(Event("PM10", ts=2, value=1.0))
        assert routed["accepted"] == 1
        assert ignored.get("unrouted") and ignored["accepted"] == 0
        assert manager.server_metrics()["unrouted_events"] == 1

    def test_duplicate_sequence_numbers_are_dropped(self):
        manager = JobManager()
        manager.submit({"query": "traffic-congestion"})
        event = Event("Q", ts=1, value=1.0)
        assert manager.ingest_event(event, "s", 1)["accepted"] == 1
        assert manager.ingest_event(event, "s", 1).get("duplicate")
        assert manager.server_metrics()["ingest"]["duplicates"] == 1


class TestLifecycle:
    def test_cancel_clears_queue_and_rejects_ingest(self):
        manager = JobManager(ServiceConfig(round_events=1000))
        info = manager.submit({"query": "traffic-congestion"})
        manager.ingest_event(Event("Q", ts=1, value=1.0))
        status = manager.cancel(info["id"])
        assert status["state"] == "cancelled" and status["queue_depth"] == 0
        outcome = manager.ingest_event(Event("Q", ts=2, value=1.0))
        assert outcome["rejections"][0]["reason"] == "job-cancelled"

    def test_lookup_by_unique_name(self):
        manager = JobManager()
        manager.submit({"name": "tc", "query": "traffic-congestion"})
        assert manager.job_status("tc")["name"] == "tc"
        with pytest.raises(ServiceError) as err:
            manager.job_status("missing")
        assert err.value.status == 404

    def test_submit_rejected_while_draining(self):
        manager = JobManager()
        manager.drain()
        with pytest.raises(ServiceError) as err:
            manager.submit({"query": "traffic-congestion"})
        assert err.value.status == 503 and err.value.code == "draining"

    def test_worker_thread_runs_rounds(self):
        manager = JobManager(ServiceConfig(round_events=50))
        manager.start()
        try:
            info = manager.submit({"query": "traffic-congestion"})
            streams = offset_streams(events=400, seed=2)
            for seq, event in enumerate(merge_streams_for_wire(streams), 1):
                manager.ingest_event(event, "w", seq)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if manager.job_status(info["id"])["rounds"] >= 1:
                    break
                time.sleep(0.05)
            assert manager.job_status(info["id"])["rounds"] >= 1
        finally:
            manager.stop()

    def test_metrics_report_schema(self):
        manager = JobManager(ServiceConfig(round_events=100))
        info = manager.submit({"query": "traffic-congestion"})
        streams = offset_streams(events=400, seed=4)
        for event in merge_streams_for_wire(streams):
            manager.ingest_event(event)
        manager.drain()
        report = manager.job_metrics(info["id"])
        assert report["schema"] == "repro.metrics/v1"
        assert report["service"]["state"] == "drained"
        assert report["service"]["admission"]["policy"] == "reject"
        assert report["service"]["checkpoints"]["count"] >= 1
        assert report["operators"], "operator tree must accumulate"
