"""Tests for the FlinkCEP-analog NFA engine (substrate 2)."""

import pytest

from repro.asp.datamodel import Event
from repro.asp.operators.window import WindowSpec
from repro.asp.state import StateRegistry
from repro.asp.time import Watermark, minutes
from repro.cep.nfa import Nfa, run_nfa
from repro.cep.operator import CepOperator
from repro.cep.pattern_api import CepPattern, CepPatternBuilder, from_sea_pattern
from repro.cep.policies import STAM, STNM, STRICT
from repro.errors import PatternValidationError, TranslationError
from repro.sea.ast import Pattern, conj, disj, iteration, ref, seq
from repro.sea.parser import parse_pattern

MIN = minutes(1)
W = WindowSpec(size=5 * MIN, slide=MIN)


def ev(event_type, minute, value=0.0, id=1):
    return Event(event_type, ts=minute * MIN, id=id, value=value)


class TestBuilder:
    def test_simple_sequence(self):
        p = (CepPatternBuilder.begin("a", "Q").followed_by_any("b", "V")
             .within(5 * MIN).build())
        assert len(p.stages) == 2
        assert p.stages[1].policy is STAM

    def test_policies_map_to_flink_operators(self):
        assert STAM.flink_operator == ".followedByAny()"
        assert STNM.flink_operator == ".followedBy()"
        assert STRICT.flink_operator == ".next()"

    def test_where_conjoins_predicates(self):
        p = (CepPatternBuilder.begin("a", "Q")
             .where(lambda e: e.value > 10)
             .where(lambda e: e.value < 20)
             .within(MIN).build())
        assert p.stages[0].accepts(Event("Q", ts=0, value=15))
        assert not p.stages[0].accepts(Event("Q", ts=0, value=25))

    def test_times_expands_stages(self):
        p = (CepPatternBuilder.begin("v", "V").times(3).within(MIN).build())
        assert [s.name for s in p.stages] == ["v[1]", "v[2]", "v[3]"]

    def test_within_required(self):
        with pytest.raises(PatternValidationError, match="within"):
            CepPatternBuilder.begin("a", "Q").build()

    def test_negation_position_validated(self):
        with pytest.raises(PatternValidationError, match="between two positive"):
            (CepPatternBuilder.begin("a", "Q").not_followed_by("b", "V")
             .within(MIN).build())

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(PatternValidationError, match="duplicate"):
            (CepPatternBuilder.begin("a", "Q").followed_by_any("a", "V")
             .within(MIN).build())

    def test_describe(self):
        p = (CepPatternBuilder.begin("a", "Q").followed_by_any("b", "V")
             .within(5 * MIN).build())
        text = p.describe()
        assert "begin(a:Q)" in text and ".followedByAny(b:V)" in text


class TestNfaSequence:
    def test_stam_branches_to_all_alternatives(self):
        pattern = (CepPatternBuilder.begin("a", "Q").followed_by_any("b", "V")
                   .within(5 * MIN).build())
        matches = run_nfa(pattern, [ev("Q", 0), ev("V", 1), ev("V", 2)])
        assert len(matches) == 2

    def test_stnm_takes_only_next_match(self):
        pattern = (CepPatternBuilder.begin("a", "Q").followed_by("b", "V")
                   .within(5 * MIN).build())
        matches = run_nfa(pattern, [ev("Q", 0), ev("V", 1), ev("V", 2)])
        assert len(matches) == 1
        assert matches[0].events[1].ts == MIN

    def test_stnm_skips_irrelevant_events(self):
        pattern = (CepPatternBuilder.begin("a", "Q").followed_by("b", "V")
                   .within(5 * MIN).build())
        matches = run_nfa(pattern, [ev("Q", 0), ev("W", 1), ev("V", 2)])
        assert len(matches) == 1

    def test_strict_requires_direct_succession(self):
        pattern = (CepPatternBuilder.begin("a", "Q").next("b", "V")
                   .within(5 * MIN).build())
        assert len(run_nfa(pattern, [ev("Q", 0), ev("V", 1)])) == 1
        assert run_nfa(pattern, [ev("Q", 0), ev("W", 1), ev("V", 2)]) == []

    def test_policy_hierarchy_stam_superset(self):
        """Paper Section 3.1.4: stam results are supersets of stnm and sc."""
        events = [ev("Q", 0), ev("W", 1), ev("V", 2), ev("V", 3), ev("Q", 4), ev("V", 5)]
        sea = Pattern(seq(ref("Q", "a"), ref("V", "b")), window=W)
        stam = {m.dedup_key() for m in run_nfa(from_sea_pattern(sea, STAM), events)}
        stnm = {m.dedup_key() for m in run_nfa(from_sea_pattern(sea, STNM), events)}
        strict = {m.dedup_key() for m in run_nfa(from_sea_pattern(sea, STRICT), events)}
        assert stnm <= stam
        assert strict <= stam

    def test_window_constraint_enforced(self):
        pattern = (CepPatternBuilder.begin("a", "Q").followed_by_any("b", "V")
                   .within(2 * MIN).build())
        assert run_nfa(pattern, [ev("Q", 0), ev("V", 5)]) == []

    def test_equal_timestamps_do_not_advance(self):
        pattern = (CepPatternBuilder.begin("a", "Q").followed_by_any("b", "V")
                   .within(5 * MIN).build())
        assert run_nfa(pattern, [ev("Q", 1), ev("V", 1)]) == []


class TestNfaIteration:
    def test_times_with_combinations(self):
        pattern = (CepPatternBuilder.begin("v", "V").times(2).within(5 * MIN).build())
        matches = run_nfa(pattern, [ev("V", 0), ev("V", 1), ev("V", 2)])
        assert len(matches) == 3  # C(3,2) under allowCombinations

    def test_iterative_condition_between_repetitions(self):
        pattern = (CepPatternBuilder.begin("v", "V")
                   .times(2, condition=lambda prev, cur: prev.value < cur.value)
                   .within(5 * MIN).build())
        events = [ev("V", 0, 5.0), ev("V", 1, 3.0), ev("V", 2, 9.0)]
        matches = run_nfa(pattern, events)
        got = {(m.events[0].value, m.events[1].value) for m in matches}
        assert got == {(5.0, 9.0), (3.0, 9.0)}


class TestNfaNegation:
    def test_blocker_prevents_completion(self):
        pattern = (CepPatternBuilder.begin("a", "Q").not_followed_by("x", "W")
                   .followed_by_any("b", "V").within(5 * MIN).build())
        assert run_nfa(pattern, [ev("Q", 0), ev("W", 1), ev("V", 2)]) == []
        assert len(run_nfa(pattern, [ev("Q", 0), ev("V", 2)])) == 1

    def test_blocker_after_completion_is_irrelevant(self):
        pattern = (CepPatternBuilder.begin("a", "Q").not_followed_by("x", "W")
                   .followed_by_any("b", "V").within(5 * MIN).build())
        matches = run_nfa(pattern, [ev("Q", 0), ev("V", 1), ev("W", 2)])
        assert len(matches) == 1

    def test_blocker_with_predicate(self):
        pattern = (CepPatternBuilder.begin("a", "Q")
                   .not_followed_by("x", "W").where(lambda e: e.value > 10)
                   .followed_by_any("b", "V").within(5 * MIN).build())
        harmless = [ev("Q", 0), ev("W", 1, value=5.0), ev("V", 2)]
        assert len(run_nfa(pattern, harmless)) == 1


class TestNfaState:
    def test_pruning_drops_expired_partial_matches(self):
        pattern = (CepPatternBuilder.begin("a", "Q").followed_by_any("b", "V")
                   .within(2 * MIN).build())
        nfa = Nfa(pattern)
        nfa.process(ev("Q", 0))
        assert nfa.live_partial_matches() == 1
        nfa.prune(watermark_ts=2 * MIN)
        assert nfa.live_partial_matches() == 0
        assert nfa.partials_pruned == 1

    def test_state_handle_tracks_partial_matches(self):
        registry = StateRegistry()
        handle = registry.create("pm", "nfa")
        pattern = (CepPatternBuilder.begin("a", "Q").followed_by_any("b", "V")
                   .within(5 * MIN).build())
        nfa = Nfa(pattern, state_handle=handle)
        nfa.process(ev("Q", 0))
        assert handle.items == 1
        assert handle.bytes_used > 0
        nfa.flush()
        assert handle.items == 0

    def test_partial_match_population_grows_with_selectivity(self):
        """The paper's core FCEP cost driver: live partial matches."""
        pattern = (CepPatternBuilder.begin("a", "Q").followed_by_any("b", "V")
                   .within(10 * MIN).build())
        nfa = Nfa(pattern)
        for i in range(10):
            nfa.process(ev("Q", i))
        assert nfa.live_partial_matches() == 10  # stam never consumes


class TestFromSeaPattern:
    def test_sequence_translation(self):
        sea = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        cep = from_sea_pattern(sea)
        assert [s.event_type for s in cep.stages] == ["Q", "V"]
        assert cep.window_size == 5 * MIN

    def test_single_alias_predicates_become_stage_filters(self):
        sea = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 10 WITHIN 5 MINUTES"
        )
        cep = from_sea_pattern(sea)
        assert cep.stages[0].accepts(Event("Q", ts=0, value=20))
        assert not cep.stages[0].accepts(Event("Q", ts=0, value=5))

    def test_cross_stage_predicates_enforced(self):
        sea = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.value < b.value WITHIN 5 MINUTES"
        )
        cep = from_sea_pattern(sea)
        ok = run_nfa(cep, [ev("Q", 0, 1.0), ev("V", 1, 2.0)])
        blocked = run_nfa(cep, [ev("Q", 0, 5.0), ev("V", 1, 2.0)])
        assert len(ok) == 1 and blocked == []

    def test_iteration_translation(self):
        sea = parse_pattern("PATTERN ITER3(V v) WITHIN 5 MINUTES")
        cep = from_sea_pattern(sea)
        assert len(cep.stages) == 3

    def test_nseq_translation(self):
        sea = parse_pattern("PATTERN SEQ(Q a, !W x, V b) WITHIN 5 MINUTES")
        cep = from_sea_pattern(sea)
        assert cep.stages[1].negated

    def test_conjunction_unsupported_as_in_table2(self):
        sea = Pattern(conj(ref("Q", "a"), ref("V", "b")), window=W)
        with pytest.raises(TranslationError, match="does not support AND"):
            from_sea_pattern(sea)

    def test_disjunction_unsupported_as_in_table2(self):
        sea = Pattern(disj(ref("Q", "a"), ref("V", "b")), window=W)
        with pytest.raises(TranslationError, match="does not support OR"):
            from_sea_pattern(sea)

    def test_kleene_plus_unsupported(self):
        sea = Pattern(iteration(ref("V", "v"), 2, minimum_occurrences=True), window=W)
        with pytest.raises(TranslationError, match="Kleene"):
            from_sea_pattern(sea)


class TestCepOperator:
    def test_unary_operator_in_pipeline(self):
        sea = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        op = CepOperator(from_sea_pattern(sea))
        op.setup(StateRegistry())
        out = []
        for event in [ev("Q", 0), ev("V", 1)]:
            out.extend(op.process(event))
        assert len(out) == 1
        assert op.matches == 1

    def test_keyed_operator_isolates_keys(self):
        sea = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        op = CepOperator(from_sea_pattern(sea), key_fn=lambda e: e.id)
        op.setup(StateRegistry())
        out = []
        for event in [ev("Q", 0, id=1), ev("V", 1, id=2), ev("V", 2, id=1)]:
            out.extend(op.process(event))
        assert len(out) == 1  # only the same-key pair

    def test_watermark_prunes_all_nfas(self):
        sea = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 2 MINUTES")
        op = CepOperator(from_sea_pattern(sea), key_fn=lambda e: e.id)
        op.setup(StateRegistry())
        op.process(ev("Q", 0, id=1))
        op.process(ev("Q", 0, id=2))
        assert op.live_partial_matches() == 2
        op.on_watermark(Watermark(5 * MIN))
        assert op.live_partial_matches() == 0


class TestPolicyConstruction:
    def test_stnm_constructible_from_stam(self):
        """Paper Section 3.1.4: stnm results can be constructed from the
        stam superset. Verified against the NFA's native stnm run."""
        import random
        from repro.cep.matches import stnm_from_stam

        rng = random.Random(13)
        events = [
            ev(rng.choice(["Q", "V", "W"]), i, value=rng.uniform(0, 100))
            for i in range(60)
        ]
        sea = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 6 MINUTES")
        stam_matches = run_nfa(from_sea_pattern(sea, STAM), events)
        native_stnm = run_nfa(from_sea_pattern(sea, STNM), events)
        constructed = stnm_from_stam(stam_matches)
        assert {m.dedup_key() for m in constructed} == {
            m.dedup_key() for m in native_stnm
        }

    def test_stnm_construction_three_way(self):
        import random
        from repro.cep.matches import stnm_from_stam

        rng = random.Random(29)
        events = [
            ev(rng.choice(["Q", "V", "W"]), i, value=rng.uniform(0, 100))
            for i in range(60)
        ]
        sea = parse_pattern("PATTERN SEQ(Q a, V b, W c) WITHIN 8 MINUTES")
        stam_matches = run_nfa(from_sea_pattern(sea, STAM), events)
        native_stnm = run_nfa(from_sea_pattern(sea, STNM), events)
        constructed = stnm_from_stam(stam_matches)
        assert {m.dedup_key() for m in constructed} == {
            m.dedup_key() for m in native_stnm
        }
