"""Tests for the predicate expression trees."""

import pytest
from hypothesis import given, strategies as st

from repro.asp.datamodel import Event
from repro.errors import PatternValidationError
from repro.sea.predicates import (
    And,
    Arith,
    Attr,
    Compare,
    Const,
    Not,
    Or,
    TruePredicate,
    attr,
    classify_conjuncts,
    cmp,
    compile_single_alias,
    conjunction_of,
    const,
)


def binding(**events):
    return events


Q = Event("Q", ts=10, id=1, value=50.0)
V = Event("V", ts=20, id=1, value=30.0)


class TestExpressions:
    def test_const(self):
        assert Const(5).evaluate({}) == 5
        assert Const(5).aliases() == frozenset()

    def test_attr_reads_binding(self):
        assert Attr("q", "value").evaluate({"q": Q}) == 50.0
        assert Attr("q", "ts").evaluate({"q": Q}) == 10

    def test_attr_unbound_alias_raises(self):
        with pytest.raises(PatternValidationError, match="unbound alias"):
            Attr("x", "value").evaluate({"q": Q})

    @pytest.mark.parametrize("op,expected", [("+", 8), ("-", 2), ("*", 15), ("/", 5 / 3)])
    def test_arith(self, op, expected):
        assert Arith(op, Const(5), Const(3)).evaluate({}) == expected

    def test_arith_unknown_op(self):
        with pytest.raises(ValueError):
            Arith("%", Const(1), Const(2))

    def test_nested_arith_aliases(self):
        expr = Arith("+", Attr("a", "value"), Attr("b", "value"))
        assert expr.aliases() == {"a", "b"}

    def test_render(self):
        expr = Arith("+", Attr("a", "value"), Const(3))
        assert expr.render() == "(a.value + 3)"


class TestCompare:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [("=", 1, 1, True), ("==", 1, 2, False), ("!=", 1, 2, True),
         ("<", 1, 2, True), ("<=", 2, 2, True), (">", 1, 2, False),
         (">=", 3, 2, True)],
    )
    def test_all_operators(self, op, left, right, expected):
        assert Compare(op, Const(left), Const(right)).evaluate({}) is expected

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Compare("<>", Const(1), Const(2))

    def test_equi_join_detection(self):
        comp = Compare("=", Attr("a", "id"), Attr("b", "id"))
        assert comp.equi_join_attributes() == (("a", "id"), ("b", "id"))

    def test_equi_join_requires_distinct_aliases(self):
        comp = Compare("=", Attr("a", "id"), Attr("a", "value"))
        assert comp.equi_join_attributes() is None

    def test_equi_join_requires_equality(self):
        comp = Compare("<", Attr("a", "id"), Attr("b", "id"))
        assert comp.equi_join_attributes() is None

    def test_equi_join_requires_attrs_not_consts(self):
        comp = Compare("=", Attr("a", "id"), Const(5))
        assert comp.equi_join_attributes() is None


class TestBooleanCombinators:
    def test_and_or_not(self):
        t, f = Compare("=", Const(1), Const(1)), Compare("=", Const(1), Const(2))
        assert And(t, t).evaluate({})
        assert not And(t, f).evaluate({})
        assert Or(f, t).evaluate({})
        assert not Or(f, f).evaluate({})
        assert Not(f).evaluate({})

    def test_true_predicate(self):
        assert TruePredicate().evaluate({})
        assert TruePredicate().conjuncts() == []

    def test_conjuncts_flatten_nested_ands(self):
        a = Compare("=", Const(1), Const(1))
        b = Compare("=", Const(2), Const(2))
        c = Compare("=", Const(3), Const(3))
        nested = And(And(a, b), c)
        assert nested.conjuncts() == [a, b, c]

    def test_or_is_single_conjunct(self):
        a = Compare("=", Const(1), Const(1))
        assert len(Or(a, a).conjuncts()) == 1

    def test_conjunction_of_round_trips(self):
        a = Compare("=", Attr("x", "ts"), Const(1))
        b = Compare("<", Attr("y", "ts"), Const(2))
        rebuilt = conjunction_of([a, b])
        assert rebuilt.conjuncts() == [a, b]

    def test_conjunction_of_empty_is_true(self):
        assert isinstance(conjunction_of([]), TruePredicate)

    def test_conjunction_of_skips_true(self):
        a = Compare("=", Const(1), Const(1))
        assert conjunction_of([TruePredicate(), a]) is a


class TestClassification:
    def test_splits_single_equi_multi(self):
        where = And(
            And(
                Compare(">", Attr("q", "value"), Const(10)),       # single
                Compare("=", Attr("q", "id"), Attr("v", "id")),    # equi
            ),
            Compare("<", Attr("q", "value"), Attr("v", "value")),  # multi
        )
        single, equi, multi = classify_conjuncts(where)
        assert list(single) == ["q"]
        assert len(single["q"]) == 1
        assert len(equi) == 1
        assert len(multi) == 1

    def test_constant_conjunct_goes_to_empty_alias(self):
        where = Compare("=", Const(1), Const(1))
        single, equi, multi = classify_conjuncts(where)
        assert "" in single

    def test_true_predicate_classifies_empty(self):
        single, equi, multi = classify_conjuncts(TruePredicate())
        assert not single and not equi and not multi

    def test_inequality_between_aliases_is_multi(self):
        where = Compare("!=", Attr("a", "id"), Attr("b", "id"))
        _single, equi, multi = classify_conjuncts(where)
        assert not equi and len(multi) == 1


class TestCompileSingleAlias:
    def test_compiled_filter(self):
        check = compile_single_alias(
            [Compare(">", Attr("q", "value"), Const(40))], "q"
        )
        assert check(Q)
        assert not check(V.with_attrs(value=10.0))

    def test_empty_predicates_accept_all(self):
        check = compile_single_alias([], "q")
        assert check(Q)


class TestConvenienceConstructors:
    def test_attr_const_cmp(self):
        pred = cmp("<", attr("q", "value"), const(100))
        assert pred.evaluate({"q": Q})


class TestEvaluationProperties:
    @given(x=st.floats(allow_nan=False, allow_infinity=False, width=32),
           y=st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_comparison_trichotomy(self, x, y):
        lt = Compare("<", Const(x), Const(y)).evaluate({})
        eq = Compare("=", Const(x), Const(y)).evaluate({})
        gt = Compare(">", Const(x), Const(y)).evaluate({})
        assert sum([lt, eq, gt]) == 1

    @given(v=st.floats(min_value=-1e6, max_value=1e6))
    def test_not_is_involution(self, v):
        pred = Compare("<", Const(v), Const(0))
        assert Not(Not(pred)).evaluate({}) == pred.evaluate({})
