"""Tests for the fluent DataStream API, sources and sinks."""

import pytest

from repro.asp.datamodel import ComplexEvent, Event
from repro.asp.operators.sink import (
    CallbackSink,
    CollectSink,
    DiscardSink,
    LatencySink,
)
from repro.asp.operators.source import (
    CsvSource,
    GeneratorSource,
    ListSource,
    ThrottledSource,
)
from repro.asp.operators.window import IntervalBounds
from repro.asp.stream import StreamEnvironment
from repro.asp.time import minutes
from repro.workloads.csvio import write_events

MIN = minutes(1)


def minute_events(event_type, count, **kw):
    return [Event(event_type, ts=i * MIN, value=float(i), **kw) for i in range(count)]


class TestSources:
    def test_list_source(self):
        src = ListSource(minute_events("Q", 3))
        assert len(src) == 3
        assert len(list(src)) == 3
        assert src.emitted == 3

    def test_generator_source_reiterable(self):
        src = GeneratorSource(lambda: iter(minute_events("Q", 2)))
        assert len(list(src)) == 2
        assert len(list(src)) == 2  # factory makes it re-iterable

    def test_csv_source(self, tmp_path):
        events = minute_events("Q", 4)
        write_events(tmp_path / "q.csv", events)
        src = CsvSource(tmp_path / "q.csv")
        assert list(src) == events

    def test_throttled_source_wraps(self):
        inner = ListSource(minute_events("Q", 2))
        src = ThrottledSource(inner, rate_tps=100.0)
        assert len(list(src)) == 2
        assert src.rate_tps == 100.0

    def test_throttled_source_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ThrottledSource(ListSource([]), rate_tps=0)


class TestSinks:
    def test_collect_sink(self):
        sink = CollectSink()
        sink.process(Event("Q", ts=1))
        assert sink.count == 1
        assert len(sink.items) == 1

    def test_collect_sink_matches_filter(self):
        sink = CollectSink()
        sink.process(Event("Q", ts=1))
        sink.process(ComplexEvent((Event("Q", ts=1), Event("V", ts=2))))
        assert len(sink.matches()) == 1
        assert len(sink.unique_matches()) == 1

    def test_discard_sink_counts_only(self):
        sink = DiscardSink()
        sink.process(Event("Q", ts=1))
        assert sink.count == 1
        assert not hasattr(sink, "items")

    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.process(Event("Q", ts=1))
        assert len(seen) == 1

    def test_latency_sink_records_nonnegative(self):
        import time

        sink = LatencySink()
        created = time.perf_counter()
        event = Event("Q", ts=1, attrs={"created_wall": created})
        sink.process(ComplexEvent((event,)))
        assert len(sink.latencies_s) == 1
        assert sink.latencies_s[0] >= 0
        assert sink.mean_latency_s() >= 0
        assert sink.percentile_latency_s(99) >= 0

    def test_latency_sink_empty(self):
        sink = LatencySink()
        assert sink.mean_latency_s() == 0.0
        assert sink.percentile_latency_s(50) == 0.0


class TestStreamApi:
    def test_filter_map_chain(self):
        env = StreamEnvironment("t")
        sink = (
            env.from_events(minute_events("Q", 10))
            .filter(lambda e: e.value >= 5)
            .map(lambda e: e.with_attrs(value=e.value * 10))
            .sink(CollectSink())
        )
        env.execute()
        assert sink.count == 5
        assert all(item.value >= 50 for item in sink.items)

    def test_filter_type(self):
        env = StreamEnvironment("t")
        mixed = minute_events("Q", 3) + [Event("V", ts=10 * MIN)]
        sink = env.from_events(sorted(mixed, key=lambda e: e.ts)).filter_type("V").sink()
        env.execute()
        assert sink.count == 1

    def test_union(self):
        env = StreamEnvironment("t")
        a = env.from_events(minute_events("Q", 3), name="a")
        b = env.from_events(minute_events("V", 4), name="b")
        sink = a.union(b).sink(CollectSink())
        env.execute()
        assert sink.count == 7

    def test_window_join(self):
        env = StreamEnvironment("t")
        a = env.from_events(minute_events("Q", 5), name="a")
        b = env.from_events([Event("V", ts=i * MIN + 1) for i in range(5)], name="b")
        from repro.asp.operators.window import WindowSpec

        sink = a.window_join(
            b, window=WindowSpec(2 * MIN, MIN), theta=lambda l, r: l.ts < r.ts
        ).sink(CollectSink())
        env.execute()
        assert sink.count > 0
        assert all(isinstance(i, ComplexEvent) for i in sink.items)

    def test_interval_join(self):
        env = StreamEnvironment("t")
        a = env.from_events(minute_events("Q", 5), name="a")
        b = env.from_events([Event("V", ts=i * MIN + 1) for i in range(5)], name="b")
        sink = a.interval_join(b, bounds=IntervalBounds.sequence(2 * MIN)).sink()
        env.execute()
        assert sink.count > 0

    def test_window_aggregate(self):
        env = StreamEnvironment("t")
        from repro.asp.operators.window import WindowSpec

        sink = (
            env.from_events(minute_events("V", 10))
            .window_aggregate(WindowSpec(5 * MIN, 5 * MIN), "count")
            .sink(CollectSink())
        )
        env.execute()
        assert sink.count == 2
        assert all(i.value == 5.0 for i in sink.items)

    def test_next_occurrence_stage(self):
        env = StreamEnvironment("t")
        merged = sorted(
            minute_events("Q", 3) + [Event("W", ts=MIN + 1)], key=lambda e: e.ts
        )
        sink = (
            env.from_events(merged)
            .next_occurrence("Q", "W", window_size=5 * MIN)
            .sink(CollectSink())
        )
        env.execute()
        assert sink.count == 3  # every Q resolved (by blocker or timeout)

    def test_explain_renders(self):
        env = StreamEnvironment("t")
        env.from_events(minute_events("Q", 1)).filter(lambda e: True).sink()
        assert "filter" in env.explain()

    def test_key_by_records(self):
        env = StreamEnvironment("t")
        events = [Event("Q", ts=i * MIN, id=i % 3) for i in range(9)]
        handle = env.from_events(events).key_by(lambda e: e.id)
        handle.sink()
        env.execute()
        # reach into the graph: the key-by saw 3 distinct keys
        keyby_ops = [
            n.operator
            for n in env.flow.operator_nodes()
            if n.operator.kind == "key-by"
        ]
        assert keyby_ops[0].seen_keys == {0, 1, 2}
