"""The examples are part of the public contract: they must keep running.

Each example executes in-process (import + main()) against its baked-in
workload; assertions check the banner output they promise.
"""

import importlib.util
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Logical plan" in out
        assert "NFA baseline agrees" in out

    def test_traffic_congestion(self, capsys):
        out = run_example("traffic_congestion", capsys)
        assert "congestion alerts" in out
        assert "workers=4" in out

    def test_air_quality_monitoring(self, capsys):
        out = run_example("air_quality_monitoring", capsys)
        assert "[OR]" in out
        assert "FlinkCEP-style engine rejects" in out
        assert "both engines agree" in out

    def test_mapping_tour(self, capsys):
        out = run_example("mapping_tour", capsys)
        assert "Conjunction" in out and "Negated sequence" in out
        assert "SELECT *" in out

    def test_fleet_monitoring(self, capsys):
        out = run_example("fleet_monitoring", capsys)
        assert "One shared pass" in out
        assert "advisor:" in out

    def test_out_of_order_replay(self, capsys):
        out = run_example("out_of_order_replay", capsys)
        assert "EXACT" in out
        assert "lost" in out
