"""The scaled serve data plane: sharded rounds, tenant groups, resume.

In-process coverage of the PR 9 features: backend auto-selection from
the partition-safety proof, byte-identity of sharded incremental rounds
against one-shot batch runs (inline and process dispatch), per-tenant
cancel isolation inside shared-scan groups, SLO-triggered rounds, the
durable restart/resume protocol (manifests + progress + ingestion WAL),
the client's transient-error backoff, and the ``SourceTracker``
snapshot/restore property. Live-socket restart coverage is
``tools/serve_smoke.py --kill-after`` (the ``serve-restart`` CI job).
"""

import json
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asp.operators.source import ListSource
from repro.asp.runtime import ExecutionSettings, SerialBackend
from repro.asp.runtime.fault.chaos import canonical_match_bytes
from repro.errors import ServiceError
from repro.experiments.common import Scale, qnv_aq_workload
from repro.mapping.advisor import recommend_options
from repro.mapping.translator import translate
from repro.patterns import CATALOG
from repro.runtime.service import (
    JobManager,
    ServiceConfig,
    ServiceState,
    SourceTracker,
    backoff_schedule,
    merge_streams_for_wire,
)
from repro.sea.parser import parse_pattern

SHARDABLE = ("PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 10 MINUTES")


def offset_streams(events=900, sensors=6, seed=11):
    streams = {
        t: list(evs)
        for t, evs in qnv_aq_workload(
            Scale(events=events, sensors=sensors, seed=seed)
        ).items()
    }
    for offset, evs in enumerate(streams.values()):
        for event in evs:
            event.ts += offset
    return streams


def batch_reference(query_name, streams):
    pattern = CATALOG[query_name]()
    options = recommend_options(pattern).options
    sources = {
        t: ListSource(streams[t], name=f"batch[{t}]", event_type=t)
        for t in pattern.distinct_event_types()
    }
    query = translate(pattern, sources, options)
    query.attach_sink()
    SerialBackend().execute(
        query.env.flow,
        ExecutionSettings(watermark_interval=query.plan.window_slide),
    )
    return canonical_match_bytes(query.matches())


def batch_reference_inline(pattern_text, streams, *, o3):
    from repro.mapping.optimizations import TranslationOptions

    pattern = parse_pattern(pattern_text, name="inline-ref")
    sources = {
        t: ListSource(streams[t], name=f"batch[{t}]", event_type=t)
        for t in pattern.distinct_event_types()
    }
    query = translate(
        pattern, sources, TranslationOptions(partition_attribute=o3)
    )
    query.attach_sink()
    SerialBackend().execute(
        query.env.flow,
        ExecutionSettings(watermark_interval=query.plan.window_slide),
    )
    return canonical_match_bytes(query.matches())


def ingest_all(manager, streams, source="t", start_seq=1):
    seq = start_seq
    for event in merge_streams_for_wire(streams):
        manager.ingest_event(event, source=source, seq=seq)
        seq += 1
    return seq


def served_bytes(manager, job_id, query_name):
    keys = manager.job_matches(job_id)["queries"][query_name]["keys"]
    return "\n".join(keys).encode("utf-8")


def sharded_submit(name="sharded", **overrides):
    body = {
        "name": name,
        "query": {"pattern": SHARDABLE, "name": name, "options": {"o3": "id"}},
        "shard_mode": "inline",
    }
    body.update(overrides)
    return body


class TestBackendSelection:
    def test_o3_submission_auto_selects_sharded(self):
        manager = JobManager(ServiceConfig(job_shards=3))
        info = manager.submit(sharded_submit())
        assert info["backend"] == "sharded"
        assert info["shards"] == 3

    def test_default_submission_stays_serial(self):
        manager = JobManager()
        info = manager.submit({"query": "traffic-congestion"})
        assert info["backend"] == "serial"
        assert info["shards"] is None

    def test_explicit_sharded_without_o3_is_rejected(self):
        with pytest.raises(ServiceError) as err:
            JobManager().submit(
                {"query": "traffic-congestion", "backend": "sharded"}
            )
        assert err.value.code == "not-shardable"
        assert err.value.status == 400

    def test_explicit_serial_overrides_the_proof(self):
        manager = JobManager()
        info = manager.submit(sharded_submit(backend="serial"))
        assert info["backend"] == "serial"

    def test_mismatched_partition_keys_never_shard(self):
        # Different key attributes across the co-submission: "auto" must
        # degrade to serial (no common hash split exists).
        manager = JobManager()
        info = manager.submit(
            {"queries": [
                {"pattern": SHARDABLE, "name": "by-id",
                 "options": {"o3": "id"}},
                {"pattern": "PATTERN SEQ(V a, V b) WHERE a.id = b.id "
                            "WITHIN 10 MINUTES",
                 "name": "plain"},
            ]}
        )
        assert info["backend"] == "serial"


class TestShardedRounds:
    def test_sharded_rounds_match_batch_bytes(self):
        streams = offset_streams()
        manager = JobManager(
            ServiceConfig(round_events=200, checkpoint_interval=100)
        )
        info = manager.submit(sharded_submit(name="shard-eq", shards=3))
        assert info["backend"] == "sharded"
        ingest_all(manager, streams)
        manager.run_round(manager.jobs[info["id"]])  # mid-stream round
        manager.drain()
        status = manager.job_status(info["id"])
        assert status["state"] == "drained"
        assert status["rounds"] >= 2
        assert served_bytes(manager, info["id"], "shard-eq") == \
            batch_reference_inline(SHARDABLE, streams, o3="id")

    def test_sharded_checkpoints_per_shard(self, tmp_path):
        streams = offset_streams(events=500, seed=3)
        manager = JobManager(
            ServiceConfig(round_events=150, checkpoint_interval=None,
                          state_dir=str(tmp_path))
        )
        info = manager.submit(sharded_submit(name="shard-chk", shards=2))
        ingest_all(manager, streams)
        manager.drain()
        doc = manager.job_checkpoints(info["id"])
        assert doc["durable"] and doc["backend"] == "sharded"
        shards_seen = {entry["shard"] for entry in doc["entries"]}
        assert shards_seen == {0, 1}
        assert doc["coordinator"]["count"] == len(doc["entries"])

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2, reason="process mode needs >1 cpu"
    )
    def test_process_mode_matches_batch_bytes(self):
        pytest.importorskip("cloudpickle")
        streams = offset_streams(events=500, seed=7)
        manager = JobManager(ServiceConfig(round_events=200))
        info = manager.submit(
            sharded_submit(name="shard-proc", shards=2, shard_mode="process")
        )
        ingest_all(manager, streams)
        manager.drain()
        assert served_bytes(manager, info["id"], "shard-proc") == \
            batch_reference_inline(SHARDABLE, streams, o3="id")


class TestTenantGroups:
    GROUP = ("traffic-congestion", "street-lighting-demand")

    def submit_group(self, manager):
        return manager.submit({"name": "group", "queries": list(self.GROUP)})

    def test_cancelling_one_tenant_preserves_the_others_bytes(self):
        streams = offset_streams()
        manager = JobManager(ServiceConfig(round_events=250))
        info = self.submit_group(manager)
        half = {t: evs[: len(evs) // 2] for t, evs in streams.items()}
        rest = {t: evs[len(evs) // 2:] for t, evs in streams.items()}
        next_seq = ingest_all(manager, half)
        manager.run_round(manager.jobs[info["id"]])

        status = manager.cancel_tenant(info["id"], "street-lighting-demand")
        assert status["state"] == "running"
        assert status["tenants"]["street-lighting-demand"] == "cancelled"
        frozen = served_bytes(manager, info["id"], "street-lighting-demand")

        ingest_all(manager, rest, start_seq=next_seq)
        manager.drain()
        doc = manager.job_matches(info["id"])
        # The survivor's output is byte-identical to its solo batch run.
        assert served_bytes(manager, info["id"], "traffic-congestion") == \
            batch_reference("traffic-congestion", streams)
        assert doc["queries"]["traffic-congestion"]["tenant_state"] == "running"
        # The cancelled tenant stays frozen at its cancel-time snapshot.
        assert served_bytes(manager, info["id"], "street-lighting-demand") == \
            frozen
        assert doc["queries"]["street-lighting-demand"]["tenant_state"] == \
            "cancelled"

    def test_cancelling_every_tenant_cancels_the_job(self):
        manager = JobManager()
        info = self.submit_group(manager)
        manager.cancel_tenant(info["id"], "traffic-congestion")
        status = manager.cancel_tenant(info["id"], "street-lighting-demand")
        assert status["state"] == "cancelled"

    def test_unknown_tenant_is_404(self):
        manager = JobManager()
        info = self.submit_group(manager)
        with pytest.raises(ServiceError) as err:
            manager.cancel_tenant(info["id"], "nope")
        assert err.value.status == 404


class TestRoundSlo:
    def test_slo_triggers_a_round_before_the_count_threshold(self):
        streams = offset_streams(events=120, seed=2)
        manager = JobManager(
            ServiceConfig(round_events=100_000, round_slo_ms=30)
        )
        manager.start()
        try:
            info = manager.submit({"query": "traffic-congestion"})
            job = manager.jobs[info["id"]]
            ingest_all(manager, streams)
            deadline = time.monotonic() + 5.0
            while job.rounds == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert job.rounds >= 1, "the SLO never fired a round"
            assert job.slo_rounds.value >= 1
            tree = manager.job_metrics(info["id"])["service"]["ingress"]
            latency = tree["rounds"]["trigger_latency_ms"]
            assert latency["count"] >= 1
        finally:
            manager.stop()


class TestDurableResume:
    CONFIG = dict(round_events=150, checkpoint_interval=100)

    def test_restart_resumes_and_replay_is_byte_identical(self, tmp_path):
        streams = offset_streams()
        all_events = list(merge_streams_for_wire(streams))
        cut = len(all_events) * 2 // 3
        config = ServiceConfig(state_dir=str(tmp_path), **self.CONFIG)

        first = JobManager(config)
        info = first.submit({"query": "traffic-congestion"})
        for seq, event in enumerate(all_events[:cut], start=1):
            first.ingest_event(event, source="t", seq=seq)
        first.run_round(first.jobs[info["id"]])
        before = first.job_status(info["id"])
        processed_before = before["events_processed"]
        assert processed_before > 0
        # Kill −9: no drain, no close — the manager is simply abandoned.

        second = JobManager(config)
        second.resume()
        status = second.job_status(info["id"])
        assert status["state"] == "running"
        # The WAL replay rebuilt the routed log exactly (the job only
        # logs the event types its scans read, not the whole stream).
        assert status["events_logged"] == before["events_logged"]
        assert status["events_processed"] == processed_before
        # The producer re-sends everything: the durable prefix must
        # dedup, the lost tail must be admitted fresh.
        for seq, event in enumerate(all_events, start=1):
            second.ingest_event(event, source="t", seq=seq)
        assert second.tracker.duplicates >= cut // 2
        second.drain()
        assert served_bytes(second, info["id"], "traffic-congestion") == \
            batch_reference("traffic-congestion", streams)

    def test_sharded_job_resumes_across_restart(self, tmp_path):
        streams = offset_streams(events=600, seed=9)
        all_events = list(merge_streams_for_wire(streams))
        cut = len(all_events) // 2
        config = ServiceConfig(state_dir=str(tmp_path), **self.CONFIG)

        first = JobManager(config)
        info = first.submit(sharded_submit(name="shard-resume", shards=2))
        for seq, event in enumerate(all_events[:cut], start=1):
            first.ingest_event(event, source="t", seq=seq)
        first.run_round(first.jobs[info["id"]])

        second = JobManager(config)
        second.resume()
        assert second.job_status(info["id"])["backend"] == "sharded"
        for seq, event in enumerate(all_events, start=1):
            second.ingest_event(event, source="t", seq=seq)
        second.drain()
        assert served_bytes(second, info["id"], "shard-resume") == \
            batch_reference_inline(SHARDABLE, streams, o3="id")

    def test_terminal_jobs_are_not_resurrected(self, tmp_path):
        config = ServiceConfig(state_dir=str(tmp_path), **self.CONFIG)
        first = JobManager(config)
        kept = first.submit({"query": "traffic-congestion", "name": "kept"})
        gone = first.submit(
            {"query": {"pattern": SHARDABLE, "name": "inner"}, "name": "gone"}
        )
        first.cancel(gone["id"])

        second = JobManager(config)
        second.resume()
        assert kept["id"] in second.jobs
        assert gone["id"] not in second.jobs
        # Fresh ids continue past everything ever persisted.
        third = second.submit({"query": "street-lighting-demand"})
        assert third["id"] not in (kept["id"], gone["id"])

    def test_wal_tolerates_a_truncated_tail(self, tmp_path):
        state = ServiceState(tmp_path)
        state.append_wal({"type": "Q", "ts": 1}, ["job-1"])
        state.append_wal({"type": "Q", "ts": 2}, ["job-1"])
        state.close()
        with state.wal_path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": {"type": "Q", "ts": 3}, "jo')  # torn write
        replayed = list(state.replay_wal())
        assert [doc["ts"] for doc, _jobs in replayed] == [1, 2]
        assert replayed[0][1] == ["job-1"]

    def test_manifest_round_trips_the_submit_request(self, tmp_path):
        state = ServiceState(tmp_path)
        request = {"query": "traffic-congestion", "round_events": 10}
        state.write_manifest("job-7", request)
        state.write_progress("job-7", {"state": "running", "rounds": 2})
        (doc,) = state.load_jobs()
        assert doc["job_id"] == "job-7"
        assert doc["request"] == request
        assert doc["progress"]["rounds"] == 2
        assert state.max_job_number() == 7


class TestClientBackoff:
    def test_schedule_is_capped_exponential(self):
        assert backoff_schedule(0) == []
        assert backoff_schedule(3) == [50.0, 100.0, 200.0]
        assert backoff_schedule(8, base_ms=50, cap_ms=1000) == [
            50.0, 100.0, 200.0, 400.0, 800.0, 1000.0, 1000.0, 1000.0,
        ]
        with pytest.raises(ValueError):
            backoff_schedule(-1)

    def test_transient_errors_retry_then_surface_as_503(self):
        from repro.runtime.service import ServiceClient

        # A port nothing listens on: every attempt is ECONNREFUSED.
        client = ServiceClient(
            "127.0.0.1", 1, timeout=0.5, retries=2, backoff_base_ms=1.0
        )
        started = time.monotonic()
        with pytest.raises(ServiceError) as err:
            client.healthz()
        assert err.value.code == "unreachable"
        assert err.value.status == 503
        assert "3 attempt(s)" in str(err.value)
        assert time.monotonic() - started < 5.0

    def test_http_errors_are_not_retried(self):
        from repro.runtime.service import ServiceClient

        client = ServiceClient("127.0.0.1", 1, retries=0)
        with pytest.raises(ServiceError) as err:
            client.healthz()
        assert "1 attempt(s)" in str(err.value)


class TestTrackerRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=1, max_value=30),
            ),
            max_size=40,
        ),
        cut=st.integers(min_value=0, max_value=40),
    )
    def test_snapshot_restore_preserves_the_dedup_horizon(self, ops, cut):
        """Any interleaving of sends, snapshotted at any point (a server
        restart, JSON round trip included), admits exactly what an
        uninterrupted tracker would — and re-sends of the pre-snapshot
        prefix are all dropped as duplicates."""
        point = min(cut, len(ops))
        live = SourceTracker()
        decisions_live = []
        snapshot = None
        for index, (source, seq) in enumerate(ops):
            if index == point:
                snapshot = json.loads(json.dumps(live.snapshot()))
            decisions_live.append(live.admit(source, seq))
        if snapshot is None:  # cut lands at/after the end of the stream
            point = len(ops)
            snapshot = json.loads(json.dumps(live.snapshot()))

        restarted = SourceTracker()
        restarted.restore(snapshot)
        decisions_restarted = [
            restarted.admit(source, seq) for source, seq in ops[point:]
        ]
        assert decisions_restarted == decisions_live[point:]
        assert restarted.last_seq == live.last_seq

        # The producer re-sending everything it sent before the crash:
        # every line is at or below the restored horizon, all dropped.
        resent = SourceTracker()
        resent.restore(snapshot)
        assert not any(resent.admit(source, seq) for source, seq in ops[:point])

    def test_duplicates_resent_across_restart_stay_dropped(self):
        live = SourceTracker()
        for seq in (1, 2, 3):
            assert live.admit("s", seq)
        restarted = SourceTracker()
        restarted.restore(live.snapshot())
        assert not restarted.admit("s", 3), "pre-restart seq must dedup"
        assert restarted.admit("s", 4), "fresh traffic must pass"
        assert restarted.duplicates == live.duplicates + 1
