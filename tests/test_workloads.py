"""Tests for the synthetic workload generators and selectivity calibration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.datamodel import Event
from repro.asp.time import MS_PER_MINUTE, minutes
from repro.errors import WorkloadError
from repro.workloads.airquality import (
    AQ_TYPES,
    AirQualityConfig,
    aq_stream,
    aq_streams,
    threshold_for_selectivity,
)
from repro.workloads.csvio import read_events, round_trip_equal, write_events
from repro.workloads.generator import (
    StreamSpec,
    WorkloadConfig,
    duration_for_events,
    generate_stream,
    generate_workload,
    merged_timeline,
)
from repro.workloads.qnv import (
    QnVConfig,
    qnv_streams,
    quantity_threshold_for_selectivity,
    velocity_threshold_for_selectivity,
)
from repro.workloads.selectivity import (
    calibrate_filter_selectivity,
    calibrate_iter_filter,
    calibrate_seq_n_filter,
    iter_output_matches_per_window,
    seq2_output_selectivity,
)


class TestStreamSpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            StreamSpec("Q", period_ms=0)
        with pytest.raises(WorkloadError):
            StreamSpec("Q", num_sensors=0)
        with pytest.raises(WorkloadError):
            StreamSpec("Q", value_min=10, value_max=5)

    def test_default_ids(self):
        assert StreamSpec("Q", num_sensors=3).ids() == (1, 2, 3)

    def test_custom_ids(self):
        spec = StreamSpec("Q", num_sensors=2, sensor_ids=(10, 20))
        assert spec.ids() == (10, 20)


class TestGenerateStream:
    def test_deterministic_under_seed(self):
        spec = StreamSpec("Q", num_sensors=2)
        a = generate_stream(spec, minutes(30), seed=5)
        b = generate_stream(spec, minutes(30), seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        spec = StreamSpec("Q")
        a = generate_stream(spec, minutes(30), seed=1)
        b = generate_stream(spec, minutes(30), seed=2)
        assert a != b

    def test_grid_aligned_timestamps(self):
        spec = StreamSpec("Q", period_ms=MS_PER_MINUTE)
        events = generate_stream(spec, minutes(10))
        assert all(e.ts % MS_PER_MINUTE == 0 for e in events)

    def test_event_count(self):
        spec = StreamSpec("Q", num_sensors=3, period_ms=MS_PER_MINUTE)
        events = generate_stream(spec, minutes(10))
        assert len(events) == 30

    def test_values_within_range(self):
        spec = StreamSpec("Q", value_min=10.0, value_max=20.0)
        events = generate_stream(spec, minutes(60))
        assert all(10.0 <= e.value < 20.0 for e in events)

    def test_time_ordered(self):
        events = generate_stream(StreamSpec("Q", num_sensors=2), minutes(30))
        assert [e.ts for e in events] == sorted(e.ts for e in events)


class TestWorkloadConfig:
    def test_total_events_estimate(self):
        config = WorkloadConfig(
            streams=[StreamSpec("Q", num_sensors=2), StreamSpec("V", num_sensors=2)],
            duration_ms=minutes(100),
        )
        assert config.total_events() == 400

    def test_generate_workload_keys_by_type(self):
        config = WorkloadConfig(
            streams=[StreamSpec("Q"), StreamSpec("V")], duration_ms=minutes(10)
        )
        streams = generate_workload(config)
        assert set(streams) == {"Q", "V"}

    def test_duplicate_type_rejected(self):
        config = WorkloadConfig(
            streams=[StreamSpec("Q"), StreamSpec("Q")], duration_ms=minutes(10)
        )
        with pytest.raises(WorkloadError, match="duplicate"):
            generate_workload(config)

    def test_duration_for_events(self):
        streams = [StreamSpec("Q", num_sensors=2), StreamSpec("V", num_sensors=2)]
        duration = duration_for_events(4000, streams)
        total = sum(
            (duration // s.period_ms) * s.num_sensors for s in streams
        )
        assert abs(total - 4000) <= 4

    def test_merged_timeline_ordered(self):
        config = WorkloadConfig(
            streams=[StreamSpec("Q"), StreamSpec("V")], duration_ms=minutes(20)
        )
        merged = merged_timeline(generate_workload(config))
        assert [e.ts for e in merged] == sorted(e.ts for e in merged)


class TestQnV:
    def test_streams_have_paper_schema(self):
        streams = qnv_streams(QnVConfig(num_segments=2, duration_ms=minutes(10)))
        q = streams["Q"][0]
        assert q.event_type == "Q"
        assert q.id in (1, 2)
        assert q.lat and q.lon

    def test_quantity_threshold_inverse(self):
        threshold = quantity_threshold_for_selectivity(0.25)
        assert threshold == 75.0  # P(value > 75) = 0.25 on [0, 100)

    def test_velocity_threshold_inverse(self):
        threshold = velocity_threshold_for_selectivity(0.2)
        assert threshold == 30.0  # P(value < 30) = 0.2 on [0, 150)

    def test_threshold_selectivity_empirical(self):
        streams = qnv_streams(QnVConfig(num_segments=4, duration_ms=minutes(2000)))
        threshold = quantity_threshold_for_selectivity(0.1)
        hits = sum(1 for e in streams["Q"] if e.value > threshold)
        assert hits / len(streams["Q"]) == pytest.approx(0.1, abs=0.02)

    def test_invalid_selectivity(self):
        with pytest.raises(ValueError):
            quantity_threshold_for_selectivity(1.5)


class TestAirQuality:
    def test_all_types(self):
        streams = aq_streams(AirQualityConfig(duration_ms=minutes(40)))
        assert set(streams) == set(AQ_TYPES)

    def test_four_minute_period(self):
        events = aq_stream(AirQualityConfig(duration_ms=minutes(40)), "PM10")
        assert len(events) == 10

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            aq_stream(AirQualityConfig(), "NOPE")

    def test_threshold_above_and_below(self):
        above = threshold_for_selectivity("PM10", 0.25, above=True)
        below = threshold_for_selectivity("PM10", 0.25, above=False)
        assert above == 90.0
        assert below == 30.0


class TestCsvIo:
    def test_round_trip(self, tmp_path):
        events = generate_stream(StreamSpec("Q", num_sensors=2), minutes(20))
        assert round_trip_equal(events, tmp_path / "q.csv")

    def test_round_trip_with_attrs(self, tmp_path):
        events = [Event("Q", ts=1, attrs={"a_ts": 5})]
        write_events(tmp_path / "x.csv", events)
        assert list(read_events(tmp_path / "x.csv")) == events

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError, match="unexpected CSV header"):
            list(read_events(path))

    def test_write_returns_count(self, tmp_path):
        events = generate_stream(StreamSpec("Q"), minutes(5))
        assert write_events(tmp_path / "q.csv", events) == len(events)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert list(read_events(path)) == []


class TestSelectivityCalibration:
    def test_seq2_model_monotone(self):
        lo = seq2_output_selectivity(0.01, minutes(15))
        hi = seq2_output_selectivity(0.1, minutes(15))
        assert hi > lo

    def test_calibrate_inverts_model(self):
        target = 0.01
        p = calibrate_filter_selectivity(target, minutes(15), sensors=2)
        assert seq2_output_selectivity(p, minutes(15), sensors=2) == pytest.approx(target)

    def test_calibrate_clamps_to_unit(self):
        assert calibrate_filter_selectivity(100.0, minutes(15)) == 1.0

    def test_iter_model_poisson_identity(self):
        # lam = 3 per window, m = 2: E[C(N,2)] = 9/2
        assert iter_output_matches_per_window(0.2, 2, minutes(15)) == pytest.approx(4.5)

    def test_calibrate_iter_inverts(self):
        p = calibrate_iter_filter(0.9, 4, minutes(90))
        assert iter_output_matches_per_window(p, 4, minutes(90)) == pytest.approx(0.9, rel=1e-6)

    def test_calibrate_iter_sensors_scale(self):
        p1 = calibrate_iter_filter(1.0, 3, minutes(15), sensors=1)
        p4 = calibrate_iter_filter(1.0, 3, minutes(15), sensors=4)
        assert p4 == pytest.approx(p1 / 4)

    def test_calibrate_seq_n(self):
        p = calibrate_seq_n_filter(1e-3, 3, qualifying_per_window=15)
        lam = p * 15
        assert lam**3 / 6 == pytest.approx(1e-3, rel=1e-6)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            calibrate_filter_selectivity(-1, minutes(15))
        with pytest.raises(ValueError):
            calibrate_iter_filter(-1, 2, minutes(15))

    @settings(max_examples=25, deadline=None)
    @given(target=st.floats(min_value=1e-6, max_value=0.2),
           window=st.integers(min_value=5, max_value=120),
           sensors=st.integers(min_value=1, max_value=16))
    def test_calibration_round_trip_property(self, target, window, sensors):
        p = calibrate_filter_selectivity(target, minutes(window), sensors=sensors)
        if p < 1.0:  # inside the invertible region
            back = seq2_output_selectivity(p, minutes(window), sensors=sensors)
            assert back == pytest.approx(target, rel=1e-6)

    def test_empirical_seq2_selectivity_close_to_model(self):
        """The calibration model vs an actual oracle run."""
        from repro.sea.parser import parse_pattern
        from repro.sea.semantics import evaluate_pattern
        from repro.asp.datamodel import merge_events

        sensors, window_min = 2, 10
        streams = qnv_streams(
            QnVConfig(num_segments=sensors, duration_ms=minutes(600), seed=9)
        )
        target = 0.02
        p = calibrate_filter_selectivity(target, minutes(window_min), sensors=sensors)
        q_th = quantity_threshold_for_selectivity(p)
        v_th = velocity_threshold_for_selectivity(p)
        pattern = parse_pattern(
            f"PATTERN SEQ(Q a, V b) WHERE a.value > {q_th} AND b.value < {v_th} "
            f"WITHIN {window_min} MINUTES SLIDE 1 MINUTE"
        )
        events = merge_events(streams["Q"], streams["V"])
        matches = evaluate_pattern(pattern, events)
        sigma = len(matches) / len(events)
        assert sigma == pytest.approx(target, rel=0.6)  # stochastic tolerance


class TestSkewedGeneration:
    def test_zipf_weights_sum_to_one(self):
        from repro.workloads.generator import zipf_weights

        weights = zipf_weights(10, exponent=1.2)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_zero_exponent_is_uniform(self):
        from repro.workloads.generator import zipf_weights

        weights = zipf_weights(5, exponent=0.0)
        assert all(w == pytest.approx(0.2) for w in weights)

    def test_invalid_parameters(self):
        from repro.workloads.generator import zipf_weights

        with pytest.raises(WorkloadError):
            zipf_weights(0)
        with pytest.raises(WorkloadError):
            zipf_weights(3, exponent=-1)

    def test_skewed_stream_concentrates_on_low_ids(self):
        from collections import Counter

        from repro.workloads.generator import generate_skewed_stream

        spec = StreamSpec("Q", num_sensors=8)
        events = generate_skewed_stream(spec, minutes(2000), exponent=1.5, seed=5)
        counts = Counter(e.id for e in events)
        assert counts[1] > 3 * counts[8]

    def test_skewed_stream_time_ordered_and_deterministic(self):
        from repro.workloads.generator import generate_skewed_stream

        spec = StreamSpec("Q", num_sensors=4)
        a = generate_skewed_stream(spec, minutes(200), seed=3)
        b = generate_skewed_stream(spec, minutes(200), seed=3)
        assert a == b
        assert [e.ts for e in a] == sorted(e.ts for e in a)


class TestClusterSkew:
    def test_skewed_keys_raise_makespan_skew(self):
        """A Zipf workload produces measurable slot imbalance — the
        mechanism behind the paper's keys-vs-slots observations."""
        from repro.runtime.cluster import ClusterConfig, run_on_cluster
        from repro.workloads.generator import generate_skewed_stream
        from repro.asp.executor import RunResult

        spec = StreamSpec("Q", num_sensors=16)
        events = generate_skewed_stream(spec, minutes(1000), exponent=1.5, seed=2)

        def job(streams, budget):
            total = sum(len(v) for v in streams.values())
            return (
                RunResult("job", total, 0, wall_seconds=max(total, 1) / 1e6,
                          peak_state_bytes=0, work_units=total),
                0,
            )

        outcome = run_on_cluster(
            {"Q": events}, job, ClusterConfig(num_workers=1, slots_per_worker=4)
        )
        assert outcome.skew() > 1.1
