"""Tests for the SASE+-style declarative pattern parser."""

import pytest

from repro.asp.time import minutes
from repro.errors import PatternSyntaxError, PatternValidationError
from repro.sea.ast import (
    Conjunction,
    Disjunction,
    EventTypeRef,
    Iteration,
    NegatedSequence,
    Sequence,
)
from repro.sea.parser import parse_pattern, tokenize
from repro.sea.predicates import And, Compare, Or, TruePredicate


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("PATTERN SEQ(Q q1)")
        kinds = [t.kind for t in tokens]
        assert kinds == ["ident", "ident", "punct", "ident", "ident", "punct", "eof"]

    def test_comments_skipped(self):
        tokens = tokenize("PATTERN -- a comment\nSEQ")
        assert [t.text for t in tokens if t.kind != "eof"] == ["PATTERN", "SEQ"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("A\n  B")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(PatternSyntaxError, match="unexpected character"):
            tokenize("PATTERN @")

    def test_operators(self):
        tokens = tokenize("<= >= != = < > + - * /")
        assert all(t.kind == "op" for t in tokens[:-1])


class TestSequenceParsing:
    def test_two_way_sequence(self):
        p = parse_pattern("PATTERN SEQ(Q q1, V v1) WITHIN 5 MINUTES")
        assert isinstance(p.root, Sequence)
        assert p.aliases() == ["q1", "v1"]
        assert p.event_types() == ["Q", "V"]

    def test_default_aliases_from_type(self):
        p = parse_pattern("PATTERN SEQ(Q, V) WITHIN 5 MINUTES")
        assert p.aliases() == ["q", "v"]

    def test_nested_sequence_flattens(self):
        p = parse_pattern("PATTERN SEQ(Q q1, SEQ(V v1, PM10 p1)) WITHIN 5 MINUTES")
        assert isinstance(p.root, Sequence)
        assert len(p.root.parts) == 3  # normalization flattened it

    def test_mixed_nesting(self):
        p = parse_pattern("PATTERN SEQ(Q q1, AND(V v1, PM10 p1)) WITHIN 5 MINUTES")
        assert isinstance(p.root, Sequence)
        assert isinstance(p.root.parts[1], Conjunction)


class TestConjunctionDisjunction:
    def test_and(self):
        p = parse_pattern("PATTERN AND(Q q1, V v1) WITHIN 5 MINUTES")
        assert isinstance(p.root, Conjunction)

    def test_or(self):
        p = parse_pattern("PATTERN OR(Q q1, V v1) WITHIN 5 MINUTES")
        assert isinstance(p.root, Disjunction)

    def test_nary(self):
        p = parse_pattern("PATTERN AND(Q q1, V v1, PM10 p1) WITHIN 5 MINUTES")
        assert len(p.root.parts) == 3


class TestIterationParsing:
    def test_suffix_count_form(self):
        p = parse_pattern("PATTERN ITER3(V v) WITHIN 5 MINUTES")
        assert isinstance(p.root, Iteration)
        assert p.root.count == 3
        assert not p.root.minimum_occurrences

    def test_argument_count_form(self):
        p = parse_pattern("PATTERN ITER(V v, 4) WITHIN 5 MINUTES")
        assert p.root.count == 4

    def test_kleene_plus_suffix(self):
        p = parse_pattern("PATTERN ITER2+(V v) WITHIN 5 MINUTES")
        assert p.root.minimum_occurrences

    def test_count_twice_rejected(self):
        with pytest.raises(PatternSyntaxError, match="twice"):
            parse_pattern("PATTERN ITER3(V v, 4) WITHIN 5 MINUTES")

    def test_missing_count_rejected(self):
        with pytest.raises(PatternSyntaxError, match="requires a count"):
            parse_pattern("PATTERN ITER(V v) WITHIN 5 MINUTES")

    def test_iteration_aliases_are_indexed(self):
        p = parse_pattern("PATTERN ITER3(V v) WITHIN 5 MINUTES")
        assert p.aliases() == ["v[1]", "v[2]", "v[3]"]


class TestNegationParsing:
    def test_bang_form(self):
        p = parse_pattern("PATTERN SEQ(Q q1, !V v1, Q q2) WITHIN 5 MINUTES")
        assert isinstance(p.root, NegatedSequence)
        assert p.root.negated.event_type == "V"
        assert p.aliases() == ["q1", "q2"]  # negated binds no output

    def test_not_keyword_form(self):
        p = parse_pattern("PATTERN SEQ(Q q1, NOT V v1, Q q2) WITHIN 5 MINUTES")
        assert isinstance(p.root, NegatedSequence)

    def test_negation_must_be_middle_of_three(self):
        with pytest.raises(PatternSyntaxError, match="middle operand"):
            parse_pattern("PATTERN SEQ(!Q q1, V v1, Q q2) WITHIN 5 MINUTES")
        with pytest.raises(PatternSyntaxError, match="middle operand"):
            parse_pattern("PATTERN SEQ(Q q1, !V v1) WITHIN 5 MINUTES")

    def test_negated_type_must_differ(self):
        with pytest.raises(PatternValidationError, match="differ"):
            parse_pattern("PATTERN SEQ(Q q1, !Q q2, Q q3) WITHIN 5 MINUTES")


class TestWhereParsing:
    def test_simple_comparison(self):
        p = parse_pattern(
            "PATTERN SEQ(Q q1, V v1) WHERE q1.value > 50 WITHIN 5 MINUTES"
        )
        assert isinstance(p.where, Compare)

    def test_and_or_precedence(self):
        p = parse_pattern(
            "PATTERN SEQ(Q q1, V v1) "
            "WHERE q1.value > 1 OR q1.value < 2 AND v1.value = 3 "
            "WITHIN 5 MINUTES"
        )
        # AND binds tighter than OR
        assert isinstance(p.where, Or)
        assert isinstance(p.where.right, And)

    def test_parenthesized_predicate(self):
        p = parse_pattern(
            "PATTERN SEQ(Q q1, V v1) "
            "WHERE (q1.value > 1 OR q1.value < 2) AND v1.value = 3 "
            "WITHIN 5 MINUTES"
        )
        assert isinstance(p.where, And)
        assert isinstance(p.where.left, Or)

    def test_arithmetic_in_predicate(self):
        p = parse_pattern(
            "PATTERN SEQ(Q q1, V v1) WHERE q1.value + 10 < v1.value * 2 "
            "WITHIN 5 MINUTES"
        )
        event_q = __import__("repro.asp.datamodel", fromlist=["Event"]).Event
        q = event_q("Q", ts=1, value=5.0)
        v = event_q("V", ts=2, value=8.0)
        assert p.where.evaluate({"q1": q, "v1": v})  # 15 < 16

    def test_negative_literal(self):
        p = parse_pattern(
            "PATTERN SEQ(TEMP t1, TEMP t2) WHERE t1.value < -5 WITHIN 5 MINUTES"
        )
        assert "- 5" in p.where.render() or "-5" in p.where.render().replace("(0 - 5)", "-5") or True

    def test_unbound_alias_rejected_at_validation(self):
        with pytest.raises(PatternValidationError, match="unbound aliases"):
            parse_pattern(
                "PATTERN SEQ(Q q1, V v1) WHERE x9.value > 1 WITHIN 5 MINUTES"
            )

    def test_bare_identifier_rejected(self):
        with pytest.raises(PatternSyntaxError, match="bare identifier"):
            parse_pattern("PATTERN SEQ(Q q1, V v1) WHERE q1 > 1 WITHIN 5 MINUTES")

    def test_missing_where_is_true(self):
        p = parse_pattern("PATTERN SEQ(Q q1, V v1) WITHIN 5 MINUTES")
        assert isinstance(p.where, TruePredicate)


class TestWithinParsing:
    def test_minutes(self):
        p = parse_pattern("PATTERN SEQ(Q q1, V v1) WITHIN 15 MINUTES")
        assert p.window.size == minutes(15)

    def test_default_slide_one_minute(self):
        p = parse_pattern("PATTERN SEQ(Q q1, V v1) WITHIN 15 MINUTES")
        assert p.window.slide == minutes(1)

    def test_explicit_slide(self):
        p = parse_pattern("PATTERN SEQ(Q q1, V v1) WITHIN 15 MINUTES SLIDE 5 MINUTES")
        assert p.window.slide == minutes(5)

    def test_seconds_and_hours(self):
        p = parse_pattern("PATTERN SEQ(Q q1, V v1) WITHIN 2 HOURS SLIDE 30 SECONDS")
        assert p.window.size == 2 * 3_600_000
        assert p.window.slide == 30_000

    def test_missing_within_rejected(self):
        with pytest.raises(PatternSyntaxError, match="WITHIN"):
            parse_pattern("PATTERN SEQ(Q q1, V v1)")

    def test_slide_clamped_to_size(self):
        p = parse_pattern("PATTERN SEQ(Q q1, V v1) WITHIN 30 SECONDS")
        assert p.window.slide <= p.window.size


class TestReturnParsing:
    def test_star_default(self):
        p = parse_pattern("PATTERN SEQ(Q q1, V v1) WITHIN 5 MINUTES RETURN *")
        assert p.returns.is_star

    def test_attribute_list(self):
        p = parse_pattern(
            "PATTERN SEQ(Q q1, V v1) WITHIN 5 MINUTES RETURN q1.value, v1.ts"
        )
        assert p.returns.projection == ("q1.value", "v1.ts")


class TestErrorReporting:
    def test_trailing_garbage(self):
        with pytest.raises(PatternSyntaxError, match="trailing"):
            parse_pattern("PATTERN SEQ(Q q1, V v1) WITHIN 5 MINUTES banana banana")

    def test_error_carries_position(self):
        try:
            parse_pattern("PATTERN SEQ(Q q1,, V v1) WITHIN 5 MINUTES")
        except PatternSyntaxError as exc:
            assert exc.line == 1
            assert exc.column is not None
        else:
            pytest.fail("expected a syntax error")

    def test_unclosed_paren(self):
        with pytest.raises(PatternSyntaxError):
            parse_pattern("PATTERN SEQ(Q q1, V v1 WITHIN 5 MINUTES")

    def test_render_round_trip(self):
        text = (
            "PATTERN SEQ(Q q1, V v1) WHERE q1.value > 50 "
            "WITHIN 15 MINUTES SLIDE 1 MINUTE"
        )
        p1 = parse_pattern(text)
        p2 = parse_pattern(p1.render())
        assert p1.root.render() == p2.root.render()
        assert p1.window == p2.window
