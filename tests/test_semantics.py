"""Tests for the executable reference semantics (the oracle).

Each SEA operator's formal definition (Eqs. 9-12, 14) is checked against
hand-computed expectations on small streams, plus the windowing theorems
of Section 3.1.3.
"""

import pytest

from repro.asp.datamodel import Event
from repro.asp.operators.window import WindowSpec
from repro.asp.time import minutes
from repro.errors import PatternValidationError
from repro.sea.ast import Pattern, conj, disj, iteration, nseq, ref, seq
from repro.sea.parser import parse_pattern
from repro.sea.semantics import evaluate_pattern, evaluate_window, match_set

MIN = minutes(1)
W = WindowSpec(size=5 * MIN, slide=MIN)


def ev(event_type, minute, value=0.0, id=1):
    return Event(event_type, ts=minute * MIN, id=id, value=value)


class TestSequenceSemantics:
    def test_eq10_temporal_order(self):
        events = [ev("Q", 0), ev("V", 1), ev("V", 2), ev("Q", 3)]
        p = Pattern(seq(ref("Q", "q"), ref("V", "v")), window=W)
        matches = evaluate_window(p, events)
        pairs = {(m.events[0].ts, m.events[1].ts) for m in matches}
        assert pairs == {(0, MIN), (0, 2 * MIN)}  # Q@3 has no later V

    def test_equal_timestamps_do_not_match(self):
        events = [ev("Q", 1), ev("V", 1)]
        p = Pattern(seq(ref("Q", "q"), ref("V", "v")), window=W)
        assert evaluate_window(p, events) == []

    def test_three_way_sequence(self):
        events = [ev("Q", 0), ev("V", 1), ev("W", 2)]
        p = Pattern(seq(ref("Q", "q"), ref("V", "v"), ref("W", "w")), window=W)
        assert len(evaluate_window(p, events)) == 1

    def test_composite_sequence_order_is_all_before_all(self):
        # SEQ(AND(a,b), c): both a and b must precede c.
        events = [ev("A", 0), ev("B", 3), ev("C", 2)]
        p = Pattern(
            seq(conj(ref("A", "a"), ref("B", "b")), ref("C", "c")),
            window=W,
        )
        assert evaluate_window(p, events) == []  # B@3 is after C@2
        events2 = [ev("A", 0), ev("B", 1), ev("C", 2)]
        assert len(evaluate_window(p, events2)) == 1


class TestConjunctionSemantics:
    def test_eq9_any_order(self):
        events = [ev("V", 0), ev("Q", 1)]
        p = Pattern(conj(ref("Q", "q"), ref("V", "v")), window=W)
        assert len(evaluate_window(p, events)) == 1

    def test_cartesian_product_size(self):
        events = [ev("Q", 0), ev("Q", 1), ev("V", 2), ev("V", 3)]
        p = Pattern(conj(ref("Q", "q"), ref("V", "v")), window=W)
        assert len(evaluate_window(p, events)) == 4

    def test_nary_conjunction(self):
        events = [ev("A", 0), ev("B", 1), ev("C", 2)]
        p = Pattern(conj(ref("A", "a"), ref("B", "b"), ref("C", "c")), window=W)
        assert len(evaluate_window(p, events)) == 1


class TestDisjunctionSemantics:
    def test_eq11_each_occurrence_is_a_match(self):
        events = [ev("Q", 0), ev("V", 1), ev("W", 2)]
        p = Pattern(disj(ref("Q", "q"), ref("V", "v")), window=W)
        matches = evaluate_window(p, events)
        assert len(matches) == 2
        assert all(len(m) == 1 for m in matches)


class TestIterationSemantics:
    def test_eq12_strict_temporal_order(self):
        events = [ev("V", 0, 1.0), ev("V", 1, 2.0), ev("V", 2, 3.0)]
        p = Pattern(iteration(ref("V", "v"), 2), window=W)
        assert len(evaluate_window(p, events)) == 3  # C(3,2)

    def test_exact_count_not_at_least(self):
        """SEA iteration is bounded to exactly m — contrast to Kleene."""
        events = [ev("V", i) for i in range(4)]
        p = Pattern(iteration(ref("V", "v"), 3), window=W)
        assert len(evaluate_window(p, events)) == 4  # C(4,3), not supersets

    def test_kleene_plus_variation(self):
        events = [ev("V", i) for i in range(4)]
        p = Pattern(iteration(ref("V", "v"), 3, minimum_occurrences=True), window=W)
        # C(4,3) + C(4,4) = 4 + 1
        assert len(evaluate_window(p, events)) == 5

    def test_consecutive_condition(self):
        events = [ev("V", 0, 1.0), ev("V", 1, 3.0), ev("V", 2, 2.0)]
        p = Pattern(
            iteration(ref("V", "v"), 2, condition=lambda a, b: a.value < b.value),
            window=W,
        )
        pairs = {(m.events[0].value, m.events[1].value) for m in evaluate_window(p, events)}
        assert pairs == {(1.0, 3.0), (1.0, 2.0)}

    def test_same_timestamp_events_not_combined(self):
        events = [ev("V", 1, 1.0, id=1), ev("V", 1, 2.0, id=2)]
        p = Pattern(iteration(ref("V", "v"), 2), window=W)
        assert evaluate_window(p, events) == []


class TestNegatedSequenceSemantics:
    def test_eq14_absence_required(self):
        p = Pattern(nseq(ref("Q", "a"), ref("W", "x"), ref("V", "b")), window=W)
        blocked = [ev("Q", 0), ev("W", 1), ev("V", 2)]
        assert evaluate_window(p, blocked) == []
        free = [ev("Q", 0), ev("V", 2), ev("W", 3)]
        assert len(evaluate_window(p, free)) == 1

    def test_open_interval_boundaries(self):
        """Blockers exactly at e1.ts or e3.ts do not block (open interval)."""
        p = Pattern(nseq(ref("Q", "a"), ref("W", "x"), ref("V", "b")), window=W)
        events = [ev("Q", 0), ev("W", 0), ev("V", 2), ev("W", 2)]
        assert len(evaluate_window(p, events)) == 1

    def test_blocker_predicate_scopes_negation(self):
        p = parse_pattern(
            "PATTERN SEQ(Q a, !W x, V b) WHERE x.value > 10 WITHIN 5 MINUTES"
        )
        # The W event does not satisfy the blocker predicate: no blocking.
        events = [ev("Q", 0), ev("W", 1, value=5.0), ev("V", 2)]
        assert len(evaluate_window(p, events)) == 1
        events2 = [ev("Q", 0), ev("W", 1, value=50.0), ev("V", 2)]
        assert evaluate_window(p, events2) == []

    def test_nested_nseq_rejected(self):
        p = Pattern(
            seq(ref("A", "a"), nseq(ref("Q", "q"), ref("W", "w"), ref("V", "v"))),
            window=W,
        )
        with pytest.raises(PatternValidationError, match="root"):
            evaluate_window(p, [ev("A", 0)])


class TestWindowedEvaluation:
    def test_matches_outside_any_shared_window_excluded(self):
        # Q and V are 10 minutes apart; W = 5 minutes.
        events = [ev("Q", 0), ev("V", 10)]
        p = Pattern(seq(ref("Q", "q"), ref("V", "v")), window=W)
        assert evaluate_pattern(p, events) == []

    def test_theorem1_all_matches_inside_window_found(self):
        events = [ev("Q", 0), ev("V", 4)]
        p = Pattern(seq(ref("Q", "q"), ref("V", "v")), window=W)
        assert len(evaluate_pattern(p, events)) == 1

    def test_theorem2_boundary_pair_found_with_unit_slide(self):
        """A pair exactly W-1 apart is only caught because some window
        starts at the first event (slide <= event gap)."""
        events = [ev("Q", 0), ev("V", 4)]  # 4 min apart, W=5
        p = Pattern(seq(ref("Q", "q"), ref("V", "v")), window=W)
        matches = evaluate_pattern(p, events)
        assert len(matches) == 1

    def test_duplicates_eliminated_across_overlapping_windows(self):
        events = [ev("Q", 10), ev("V", 11)]
        p = Pattern(seq(ref("Q", "q"), ref("V", "v")), window=W)
        with_dedup = evaluate_pattern(p, events)
        without = evaluate_pattern(p, events, deduplicate=False)
        assert len(with_dedup) == 1
        assert len(without) > 1  # pair shared by several windows

    def test_where_filters_matches(self):
        events = [ev("Q", 0, 100.0), ev("Q", 1, 10.0), ev("V", 2)]
        p = parse_pattern(
            "PATTERN SEQ(Q q, V v) WHERE q.value > 50 WITHIN 5 MINUTES"
        )
        assert len(evaluate_pattern(p, events)) == 1

    def test_match_set_representation(self):
        events = [ev("Q", 0), ev("V", 1)]
        p = Pattern(seq(ref("Q", "q"), ref("V", "v")), window=W)
        assert len(match_set(evaluate_pattern(p, events))) == 1

    def test_empty_stream(self):
        p = Pattern(seq(ref("Q", "q"), ref("V", "v")), window=W)
        assert evaluate_pattern(p, []) == []
