"""Tests for the mapping rules (Table 1) and plan construction."""

import pytest

from repro.asp.datamodel import TypeRegistry
from repro.asp.operators.window import WindowSpec
from repro.asp.time import minutes
from repro.errors import OptimizationError, TranslationError
from repro.mapping.optimizations import TranslationOptions, check_applicability
from repro.mapping.plan import (
    CountAggregate,
    JoinKind,
    NseqPrepare,
    PostFilter,
    SchemaAlign,
    StreamScan,
    UnionAll,
    WindowJoin,
    WindowStrategy,
)
from repro.mapping.rules import build_plan
from repro.sea.ast import Pattern, conj, iteration, nseq, ref, seq
from repro.sea.parser import parse_pattern

W = WindowSpec(size=minutes(15), slide=minutes(1))


def plan_of(text_or_pattern, options=None):
    pattern = (
        parse_pattern(text_or_pattern)
        if isinstance(text_or_pattern, str)
        else text_or_pattern
    )
    return build_plan(pattern, options or TranslationOptions())


class TestSequenceMapping:
    def test_two_way_seq_is_ordered_theta_join(self):
        plan = plan_of("PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES")
        root = plan.root
        assert isinstance(root, WindowJoin)
        assert root.kind is JoinKind.THETA
        assert root.ordered

    def test_seq_n_is_left_deep_chain(self):
        plan = plan_of("PATTERN SEQ(Q a, V b, PM10 c, PM2 d) WITHIN 15 MINUTES")
        assert plan.num_joins() == 3  # n-1 joins (Section 4.2.2)
        assert plan.root.aliases == ("a", "b", "c", "d")

    def test_filter_pushdown_into_scans(self):
        plan = plan_of(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 10 AND b.value < 5 "
            "WITHIN 15 MINUTES"
        )
        scans = plan.scans()
        assert all(len(s.filters) == 1 for s in scans)

    def test_cross_alias_predicate_attached_to_join(self):
        plan = plan_of(
            "PATTERN SEQ(Q a, V b) WHERE a.value < b.value WITHIN 15 MINUTES"
        )
        assert len(plan.root.extra_theta) == 1

    def test_cross_predicate_attaches_at_earliest_join(self):
        plan = plan_of(
            "PATTERN SEQ(Q a, V b, PM10 c) WHERE a.value < b.value "
            "WITHIN 15 MINUTES"
        )
        inner = plan.root.left
        assert isinstance(inner, WindowJoin)
        assert len(inner.extra_theta) == 1
        assert len(plan.root.extra_theta) == 0


class TestConjunctionMapping:
    def test_and_is_cross_join(self):
        plan = plan_of("PATTERN AND(Q a, V b) WITHIN 15 MINUTES")
        assert plan.root.kind is JoinKind.CROSS
        assert not plan.root.ordered

    def test_and_with_equi_key_becomes_equi_join(self):
        plan = plan_of("PATTERN AND(Q a, V b) WHERE a.id = b.id WITHIN 15 MINUTES")
        assert plan.root.kind is JoinKind.EQUI
        assert plan.root.equi_keys == ((("a", "id"), ("b", "id")),)


class TestDisjunctionMapping:
    def test_or_is_align_union(self):
        plan = plan_of("PATTERN OR(Q a, V b) WITHIN 15 MINUTES")
        assert isinstance(plan.root, UnionAll)
        assert all(isinstance(p, SchemaAlign) for p in plan.root.parts)


class TestIterationMapping:
    def test_join_strategy_self_join_chain(self):
        plan = plan_of("PATTERN ITER3(V v) WITHIN 15 MINUTES")
        assert plan.num_joins() == 2
        assert plan.root.aliases == ("v[1]", "v[2]", "v[3]")

    def test_bare_alias_filters_push_to_every_scan(self):
        plan = plan_of("PATTERN ITER3(V v) WHERE v.value < 10 WITHIN 15 MINUTES")
        assert all(len(s.filters) == 1 for s in plan.scans())

    def test_aggregate_strategy(self):
        plan = plan_of("PATTERN ITER3(V v) WITHIN 15 MINUTES", TranslationOptions.o2())
        assert isinstance(plan.root, CountAggregate)
        assert plan.root.minimum == 3
        assert plan.root.flavour == "count"

    def test_aggregate_with_consecutive_condition_uses_udf(self):
        pattern = Pattern(
            iteration(ref("V", "v"), 3, condition=lambda a, b: a.value < b.value),
            window=W,
        )
        plan = build_plan(pattern, TranslationOptions.o2())
        assert plan.root.flavour == "udf"
        assert plan.root.condition is not None

    def test_kleene_plus_auto_switches_to_aggregate(self):
        pattern = Pattern(iteration(ref("V", "v"), 2, minimum_occurrences=True), window=W)
        plan = build_plan(pattern, TranslationOptions.fasp())
        assert isinstance(plan.root, CountAggregate)

    def test_indexed_equi_keys_consumed_by_aggregate(self):
        plan = plan_of(
            "PATTERN ITER3(V v) WHERE v[1].id = v[2].id AND v[2].id = v[3].id "
            "WITHIN 15 MINUTES",
            TranslationOptions.o2(),
        )
        assert isinstance(plan.root, CountAggregate)
        assert plan.root.key_attribute == "id"

    def test_mixed_attribute_equalities_rejected_under_o2(self):
        pattern = parse_pattern(
            "PATTERN ITER2(V v) WHERE v[1].id = v[2].value WITHIN 15 MINUTES"
        )
        with pytest.raises(TranslationError, match="differing"):
            build_plan(pattern, TranslationOptions.o2())


class TestNseqMapping:
    def test_nseq_is_udf_plus_ordered_join(self):
        plan = plan_of("PATTERN SEQ(Q a, !W x, V b) WITHIN 15 MINUTES")
        assert isinstance(plan.root, WindowJoin)
        assert isinstance(plan.root.left, NseqPrepare)
        # The a_ts guard is present in the theta conjuncts.
        rendered = [p.render() for p in plan.root.extra_theta]
        assert any("a_ts" in r for r in rendered)

    def test_blocker_filters_push_into_negated_scan(self):
        plan = plan_of(
            "PATTERN SEQ(Q a, !W x, V b) WHERE x.value > 10 WITHIN 15 MINUTES"
        )
        assert len(plan.root.left.negated.filters) == 1


class TestO1Strategy:
    def test_interval_strategy_marks_joins(self):
        plan = plan_of("PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES", TranslationOptions.o1())
        assert plan.root.strategy is WindowStrategy.INTERVAL


class TestO3Strategy:
    def test_partition_attribute_keys_every_join(self):
        plan = plan_of(
            "PATTERN SEQ(Q a, V b, PM10 c) WITHIN 15 MINUTES",
            TranslationOptions.o3("id"),
        )
        joins = [n for n in plan.root.walk() if isinstance(n, WindowJoin)]
        assert all(j.kind is JoinKind.EQUI for j in joins)
        assert all(j.equi_keys for j in joins)

    def test_auto_equi_keys_consumed_from_where(self):
        plan = plan_of(
            "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 15 MINUTES"
        )
        assert plan.root.kind is JoinKind.EQUI
        assert len(plan.root.extra_theta) == 0  # consumed, not re-applied

    def test_auto_equi_disabled_keeps_theta(self):
        options = TranslationOptions(auto_equi_keys=False)
        plan = plan_of(
            "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 15 MINUTES", options
        )
        assert plan.root.kind is JoinKind.THETA
        assert len(plan.root.extra_theta) == 1


class TestPlanMisc:
    def test_slide_override(self):
        plan = plan_of(
            "PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES",
            TranslationOptions(slide_override=minutes(3)),
        )
        assert plan.window_slide == minutes(3)

    def test_explain_renders_tree(self):
        plan = plan_of("PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES")
        text = plan.explain()
        assert "Join" in text and "Scan" in text

    def test_notes_record_options_label(self):
        plan = plan_of("PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES", TranslationOptions.o1())
        assert any("FASP-O1" in n for n in plan.notes)

    def test_reorder_by_frequency_for_conjunction(self):
        registry = TypeRegistry.paper_default()
        pattern = Pattern(conj(ref("Q", "a"), ref("PM10", "b")), window=W)
        options = TranslationOptions(reorder_by_frequency=True)
        plan = build_plan(pattern, options, registry=registry)
        # PM10 (4-minute period) should drive window creation: left side.
        assert plan.root.left.aliases == ("b",)
        assert any("reordered" in n for n in plan.notes)

    def test_unknown_iteration_strategy_rejected(self):
        with pytest.raises(OptimizationError):
            TranslationOptions(iteration_strategy="magic")


class TestOptionLabels:
    @pytest.mark.parametrize(
        "options,label",
        [
            (TranslationOptions.fasp(), "FASP"),
            (TranslationOptions.o1(), "FASP-O1"),
            (TranslationOptions.o2(), "FASP-O2"),
            (TranslationOptions.o3(), "FASP-O3"),
            (TranslationOptions.o1_o3(), "FASP-O1+O3"),
            (TranslationOptions.o2_o3(), "FASP-O2+O3"),
        ],
    )
    def test_labels_match_paper_legends(self, options, label):
        assert options.label() == label

    def test_applicability_notes(self):
        pattern = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES")
        notes = check_applicability(pattern, TranslationOptions.o2())
        assert any("no iteration" in n for n in notes)
