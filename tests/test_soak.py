"""Opt-in larger-scale soak runs (REPRO_SLOW=1 enables them).

The default suite keeps runtimes low; these runs exercise the engines on
~100k-event workloads to catch scale-dependent regressions (state
eviction, watermark math, memory accounting drift).
"""

import os

import pytest

slow = pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW"),
    reason="set REPRO_SLOW=1 to run large-scale soak tests",
)


@slow
def test_fig3a_at_large_scale():
    from repro.experiments import Scale, fig3a_baseline
    from repro.experiments.report import shape_checks

    rows = fig3a_baseline(Scale.large())
    checks = shape_checks(rows)
    assert checks and all(checks.values())


@slow
def test_large_run_state_is_bounded():
    from repro.experiments.common import Scale, qnv_workload, seq2_pattern
    from repro.runtime.harness import run_fasp

    streams = qnv_workload(Scale(events=200_000, sensors=8))
    pattern = seq2_pattern(0.02, window_minutes=15)
    measurement, _sink, result = run_fasp(pattern, streams)
    assert not measurement.failed
    # Window buffers are evicted: peak state stays far below the input.
    assert result.peak_state_bytes < 50 * 96 * 8 * 15 * 4
