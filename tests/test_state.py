"""Tests for state accounting and memory-budget enforcement."""

import pytest

from repro.asp.state import StateHandle, StateRegistry
from repro.errors import MemoryExhaustedError


class TestStateHandle:
    def test_adjust_accumulates(self):
        h = StateHandle("buf", "op")
        h.adjust(100, 2)
        h.adjust(50, 1)
        assert h.bytes_used == 150
        assert h.items == 3

    def test_adjust_clamps_at_zero(self):
        h = StateHandle("buf", "op")
        h.adjust(10, 1)
        h.adjust(-100, -5)
        assert h.bytes_used == 0
        assert h.items == 0

    def test_reset(self):
        h = StateHandle("buf", "op")
        h.adjust(10, 1)
        h.reset()
        assert h.bytes_used == 0 and h.items == 0

    def test_repr_mentions_owner(self):
        assert "op/buf" in repr(StateHandle("buf", "op"))


class TestStateRegistry:
    def test_totals_across_handles(self):
        reg = StateRegistry()
        a = reg.create("a", "op1")
        b = reg.create("b", "op2")
        a.adjust(100, 1)
        b.adjust(50, 2)
        assert reg.total_bytes() == 150
        assert reg.total_items() == 3

    def test_by_owner_groups(self):
        reg = StateRegistry()
        reg.create("a", "op1").adjust(100)
        reg.create("b", "op1").adjust(20)
        reg.create("c", "op2").adjust(5)
        assert reg.by_owner() == {"op1": 120, "op2": 5}

    def test_peak_tracked_on_check(self):
        reg = StateRegistry()
        h = reg.create("a", "op")
        h.adjust(500)
        reg.check_budget()
        h.adjust(-400)
        reg.check_budget()
        assert reg.peak_bytes == 500
        assert reg.total_bytes() == 100

    def test_budget_exhaustion_raises_with_heaviest_owner(self):
        reg = StateRegistry(budget_bytes=100)
        reg.create("small", "light-op").adjust(10)
        reg.create("big", "heavy-op").adjust(200)
        with pytest.raises(MemoryExhaustedError) as excinfo:
            reg.check_budget()
        assert excinfo.value.operator == "heavy-op"
        assert excinfo.value.used_bytes == 210
        assert excinfo.value.budget_bytes == 100

    def test_no_budget_never_raises(self):
        reg = StateRegistry(budget_bytes=None)
        reg.create("a", "op").adjust(10**12)
        reg.check_budget()  # no exception

    def test_snapshot(self):
        reg = StateRegistry()
        reg.create("a", "op").adjust(10, 1)
        reg.check_budget()
        snap = reg.snapshot()
        assert snap["total_bytes"] == 10
        assert snap["total_items"] == 1
        assert snap["peak_bytes"] == 10
        assert snap["by_owner"] == {"op": 10}
