"""Tests for the pattern AST and validation/normalization rules."""

import pytest

from repro.asp.datamodel import TypeRegistry
from repro.asp.operators.window import WindowSpec
from repro.asp.time import minutes
from repro.errors import PatternValidationError
from repro.sea.ast import (
    Conjunction,
    Disjunction,
    EventTypeRef,
    Iteration,
    NegatedSequence,
    Pattern,
    ReturnClause,
    Sequence,
    conj,
    disj,
    iteration,
    nseq,
    ref,
    seq,
)
from repro.sea.parser import parse_pattern
from repro.sea.predicates import Attr, Compare, Const
from repro.sea.validation import (
    contains_operator,
    normalize,
    pattern_length,
    validate_pattern,
)

W = WindowSpec(size=minutes(15), slide=minutes(1))


class TestAstNodes:
    def test_ref_default_alias(self):
        assert ref("Q").alias == "q"
        assert ref("Q", "x").alias == "x"

    def test_seq_requires_two_operands(self):
        with pytest.raises(PatternValidationError):
            Sequence((ref("Q"),))

    def test_and_or_require_two_operands(self):
        with pytest.raises(PatternValidationError):
            Conjunction((ref("Q"),))
        with pytest.raises(PatternValidationError):
            Disjunction((ref("Q"),))

    def test_iteration_count_positive(self):
        with pytest.raises(PatternValidationError):
            Iteration(ref("V"), 0)

    def test_iteration_condition_sets_kind(self):
        node = Iteration(ref("V"), 2, condition=lambda a, b: True)
        assert node.condition_kind == "consecutive"

    def test_nseq_same_type_rejected(self):
        with pytest.raises(PatternValidationError):
            NegatedSequence(ref("Q", "a"), ref("Q", "b"), ref("V", "c"))

    def test_aliases_positional_order(self):
        node = seq(ref("Q", "a"), conj(ref("V", "b"), ref("W", "c")))
        assert node.aliases() == ["a", "b", "c"]

    def test_render_nested(self):
        node = seq(ref("Q", "a"), disj(ref("V", "b"), ref("W", "c")))
        assert node.render() == "SEQ(Q a, OR(V b, W c))"

    def test_iteration_render_includes_count(self):
        assert iteration(ref("V", "v"), 3).render() == "ITER3(V v)"
        assert iteration(ref("V", "v"), 3, minimum_occurrences=True).render() == "ITER3+(V v)"

    def test_walk_visits_all_nodes(self):
        node = seq(ref("Q", "a"), conj(ref("V", "b"), ref("W", "c")))
        assert len(list(node.walk())) == 5


class TestPattern:
    def test_window_mandatory(self):
        with pytest.raises(PatternValidationError, match="WITHIN"):
            Pattern(root=seq(ref("Q"), ref("V")), window=None)

    def test_distinct_event_types_preserve_order(self):
        p = Pattern(seq(ref("Q", "a"), ref("V", "b"), ref("Q", "c")), window=W)
        assert p.distinct_event_types() == ["Q", "V"]

    def test_render_contains_clauses(self):
        p = Pattern(
            seq(ref("Q", "a"), ref("V", "b")),
            where=Compare(">", Attr("a", "value"), Const(1)),
            window=W,
        )
        text = p.render()
        assert "PATTERN" in text and "WHERE" in text and "WITHIN" in text

    def test_return_clause(self):
        assert ReturnClause().is_star
        assert not ReturnClause(("a.value",)).is_star


class TestNormalization:
    def test_nested_seq_flattens(self):
        node = seq(ref("Q", "a"), seq(ref("V", "b"), ref("W", "c")))
        flat = normalize(node)
        assert isinstance(flat, Sequence)
        assert [p.alias for p in flat.parts] == ["a", "b", "c"]

    def test_nested_and_flattens(self):
        node = conj(conj(ref("Q", "a"), ref("V", "b")), ref("W", "c"))
        assert len(normalize(node).parts) == 3

    def test_nested_or_flattens(self):
        node = disj(ref("Q", "a"), disj(ref("V", "b"), ref("W", "c")))
        assert len(normalize(node).parts) == 3

    def test_mixed_operators_do_not_flatten_across(self):
        node = seq(ref("Q", "a"), conj(ref("V", "b"), ref("W", "c")))
        flat = normalize(node)
        assert len(flat.parts) == 2
        assert isinstance(flat.parts[1], Conjunction)

    def test_deep_nesting(self):
        node = seq(ref("A", "a"), seq(ref("B", "b"), seq(ref("C", "c"), ref("D", "d"))))
        assert len(normalize(node).parts) == 4


class TestValidation:
    def test_duplicate_alias_rejected(self):
        p = Pattern(seq(ref("Q", "x"), ref("V", "x")), window=W)
        with pytest.raises(PatternValidationError, match="more than once"):
            validate_pattern(p)

    def test_unknown_type_with_registry(self):
        p = Pattern(seq(ref("NOPE", "a"), ref("Q", "b")), window=W)
        with pytest.raises(PatternValidationError, match="unknown event types"):
            validate_pattern(p, registry=TypeRegistry.paper_default())

    def test_known_types_pass(self):
        p = Pattern(seq(ref("Q", "a"), ref("V", "b")), window=W)
        validate_pattern(p, registry=TypeRegistry.paper_default())

    def test_or_operand_restriction(self):
        p = Pattern(disj(ref("Q", "a"), ref("V", "b")), window=W)
        validate_pattern(p)
        bad = Pattern(
            Disjunction((ref("Q", "a"), seq(ref("V", "b"), ref("W", "c")))),
            window=W,
        )
        with pytest.raises(PatternValidationError, match="OR operands"):
            validate_pattern(bad)

    def test_theorem2_slide_condition(self):
        p = Pattern(
            seq(ref("Q", "a"), ref("V", "b")),
            window=WindowSpec(size=minutes(15), slide=minutes(5)),
        )
        with pytest.raises(PatternValidationError, match="Theorem 2"):
            validate_pattern(p, min_inter_event_gap=minutes(1))
        # fine when events are at least 5 minutes apart
        validate_pattern(p, min_inter_event_gap=minutes(5))

    def test_where_on_negated_alias_allowed(self):
        p = parse_pattern(
            "PATTERN SEQ(Q a, !V b, Q c) WHERE b.value > 10 WITHIN 5 MINUTES"
        )
        assert contains_operator(p, "NSEQ")

    def test_indexed_iteration_aliases_referenceable(self):
        parse_pattern(
            "PATTERN ITER3(V v) WHERE v[1].value < v[3].value WITHIN 5 MINUTES"
        )

    def test_pattern_length_counts_contributing_events(self):
        assert pattern_length(Pattern(seq(ref("Q", "a"), ref("V", "b")), window=W)) == 2
        assert pattern_length(Pattern(iteration(ref("V", "v"), 5), window=W)) == 5
        assert (
            pattern_length(
                Pattern(nseq(ref("Q", "a"), ref("V", "b"), ref("Q", "c")), window=W)
            )
            == 2  # negated event does not contribute to the match
        )

    def test_contains_operator(self):
        p = Pattern(seq(ref("Q", "a"), ref("V", "b")), window=W)
        assert contains_operator(p, "SEQ")
        assert not contains_operator(p, "ITER")
