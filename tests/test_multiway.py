"""Tests for the Beam-style multi-way window join (paper Section 4.2.2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.datamodel import Event
from repro.asp.operators.multiway import MultiWayWindowJoin
from repro.asp.operators.source import ListSource
from repro.asp.operators.window import WindowSpec
from repro.asp.state import StateRegistry
from repro.asp.time import Watermark, minutes
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.plan import MultiWayJoin
from repro.mapping.rules import build_plan
from repro.mapping.sql import render_sql
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern
from repro.sea.semantics import evaluate_pattern

MIN = minutes(1)

MW = TranslationOptions(use_multiway_joins=True)


def make_stream(seed, n=50, types=("Q", "V", "W")):
    rng = random.Random(seed)
    return [
        Event(rng.choice(types), ts=i * MIN, id=rng.randint(1, 3),
              value=round(rng.uniform(0, 100), 3))
        for i in range(n)
    ]


def sources_for(events):
    by_type = {}
    for e in events:
        by_type.setdefault(e.event_type, []).append(e)
    return {t: ListSource(v, name=t, event_type=t) for t, v in by_type.items()}


def run_mw(text, events, options=MW):
    pattern = parse_pattern(text)
    query = translate(pattern, sources_for(events), options)
    query.execute()
    return pattern, query


class TestOperator:
    def test_three_way_ordered(self):
        join = MultiWayWindowJoin(3, WindowSpec(5 * MIN, MIN), ordered=True)
        join.setup(StateRegistry())
        join.process(Event("A", ts=0), port=0)
        join.process(Event("B", ts=MIN), port=1)
        join.process(Event("C", ts=2 * MIN), port=2)
        out = list(join.on_watermark(Watermark.terminal()))
        assert len(out) == 1
        assert [e.event_type for e in out[0].events] == ["A", "B", "C"]

    def test_order_violation_rejected(self):
        join = MultiWayWindowJoin(3, WindowSpec(5 * MIN, MIN), ordered=True)
        join.setup(StateRegistry())
        join.process(Event("A", ts=2 * MIN), port=0)
        join.process(Event("B", ts=MIN), port=1)
        join.process(Event("C", ts=3 * MIN), port=2)
        assert list(join.on_watermark(Watermark.terminal())) == []

    def test_unordered_cross_product(self):
        join = MultiWayWindowJoin(2, WindowSpec(5 * MIN, MIN), ordered=False)
        join.setup(StateRegistry())
        join.process(Event("A", ts=2 * MIN), port=0)
        join.process(Event("B", ts=MIN), port=1)
        assert len(list(join.on_watermark(Watermark.terminal()))) == 1

    def test_keyed_join(self):
        join = MultiWayWindowJoin(
            2, WindowSpec(5 * MIN, MIN), ordered=True, key_fn=lambda e: e.id
        )
        join.setup(StateRegistry())
        join.process(Event("A", ts=0, id=1), port=0)
        join.process(Event("B", ts=MIN, id=2), port=1)
        join.process(Event("B", ts=2 * MIN, id=1), port=1)
        out = list(join.on_watermark(Watermark.terminal()))
        assert len(out) == 1
        assert out[0].events[1].id == 1

    def test_tuple_theta(self):
        join = MultiWayWindowJoin(
            2, WindowSpec(5 * MIN, MIN), ordered=True,
            theta=lambda events: events[0].value < events[1].value,
        )
        join.setup(StateRegistry())
        join.process(Event("A", ts=0, value=5.0), port=0)
        join.process(Event("B", ts=MIN, value=1.0), port=1)
        join.process(Event("B", ts=2 * MIN, value=9.0), port=1)
        out = list(join.on_watermark(Watermark.terminal()))
        assert len(out) == 1
        assert out[0].events[1].value == 9.0

    def test_no_duplicates_across_overlapping_windows(self):
        join = MultiWayWindowJoin(2, WindowSpec(5 * MIN, MIN), ordered=True)
        join.setup(StateRegistry())
        out = []
        for i in range(10):
            join.process(Event("A", ts=i * MIN), port=0)
            join.process(Event("B", ts=i * MIN + 1000), port=1)
            out.extend(join.on_watermark(Watermark(i * MIN - MIN)))
        out.extend(join.on_watermark(Watermark.terminal()))
        keys = [ce.dedup_key() for ce in out]
        assert len(keys) == len(set(keys))

    def test_invalid_arity(self):
        with pytest.raises(ValueError):
            MultiWayWindowJoin(1, WindowSpec(MIN, MIN))

    def test_invalid_port(self):
        join = MultiWayWindowJoin(2, WindowSpec(MIN, MIN))
        join.setup(StateRegistry())
        with pytest.raises(ValueError):
            join.process(Event("A", ts=0), port=5)

    def test_state_evicted(self):
        join = MultiWayWindowJoin(2, WindowSpec(2 * MIN, MIN))
        registry = StateRegistry()
        join.setup(registry)
        for i in range(50):
            join.process(Event("A", ts=i * MIN), port=0)
            join.on_watermark(Watermark(i * MIN))
        assert registry.total_items() <= 6

    def test_watermark_delay(self):
        join = MultiWayWindowJoin(3, WindowSpec(7 * MIN, MIN))
        assert join.watermark_delay() == 7 * MIN


class TestPlanAndTranslation:
    def test_flat_seq_becomes_multiway(self):
        pattern = parse_pattern("PATTERN SEQ(Q a, V b, W c) WITHIN 6 MINUTES")
        plan = build_plan(pattern, MW)
        assert isinstance(plan.root, MultiWayJoin)
        assert plan.root.ordered
        assert any("n-ary" in n for n in plan.notes)

    def test_nested_pattern_falls_back_to_binary_chain(self):
        pattern = parse_pattern("PATTERN SEQ(Q a, AND(V b, W c)) WITHIN 6 MINUTES")
        plan = build_plan(pattern, MW)
        assert not isinstance(plan.root, MultiWayJoin)

    def test_shared_key_attribute_subsumed(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b, W c) WHERE a.id = b.id AND b.id = c.id "
            "WITHIN 6 MINUTES"
        )
        plan = build_plan(pattern, MW)
        assert plan.root.key_attribute == "id"
        assert not plan.root.extra_theta

    def test_partial_key_chain_stays_theta(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b, W c) WHERE a.id = b.id WITHIN 6 MINUTES"
        )
        plan = build_plan(pattern, MW)
        assert plan.root.key_attribute is None
        assert len(plan.root.extra_theta) == 1

    def test_sql_rendering_matches_listing8(self):
        pattern = parse_pattern("PATTERN SEQ(T1 e1, T2 e2, T3 e3) WITHIN 15 MINUTES")
        sql = render_sql(build_plan(pattern, MW))
        assert "Stream T1 e1, Stream T2 e2, Stream T3 e3" in sql
        assert "e1.ts < e2.ts" in sql and "e2.ts < e3.ts" in sql
        assert "multi-way" in sql


class TestEquivalence:
    @pytest.mark.parametrize("text,unordered", [
        ("PATTERN SEQ(Q a, V b, W c) WITHIN 6 MINUTES SLIDE 1 MINUTE", False),
        ("PATTERN AND(Q a, V b) WITHIN 4 MINUTES SLIDE 1 MINUTE", True),
        ("PATTERN SEQ(Q a, V b, W c) WHERE a.id = b.id AND b.id = c.id "
         "WITHIN 6 MINUTES SLIDE 1 MINUTE", False),
        ("PATTERN SEQ(Q a, V b) WHERE a.value < b.value "
         "WITHIN 6 MINUTES SLIDE 1 MINUTE", False),
    ])
    def test_multiway_equals_oracle(self, text, unordered):
        for seed in (1, 2):
            events = make_stream(seed)
            pattern, query = run_mw(text, events)
            key = (lambda m: m.ordered_dedup_key()) if unordered else (
                lambda m: m.dedup_key()
            )
            got = {key(m) for m in query.matches()}
            want = {key(m) for m in evaluate_pattern(pattern, events)}
            assert got == want, f"seed={seed}"

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_multiway_equals_binary_chain(self, seed):
        """The Beam n-ary join and the binary-chain fallback are
        semantically equivalent plans for the same pattern."""
        events = make_stream(seed, n=40)
        text = "PATTERN SEQ(Q a, V b, W c) WITHIN 5 MINUTES SLIDE 1 MINUTE"
        _p1, q_multi = run_mw(text, events, MW)
        _p2, q_binary = run_mw(text, events, TranslationOptions.fasp())
        multi = {m.dedup_key() for m in q_multi.matches()}
        binary = {m.dedup_key() for m in q_binary.matches()}
        assert multi == binary
