"""Smoke tests for the experiment drivers at tiny scale.

Full-scale runs live in benchmarks/; these assert the drivers execute,
produce the expected row structure, and preserve the headline orderings
where they are stable even at tiny scale (match-count agreement between
approaches, FCEP memory failure vs FASP survival).
"""


from repro.experiments import (
    Scale,
    fig3a_baseline,
    fig3b_selectivity,
    fig3c_window_size,
    fig3d_pattern_length,
    fig3e_iteration_consecutive,
    fig3f_iteration_threshold,
    fig4_keys,
    fig4_memory_failure,
    fig5_resources,
    fig6_scalability,
    render_figure,
    render_speedups,
    shape_checks,
)
from repro.experiments.report import relative_speedups

TINY = Scale(events=3_000, sensors=2, seed=7)


def by_cell(rows):
    cells = {}
    for r in rows:
        cells.setdefault((r.pattern, r.parameter), []).append(r)
    return cells


class TestFig3Drivers:
    def test_fig3a_structure(self):
        rows = fig3a_baseline(TINY)
        patterns = {r.pattern for r in rows}
        assert patterns == {"SEQ1", "ITER3_1", "NSEQ1"}
        approaches = {r.approach for r in rows}
        assert {"FCEP", "FASP", "FASP-O1", "FASP-O2"} <= approaches
        assert all(not r.failed for r in rows)

    def test_fig3a_match_agreement_per_cell(self):
        rows = fig3a_baseline(TINY)
        for cell, cell_rows in by_cell(rows).items():
            counts = {r.matches for r in cell_rows if r.approach != "FASP-O2"}
            assert len(counts) == 1, f"{cell}: {counts}"

    def test_fig3b_selectivity_sweep(self):
        rows = fig3b_selectivity(TINY, selectivities_pct=(0.1, 10.0))
        assert len({r.parameter for r in rows}) == 2
        # FCEP degrades as selectivity rises
        fcep = [r for r in rows if r.approach == "FCEP"]
        assert fcep[0].throughput_tps > fcep[-1].throughput_tps

    def test_fig3c_window_sweep(self):
        rows = fig3c_window_size(TINY, window_minutes=(10, 40))
        assert {r.parameter for r in rows} == {"W=10", "W=40"}
        for cell, cell_rows in by_cell(rows).items():
            counts = {r.matches for r in cell_rows}
            assert len(counts) == 1

    def test_fig3d_lengths(self):
        rows = fig3d_pattern_length(TINY, lengths=(2, 3))
        assert {r.pattern for r in rows} == {"SEQ(2)", "SEQ(3)"}

    def test_fig3e_consecutive(self):
        rows = fig3e_iteration_consecutive(TINY, lengths=(2, 3))
        assert {r.pattern for r in rows} == {"ITER2_2", "ITER3_2"}

    def test_fig3f_threshold(self):
        rows = fig3f_iteration_threshold(TINY, lengths=(2, 3))
        exact = [r for r in rows if r.approach in ("FCEP", "FASP", "FASP-O1")]
        for cell, cell_rows in by_cell(exact).items():
            counts = {r.matches for r in cell_rows}
            assert len(counts) == 1


class TestFig4Drivers:
    def test_fig4_keys_structure(self):
        rows = fig4_keys(TINY, key_counts=(4, 8), slots=4)
        assert {r.pattern for r in rows} == {"SEQ7", "ITER4"}
        seq7 = [r for r in rows if r.pattern == "SEQ7"]
        for cell, cell_rows in by_cell(seq7).items():
            counts = {r.matches for r in cell_rows}
            assert len(counts) == 1, f"{cell}: {counts}"

    def test_fig4_memory_failure_shape(self):
        rows = fig4_memory_failure(TINY)
        fcep = next(r for r in rows if r.approach == "FCEP")
        fasp = next(r for r in rows if r.approach != "FCEP")
        assert fcep.failed, "NFA partial-match state must exhaust the budget"
        assert not fasp.failed, "the O2 aggregation must stay within budget"
        assert fasp.peak_state_bytes < fcep.peak_state_bytes


class TestFig5Driver:
    def test_traces_structure(self):
        traces = fig5_resources(TINY, key_counts=(4,), sample_every=200)
        assert {t.pattern for t in traces} == {"SEQ7", "ITER4"}
        for trace in traces:
            assert trace.samples, trace.approach
            assert trace.peak_memory() >= 0
            memory = trace.memory_series()
            assert all(b >= 0 for _t, b in memory)
            cpu = trace.cpu_series()
            assert all(0 <= u <= 100 for _t, u in cpu)


class TestFig6Driver:
    def test_scaling_structure(self):
        rows = fig6_scalability(TINY, worker_counts=(1, 2), slots_per_worker=4,
                                num_keys=8)
        workers = {r.parameter for r in rows}
        assert workers == {"workers=1", "workers=2"}
        for r in rows:
            assert r.extras.get("workers") in (1, 2)


class TestReporting:
    def test_render_figure_contains_all_cells(self):
        rows = fig3b_selectivity(TINY, selectivities_pct=(1.0,))
        text = render_figure(rows, "t")
        assert "SEQ1" in text
        assert "FCEP" in text and "FASP" in text

    def test_speedups_relative_to_fcep(self):
        rows = fig3b_selectivity(TINY, selectivities_pct=(1.0,))
        sp = relative_speedups(rows)
        assert sp and all(factor > 0 for *_cell, factor in sp)
        assert "speedups vs FCEP" in render_speedups(rows)

    def test_shape_checks_pass_at_tiny_scale(self):
        rows = fig3b_selectivity(TINY, selectivities_pct=(3.0,))
        checks = shape_checks(rows)
        assert checks and all(checks.values())
