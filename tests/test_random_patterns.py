"""Property tests over randomly generated patterns.

A hypothesis strategy builds random (but valid) SEA patterns; the
properties assert:

* parse(render(p)) is a fixed point (the PSL round-trips);
* every mapped plan agrees with the formal oracle on random streams;
* the NFA agrees too whenever the pattern is FCEP-expressible.

This is the widest net in the suite: it composes arbitrary flat and
nested structures the hand-written tests do not enumerate.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.asp.datamodel import Event
from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.cep.matches import dedup
from repro.cep.nfa import run_nfa
from repro.cep.pattern_api import from_sea_pattern
from repro.errors import TranslationError
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern
from repro.sea.semantics import evaluate_pattern

MIN = minutes(1)

TYPES = ["Q", "V", "W"]

# -- pattern text generation ---------------------------------------------------

_alias_counter = st.integers(min_value=0, max_value=0)  # placeholder


@st.composite
def _type_refs(draw, count):
    """``count`` type references with unique aliases."""
    refs = []
    for index in range(count):
        event_type = draw(st.sampled_from(TYPES))
        refs.append(f"{event_type} x{index}")
    return refs


@st.composite
def flat_pattern_text(draw):
    operator = draw(st.sampled_from(["SEQ", "AND", "OR", "ITER"]))
    if operator == "ITER":
        m = draw(st.integers(min_value=2, max_value=3))
        event_type = draw(st.sampled_from(TYPES))
        structure = f"ITER{m}({event_type} v)"
        aliases = ["v"]
    else:
        n = draw(st.integers(min_value=2, max_value=3))
        refs = draw(_type_refs(n))
        structure = f"{operator}({', '.join(refs)})"
        aliases = [r.split()[1] for r in refs]
    clauses = []
    if draw(st.booleans()) and operator != "OR":
        alias = draw(st.sampled_from(aliases))
        op = draw(st.sampled_from([">", "<", ">=", "<="]))
        threshold = draw(st.integers(min_value=10, max_value=90))
        clauses.append(f"{alias}.value {op} {threshold}")
    if operator in ("SEQ", "AND") and len(aliases) >= 2 and draw(st.booleans()):
        clauses.append(f"{aliases[0]}.id = {aliases[1]}.id")
    where = f"WHERE {' AND '.join(clauses)} " if clauses else ""
    window = draw(st.integers(min_value=3, max_value=8))
    return f"PATTERN {structure} {where}WITHIN {window} MINUTES SLIDE 1 MINUTE"


@st.composite
def nested_pattern_text(draw):
    inner_op = draw(st.sampled_from(["SEQ", "AND"]))
    outer_op = draw(st.sampled_from(["SEQ", "AND"]))
    refs = draw(_type_refs(3))
    structure = f"{outer_op}({refs[0]}, {inner_op}({refs[1]}, {refs[2]}))"
    window = draw(st.integers(min_value=3, max_value=6))
    return f"PATTERN {structure} WITHIN {window} MINUTES SLIDE 1 MINUTE"


def make_stream(seed, n=30):
    rng = random.Random(seed)
    return [
        Event(rng.choice(TYPES), ts=i * MIN, id=rng.randint(1, 2),
              value=round(rng.uniform(0, 100), 2))
        for i in range(n)
    ]


def sources_for(events):
    by_type = {}
    for e in events:
        by_type.setdefault(e.event_type, []).append(e)
    return {t: ListSource(v, name=t, event_type=t) for t, v in by_type.items()}


def keyset(matches, unordered):
    if unordered:
        return {m.ordered_dedup_key() for m in matches}
    return {m.dedup_key() for m in matches}


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(text=flat_pattern_text())
    def test_parse_render_parse_is_stable(self, text):
        first = parse_pattern(text)
        second = parse_pattern(first.render())
        assert first.root.render() == second.root.render()
        assert first.window == second.window
        assert first.where.render() == second.where.render()

    @settings(max_examples=20, deadline=None)
    @given(text=nested_pattern_text())
    def test_nested_round_trip(self, text):
        first = parse_pattern(text)
        second = parse_pattern(first.render())
        assert first.root.render() == second.root.render()


class TestRandomPatternEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(text=flat_pattern_text(), seed=st.integers(min_value=0, max_value=10**6))
    def test_mapped_plans_agree_with_oracle(self, text, seed):
        pattern = parse_pattern(text)
        events = make_stream(seed)
        unordered = pattern.root.keyword in ("AND",)
        want = keyset(evaluate_pattern(pattern, events), unordered)
        for options in (TranslationOptions.fasp(), TranslationOptions.o1()):
            query = translate(pattern, sources_for(events), options)
            query.execute()
            got = keyset(dedup(query.matches()), unordered)
            assert got == want, (text, options.label())

    @settings(max_examples=15, deadline=None)
    @given(text=nested_pattern_text(), seed=st.integers(min_value=0, max_value=10**6))
    def test_nested_patterns_agree_with_oracle(self, text, seed):
        pattern = parse_pattern(text)
        events = make_stream(seed)
        want = keyset(evaluate_pattern(pattern, events), unordered=True)
        query = translate(pattern, sources_for(events))
        query.execute()
        got = keyset(query.matches(), unordered=True)
        assert got == want, text

    @settings(max_examples=20, deadline=None)
    @given(text=flat_pattern_text(), seed=st.integers(min_value=0, max_value=10**6))
    def test_nfa_agrees_when_expressible(self, text, seed):
        pattern = parse_pattern(text)
        events = make_stream(seed)
        try:
            cep = from_sea_pattern(pattern)
        except TranslationError:
            return  # AND/OR: not FCEP-expressible (paper Table 2)
        want = keyset(evaluate_pattern(pattern, events), unordered=False)
        got = keyset(dedup(run_nfa(cep, events)), unordered=False)
        assert got == want, text
