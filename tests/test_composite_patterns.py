"""Composite pattern structures: operators nested inside one another.

The paper's flat-pattern evaluation never exercises e.g. an iteration
inside a sequence; the algebra and the mapping both support it, so these
tests pin the semantics across the oracle, the NFA (where expressible)
and the mapped plans.
"""

import random

import pytest

from repro.asp.datamodel import Event
from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.cep.matches import dedup, dedup_unordered
from repro.cep.nfa import run_nfa
from repro.cep.pattern_api import from_sea_pattern
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern
from repro.sea.semantics import evaluate_pattern

MIN = minutes(1)


def stream(seed, n=40, types=("Q", "V", "W")):
    rng = random.Random(seed)
    return [
        Event(rng.choice(types), ts=i * MIN, id=rng.randint(1, 2),
              value=round(rng.uniform(0, 100), 2))
        for i in range(n)
    ]


def sources_for(events):
    by_type = {}
    for e in events:
        by_type.setdefault(e.event_type, []).append(e)
    return {t: ListSource(v, name=t, event_type=t) for t, v in by_type.items()}


def oracle(pattern, events, unordered=False):
    matches = evaluate_pattern(pattern, events)
    key = (lambda m: m.ordered_dedup_key()) if unordered else (lambda m: m.dedup_key())
    return {key(m) for m in matches}


def fasp(pattern, events, options=None, unordered=False):
    query = translate(pattern, sources_for(events), options or TranslationOptions())
    query.execute()
    matches = dedup_unordered(query.matches()) if unordered else dedup(query.matches())
    key = (lambda m: m.ordered_dedup_key()) if unordered else (lambda m: m.dedup_key())
    return {key(m) for m in matches}


class TestIterationInsideSequence:
    TEXT = "PATTERN SEQ(Q a, ITER2(V v)) WITHIN 6 MINUTES SLIDE 1 MINUTE"

    def test_oracle_semantics(self):
        """All iteration events must follow the sequence predecessor."""
        events = [
            Event("Q", ts=0),
            Event("V", ts=MIN),
            Event("V", ts=2 * MIN),
        ]
        pattern = parse_pattern(self.TEXT)
        matches = evaluate_pattern(pattern, events)
        assert len(matches) == 1
        assert [e.event_type for e in matches[0].events] == ["Q", "V", "V"]

    def test_iteration_before_predecessor_rejected(self):
        events = [
            Event("V", ts=0),
            Event("Q", ts=MIN),
            Event("V", ts=2 * MIN),
        ]
        pattern = parse_pattern(self.TEXT)
        # The V at ts=0 precedes Q: only combinations entirely after Q count,
        # and a single V remains — no pair.
        assert evaluate_pattern(pattern, events) == []

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fasp_matches_oracle(self, seed):
        events = stream(seed)
        pattern = parse_pattern(self.TEXT)
        assert fasp(pattern, events) == oracle(pattern, events)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_o1_matches_oracle(self, seed):
        events = stream(seed)
        pattern = parse_pattern(self.TEXT)
        assert fasp(pattern, events, TranslationOptions.o1()) == oracle(pattern, events)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_nfa_matches_oracle(self, seed):
        events = stream(seed)
        pattern = parse_pattern(self.TEXT)
        got = {m.dedup_key() for m in dedup(run_nfa(from_sea_pattern(pattern), events))}
        assert got == oracle(pattern, events)


class TestSequenceBeforeIteration:
    TEXT = "PATTERN SEQ(ITER2(Q q), V v) WITHIN 6 MINUTES SLIDE 1 MINUTE"

    @pytest.mark.parametrize("seed", [1, 2])
    def test_fasp_and_nfa_match_oracle(self, seed):
        events = stream(seed)
        pattern = parse_pattern(self.TEXT)
        want = oracle(pattern, events)
        assert fasp(pattern, events) == want
        got = {m.dedup_key() for m in dedup(run_nfa(from_sea_pattern(pattern), events))}
        assert got == want


class TestDisjunctionInsideSequence:
    TEXT = "PATTERN SEQ(Q a, OR(V x, W x2)) WITHIN 5 MINUTES SLIDE 1 MINUTE"

    def test_oracle_semantics(self):
        events = [Event("Q", ts=0), Event("W", ts=MIN)]
        pattern = parse_pattern(self.TEXT)
        assert len(evaluate_pattern(pattern, events)) == 1

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fasp_matches_oracle(self, seed):
        events = stream(seed)
        pattern = parse_pattern(self.TEXT)
        assert fasp(pattern, events) == oracle(pattern, events)

    def test_nfa_cannot_express(self):
        from repro.errors import TranslationError

        with pytest.raises(TranslationError):
            from_sea_pattern(parse_pattern(self.TEXT))


class TestConjunctionInsideSequence:
    TEXT = "PATTERN SEQ(Q a, AND(V x, W y)) WITHIN 5 MINUTES SLIDE 1 MINUTE"

    def test_oracle_requires_all_after_predecessor(self):
        pattern = parse_pattern(self.TEXT)
        good = [Event("Q", ts=0), Event("W", ts=MIN), Event("V", ts=2 * MIN)]
        assert len(evaluate_pattern(pattern, good)) == 1
        # W precedes Q: the conjunction is not entirely after Q.
        bad = [Event("W", ts=0), Event("Q", ts=MIN), Event("V", ts=2 * MIN)]
        assert evaluate_pattern(pattern, bad) == []

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fasp_matches_oracle(self, seed):
        events = stream(seed)
        pattern = parse_pattern(self.TEXT)
        assert fasp(pattern, events, unordered=True) == oracle(
            pattern, events, unordered=True
        )


class TestSequenceInsideConjunction:
    TEXT = "PATTERN AND(SEQ(Q a, V b), W c) WITHIN 5 MINUTES SLIDE 1 MINUTE"

    def test_oracle_semantics(self):
        """The W may occur anywhere in the window; only Q < V is ordered."""
        pattern = parse_pattern(self.TEXT)
        events = [Event("W", ts=0), Event("Q", ts=MIN), Event("V", ts=2 * MIN)]
        assert len(evaluate_pattern(pattern, events)) == 1

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fasp_matches_oracle(self, seed):
        events = stream(seed)
        pattern = parse_pattern(self.TEXT)
        assert fasp(pattern, events, unordered=True) == oracle(
            pattern, events, unordered=True
        )


class TestIterationWithPredicatesInsideSequence:
    TEXT = (
        "PATTERN SEQ(Q a, ITER2(V v)) "
        "WHERE a.value > 30 AND v.value < 70 "
        "WITHIN 6 MINUTES SLIDE 1 MINUTE"
    )

    @pytest.mark.parametrize("seed", [6, 7])
    def test_all_engines_agree(self, seed):
        events = stream(seed)
        pattern = parse_pattern(self.TEXT)
        want = oracle(pattern, events)
        assert fasp(pattern, events) == want
        got = {m.dedup_key() for m in dedup(run_nfa(from_sea_pattern(pattern), events))}
        assert got == want
