"""Tests for report rendering, measurement records, and small leftovers."""

import pytest

from repro.asp.datamodel import Event
from repro.asp.executor import RunResult, merge_sources
from repro.asp.graph import Dataflow
from repro.asp.operators.source import ListSource
from repro.experiments.common import ExperimentRow, rows_summary
from repro.experiments.report import render_bars, render_figure, shape_checks
from repro.runtime.metrics import ThroughputMeasurement


def row(pattern="P", approach="FASP", parameter="x=1", tput=100.0,
        failed=False, matches=1):
    return ExperimentRow(
        experiment="e", pattern=pattern, approach=approach, parameter=parameter,
        throughput_tps=tput, matches=matches, events_in=100, wall_seconds=0.1,
        peak_state_bytes=0, failed=failed,
    )


class TestRenderFigure:
    def test_missing_cell_rendered_as_dash(self):
        rows = [row(approach="FCEP"), row(approach="FASP", parameter="x=2")]
        text = render_figure(rows, "t")
        assert "-" in text

    def test_failed_cell_rendered(self):
        rows = [row(approach="FCEP", failed=True), row(approach="FASP")]
        text = render_figure(rows, "t")
        assert "FAILED" in text

    def test_multiple_patterns_grouped(self):
        rows = [row(pattern="A"), row(pattern="B")]
        text = render_figure(rows, "t")
        assert "A" in text and "B" in text


class TestRenderBars:
    def test_bars_scale_with_throughput(self):
        rows = [row(approach="FCEP", tput=50.0), row(approach="FASP", tput=100.0)]
        text = render_bars(rows, "bars")
        fcep_line = next(l for l in text.splitlines() if "FCEP" in l)
        fasp_line = next(l for l in text.splitlines() if "FASP" in l)
        assert fasp_line.count("█") > fcep_line.count("█")

    def test_failed_bar_annotated(self):
        rows = [row(approach="FCEP", failed=True), row(approach="FASP")]
        text = render_bars(rows, "bars")
        assert "memory exhausted" in text

    def test_empty_rows(self):
        assert "(no data)" in render_bars([], "bars")


class TestShapeChecks:
    def test_fasp_win_passes(self):
        rows = [row(approach="FCEP", tput=50.0), row(approach="FASP", tput=100.0)]
        assert all(shape_checks(rows).values())

    def test_fcep_dominates_fails(self):
        rows = [row(approach="FCEP", tput=500.0), row(approach="FASP", tput=100.0)]
        assert not all(shape_checks(rows).values())

    def test_failed_fcep_counts_as_fasp_win(self):
        rows = [row(approach="FCEP", tput=500.0, failed=True),
                row(approach="FASP", tput=1.0)]
        assert all(shape_checks(rows).values())

    def test_cells_without_fcep_skipped(self):
        rows = [row(approach="FASP")]
        assert shape_checks(rows) == {}


class TestRowsAndMeasurements:
    def test_rows_summary_renders_failures(self):
        text = rows_summary([row(), row(approach="FCEP", failed=True)])
        assert "FAILED" in text and "tpl/s" in text

    def test_from_run_copies_fields(self):
        result = RunResult(
            job_name="j", events_in=100, items_out=5, wall_seconds=2.0,
            peak_state_bytes=10, work_units=7,
        )
        m = ThroughputMeasurement.from_run("FASP", "P", result, matches=5)
        assert m.events_in == 100
        assert m.wall_seconds == 2.0
        assert m.peak_state_bytes == 10
        assert not m.failed

    def test_from_run_propagates_failure(self):
        result = RunResult(
            job_name="j", events_in=1, items_out=0, wall_seconds=1.0,
            peak_state_bytes=0, work_units=0, failed=True, failure="boom",
        )
        m = ThroughputMeasurement.from_run("FCEP", "P", result, matches=0)
        assert m.failed and m.failure == "boom"

    def test_experiment_row_from_measurement_merges_extras(self):
        result = RunResult(
            job_name="j", events_in=1, items_out=0, wall_seconds=1.0,
            peak_state_bytes=0, work_units=0,
        )
        m = ThroughputMeasurement.from_run("FASP", "P", result, matches=0, foo=1)
        r = ExperimentRow.from_measurement("e", "x=1", m, bar=2)
        assert r.extras == {"foo": 1, "bar": 2}


class TestMergeSourcesDetails:
    def test_interleaves_three_sources(self):
        flow = Dataflow()
        flow.add_source(ListSource([Event("A", ts=2)]))
        flow.add_source(ListSource([Event("B", ts=1)]))
        flow.add_source(ListSource([Event("C", ts=3)]))
        merged = [e.event_type for _n, e in merge_sources(flow)]
        assert merged == ["B", "A", "C"]

    def test_tie_break_by_source_order(self):
        flow = Dataflow()
        flow.add_source(ListSource([Event("A", ts=1)]))
        flow.add_source(ListSource([Event("B", ts=1)]))
        merged = [e.event_type for _n, e in merge_sources(flow)]
        assert merged == ["A", "B"]

    def test_source_emitted_counter(self):
        source = ListSource([Event("A", ts=1), Event("A", ts=2)])
        list(source)
        assert source.emitted == 2


class TestRunResultProperties:
    def test_serial_vs_pipeline_throughput(self):
        result = RunResult(
            job_name="j", events_in=1000, items_out=0, wall_seconds=1.0,
            peak_state_bytes=0, work_units=0,
            stage_seconds={"a": 0.4, "b": 0.4},
        )
        assert result.serial_throughput_tps == pytest.approx(1000.0)
        # pipelined: bounded by the busiest stage (0.4s) vs residual (0.2s)
        assert result.pipeline_seconds == pytest.approx(0.4)
        assert result.throughput_tps == pytest.approx(2500.0)

    def test_residual_becomes_bottleneck(self):
        result = RunResult(
            job_name="j", events_in=1000, items_out=0, wall_seconds=1.0,
            peak_state_bytes=0, work_units=0,
            stage_seconds={"a": 0.1},
        )
        assert result.pipeline_seconds == pytest.approx(0.9)

    def test_no_stages_falls_back_to_wall(self):
        result = RunResult(
            job_name="j", events_in=10, items_out=0, wall_seconds=2.0,
            peak_state_bytes=0, work_units=0,
        )
        assert result.pipeline_seconds == 2.0

    def test_zero_events(self):
        result = RunResult(
            job_name="j", events_in=0, items_out=0, wall_seconds=0.0,
            peak_state_bytes=0, work_units=0,
        )
        assert result.throughput_tps == 0.0
        assert result.serial_throughput_tps == 0.0
