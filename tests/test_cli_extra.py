"""Additional CLI coverage: option flags, multiway, O2, engine choices."""

import pytest

from repro.cli import main


@pytest.fixture()
def data_dir(tmp_path):
    rc = main(["generate", "--out", str(tmp_path), "--segments", "2",
               "--minutes", "90", "--air-quality"])
    assert rc == 0
    return tmp_path


class TestCliOptions:
    def test_run_with_o2(self, data_dir, capsys):
        rc = main([
            "run", "-p",
            "PATTERN ITER2(V v) WHERE v.value < 30 WITHIN 10 MINUTES",
            "--o2", "--stream", f"V={data_dir}/V.csv",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FASP-O2" in out

    def test_run_with_o3(self, data_dir, capsys):
        rc = main([
            "run", "-p",
            "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 10 MINUTES",
            "--o3", "id",
            "--stream", f"Q={data_dir}/Q.csv",
            "--stream", f"V={data_dir}/V.csv",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FASP-O3" in out

    def test_explain_with_multiway(self, capsys):
        rc = main([
            "explain", "-p", "PATTERN SEQ(Q a, V b, W c) WITHIN 10 MINUTES",
            "--multiway",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MultiWayJoin" in out

    def test_run_fcep_only(self, data_dir, capsys):
        rc = main([
            "run", "-p", "PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES",
            "--engine", "fcep",
            "--stream", f"Q={data_dir}/Q.csv",
            "--stream", f"V={data_dir}/V.csv",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[FCEP]" in out

    def test_run_shows_limited_matches(self, data_dir, capsys):
        rc = main([
            "run", "-p", "PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES",
            "--show", "2",
            "--stream", f"Q={data_dir}/Q.csv",
            "--stream", f"V={data_dir}/V.csv",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("match:") <= 2

    def test_advise_with_aq_stream(self, data_dir, capsys):
        rc = main([
            "advise", "-p",
            "PATTERN ITER3(PM10 p) WITHIN 30 MINUTES",
            "--stream", f"PM10={data_dir}/PM10.csv",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "O2" in out

    def test_syntax_error_is_reported(self, capsys):
        rc = main(["explain", "-p", "PATTERN SEQ(Q a V b) WITHIN 5 MINUTES"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
