"""Tests for the dataflow graph and the push-based executor."""

import pytest

from repro.asp.datamodel import Event
from repro.asp.executor import Executor, merge_sources, run_dataflow
from repro.asp.graph import Dataflow, linear_pipeline
from repro.asp.operators.filter import FilterOperator
from repro.asp.operators.join import SlidingWindowJoin
from repro.asp.operators.map import MapOperator
from repro.asp.operators.sink import CollectSink, DiscardSink
from repro.asp.operators.source import ListSource
from repro.asp.operators.union import UnionOperator
from repro.asp.operators.window import WindowSpec
from repro.errors import GraphError

MIN = 60_000


def minute_events(event_type, count, id=1):
    return [Event(event_type, ts=i * MIN, id=id, value=i) for i in range(count)]


class TestDataflowStructure:
    def test_linear_pipeline(self):
        sink = CollectSink()
        flow = linear_pipeline(
            ListSource(minute_events("Q", 3)),
            [FilterOperator(lambda e: True), sink],
        )
        flow.validate()
        assert len(flow.nodes) == 3
        assert flow.sink_nodes()[0].operator is sink

    def test_missing_source_rejected(self):
        flow = Dataflow()
        node = flow.add_operator(CollectSink())
        with pytest.raises(GraphError, match="no sources"):
            flow.validate()

    def test_missing_sink_rejected(self):
        flow = Dataflow()
        flow.add_source(ListSource([]))
        with pytest.raises(GraphError, match="no sinks"):
            flow.validate()

    def test_unconnected_operator_rejected(self):
        flow = Dataflow()
        flow.add_source(ListSource([]))
        flow.add_operator(CollectSink())
        with pytest.raises(GraphError, match="no inputs"):
            flow.validate()

    def test_join_requires_both_ports(self):
        flow = Dataflow()
        src = flow.add_source(ListSource([]))
        join = flow.add_operator(SlidingWindowJoin(WindowSpec(MIN, MIN)))
        sink = flow.add_operator(CollectSink())
        flow.connect(src, join, port=0)
        flow.connect(join, sink)
        with pytest.raises(GraphError, match="missing inputs"):
            flow.validate()

    def test_invalid_port_rejected(self):
        flow = Dataflow()
        src = flow.add_source(ListSource([]))
        f = flow.add_operator(FilterOperator(lambda e: True))
        sink = flow.add_operator(CollectSink())
        flow.connect(src, f, port=1)  # filter is unary: port 1 invalid
        flow.connect(f, sink)
        with pytest.raises(GraphError, match="invalid ports|missing inputs"):
            flow.validate()

    def test_connecting_into_source_rejected(self):
        flow = Dataflow()
        a = flow.add_source(ListSource([]))
        b = flow.add_source(ListSource([]))
        with pytest.raises(GraphError, match="cannot connect into a source"):
            flow.connect(a, b)

    def test_unknown_node_rejected(self):
        flow = Dataflow()
        a = flow.add_source(ListSource([]))
        with pytest.raises(GraphError, match="unknown target"):
            flow.connect(a, 99)

    def test_topological_order_respects_edges(self):
        flow = Dataflow()
        src = flow.add_source(ListSource([]))
        f1 = flow.add_operator(FilterOperator(lambda e: True, name="f1"))
        f2 = flow.add_operator(FilterOperator(lambda e: True, name="f2"))
        sink = flow.add_operator(CollectSink())
        flow.connect(src, f1)
        flow.connect(f1, f2)
        flow.connect(f2, sink)
        order = [n.node_id for n in flow.topological_order()]
        assert order.index(src) < order.index(f1) < order.index(f2) < order.index(sink)

    def test_describe_renders_plan(self):
        flow = linear_pipeline(
            ListSource([], name="s"), [FilterOperator(lambda e: True), CollectSink()]
        )
        text = flow.describe()
        assert "source s" in text
        assert "filter" in text

    def test_chain_lengths(self):
        flow = linear_pipeline(
            ListSource([], name="s"),
            [FilterOperator(lambda e: True), MapOperator(lambda e: e), CollectSink()],
        )
        depths = flow.operator_chain_lengths()
        assert list(depths.values()) == [3]


class TestMergeSources:
    def test_global_event_time_order(self):
        flow = Dataflow()
        flow.add_source(ListSource(minute_events("Q", 3)))
        flow.add_source(ListSource([Event("V", ts=90_000)]))
        merged = [e.ts for _nid, e in merge_sources(flow)]
        assert merged == sorted(merged)

    def test_empty_sources(self):
        flow = Dataflow()
        flow.add_source(ListSource([]))
        assert list(merge_sources(flow)) == []


class TestExecutor:
    def test_simple_pipeline_counts(self):
        sink = CollectSink()
        flow = linear_pipeline(
            ListSource(minute_events("Q", 10)),
            [FilterOperator(lambda e: e.value >= 5), sink],
        )
        result = run_dataflow(flow)
        assert result.events_in == 10
        assert sink.count == 5
        assert not result.failed

    def test_union_of_two_sources(self):
        flow = Dataflow()
        a = flow.add_source(ListSource(minute_events("Q", 5)))
        b = flow.add_source(ListSource(minute_events("V", 5)))
        union = flow.add_operator(UnionOperator(arity=2))
        sink = CollectSink()
        sink_node = flow.add_operator(sink)
        flow.connect(a, union, port=0)
        flow.connect(b, union, port=1)
        flow.connect(union, sink_node)
        run_dataflow(flow)
        assert sink.count == 10

    def test_join_pipeline_end_to_end(self):
        flow = Dataflow()
        a = flow.add_source(ListSource(minute_events("Q", 10)))
        b = flow.add_source(ListSource([Event("V", ts=i * MIN + 1000) for i in range(10)]))
        join = flow.add_operator(
            SlidingWindowJoin(WindowSpec(3 * MIN, MIN), theta=lambda l, r: l.ts < r.ts)
        )
        sink = CollectSink()
        sink_node = flow.add_operator(sink)
        flow.connect(a, join, port=0)
        flow.connect(b, join, port=1)
        flow.connect(join, sink_node)
        result = run_dataflow(flow, watermark_interval=MIN)
        assert sink.count > 0
        assert result.items_out == 0  # sink consumed everything

    def test_memory_budget_failure_reported_not_raised(self):
        flow = Dataflow()
        a = flow.add_source(ListSource(minute_events("Q", 200)))
        b = flow.add_source(ListSource(minute_events("V", 200)))
        join = flow.add_operator(SlidingWindowJoin(WindowSpec(100 * MIN, MIN)))
        sink_node = flow.add_operator(DiscardSink())
        flow.connect(a, join, port=0)
        flow.connect(b, join, port=1)
        flow.connect(join, sink_node)
        result = run_dataflow(flow, memory_budget_bytes=1_000, watermark_interval=MIN)
        assert result.failed
        assert "memory budget exhausted" in (result.failure or "")

    def test_samples_collected(self):
        flow = linear_pipeline(
            ListSource(minute_events("Q", 100)), [CollectSink()]
        )
        executor = Executor(flow, sample_every=10)
        result = executor.run()
        assert len(result.samples) >= 10
        assert all("state_bytes" in s for s in result.samples)

    def test_stage_seconds_recorded_per_operator(self):
        flow = linear_pipeline(
            ListSource(minute_events("Q", 50)),
            [FilterOperator(lambda e: True, name="f"), CollectSink()],
        )
        result = run_dataflow(flow)
        assert len(result.stage_seconds) == 2
        assert all(v >= 0 for v in result.stage_seconds.values())

    def test_pipeline_seconds_bounded_by_wall(self):
        flow = linear_pipeline(
            ListSource(minute_events("Q", 50)), [CollectSink()]
        )
        result = run_dataflow(flow)
        assert 0 < result.pipeline_seconds <= result.wall_seconds + 1e-6
        assert result.throughput_tps >= result.serial_throughput_tps

    def test_watermark_delay_accumulates_along_paths(self):
        flow = Dataflow()
        a = flow.add_source(ListSource(minute_events("Q", 5)))
        b = flow.add_source(ListSource(minute_events("V", 5)))
        j1 = flow.add_operator(SlidingWindowJoin(WindowSpec(2 * MIN, MIN), name="j1"))
        c = flow.add_source(ListSource(minute_events("W", 5)))
        j2 = flow.add_operator(SlidingWindowJoin(WindowSpec(3 * MIN, MIN), name="j2"))
        sink_node = flow.add_operator(DiscardSink())
        flow.connect(a, j1, port=0)
        flow.connect(b, j1, port=1)
        flow.connect(j1, j2, port=0)
        flow.connect(c, j2, port=1)
        flow.connect(j2, sink_node)
        executor = Executor(flow)
        j1_id = next(n.node_id for n in flow.operator_nodes() if n.name == "j1")
        j2_id = next(n.node_id for n in flow.operator_nodes() if n.name == "j2")
        sink_id = flow.sink_nodes()[0].node_id
        assert executor._wm_delay[j1_id] == 0
        assert executor._wm_delay[j2_id] == 2 * MIN       # j1's delay
        assert executor._wm_delay[sink_id] == 5 * MIN     # j1 + j2

    def test_delayed_items_are_not_lost_in_nested_joins(self):
        """A downstream window must not close before upstream join results
        (up to W late) arrive — the watermark-delay mechanism."""
        q = [Event("Q", ts=i * MIN) for i in range(30)]
        v = [Event("V", ts=i * MIN) for i in range(30)]
        w = [Event("W", ts=i * MIN) for i in range(30)]
        flow = Dataflow()
        a, b, c = (flow.add_source(ListSource(s)) for s in (q, v, w))
        W = 6 * MIN
        j1 = SlidingWindowJoin(WindowSpec(W, MIN), theta=lambda l, r: l.ts < r.ts,
                               emit_ts="min")
        j2 = SlidingWindowJoin(WindowSpec(W, MIN),
                               theta=lambda l, r: max(e.ts for e in l.events) < r.ts
                               if hasattr(l, "events") else l.ts < r.ts,
                               emit_ts="min")
        n1, n2 = flow.add_operator(j1), flow.add_operator(j2)
        sink = CollectSink()
        ns = flow.add_operator(sink)
        flow.connect(a, n1, port=0)
        flow.connect(b, n1, port=1)
        flow.connect(n1, n2, port=0)
        flow.connect(c, n2, port=1)
        flow.connect(n2, ns)
        run_dataflow(flow, watermark_interval=MIN)
        # brute force triples q < v < w all within a shared 6-minute grid window
        def cowin(ts_list):
            newest, oldest = max(ts_list), min(ts_list)
            first_k = -(-(newest - W + 1) // MIN)
            return first_k * MIN <= oldest
        expected = sum(
            1
            for eq in q for ev in v for ew in w
            if eq.ts < ev.ts < ew.ts and cowin([eq.ts, ev.ts, ew.ts])
        )
        assert sink.count == expected
