"""Focused tests for translator internals and edge paths."""

import pytest

from repro.asp.datamodel import ComplexEvent, Event
from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.errors import TranslationError
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.plan import WindowJoin
from repro.mapping.rules import build_plan
from repro.mapping.translator import (
    TranslatedQuery,
    _make_key_fn,
    _make_theta,
    translate,
)
from repro.sea.parser import parse_pattern

MIN = minutes(1)


def plan_join(text, options=None):
    plan = build_plan(parse_pattern(text), options or TranslationOptions())
    assert isinstance(plan.root, WindowJoin)
    return plan.root


class TestMakeTheta:
    def test_no_constraints_yields_none(self):
        join = plan_join("PATTERN AND(Q a, V b) WITHIN 5 MINUTES")
        assert _make_theta(join) is None

    def test_ordered_constraint(self):
        join = plan_join("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        theta = _make_theta(join)
        assert theta(Event("Q", ts=1), Event("V", ts=2))
        assert not theta(Event("Q", ts=2), Event("V", ts=1))
        assert not theta(Event("Q", ts=1), Event("V", ts=1))

    def test_ordered_uses_composition_extremes(self):
        join = plan_join("PATTERN SEQ(Q a, V b, W c) WITHIN 5 MINUTES")
        theta = _make_theta(join)
        pair = ComplexEvent((Event("Q", ts=1), Event("V", ts=5)))
        assert theta(pair, Event("W", ts=6))
        assert not theta(pair, Event("W", ts=4))  # inside the pair's span

    def test_cross_alias_conjunct(self):
        join = plan_join(
            "PATTERN SEQ(Q a, V b) WHERE a.value < b.value WITHIN 5 MINUTES"
        )
        theta = _make_theta(join)
        assert theta(Event("Q", ts=1, value=1.0), Event("V", ts=2, value=5.0))
        assert not theta(Event("Q", ts=1, value=9.0), Event("V", ts=2, value=5.0))


class TestMakeKeyFn:
    def test_single_key(self):
        key_fn = _make_key_fn(("a",), (("a", "id"),))
        assert key_fn(Event("Q", ts=1, id=7)) == 7

    def test_key_from_composition_position(self):
        key_fn = _make_key_fn(("a", "b"), (("b", "id"),))
        pair = ComplexEvent((Event("Q", ts=1, id=1), Event("V", ts=2, id=9)))
        assert key_fn(pair) == 9

    def test_multi_key_tuple(self):
        key_fn = _make_key_fn(("a",), (("a", "id"), ("a", "value")))
        assert key_fn(Event("Q", ts=1, id=7, value=3.0)) == (7, 3.0)

    def test_missing_alias_rejected(self):
        with pytest.raises(TranslationError, match="missing from side"):
            _make_key_fn(("a",), (("zz", "id"),))


class TestTranslateErrors:
    def test_missing_source_raises(self):
        pattern = parse_pattern("PATTERN SEQ(Q a, NOPE b) WITHIN 5 MINUTES")
        with pytest.raises(TranslationError, match="no source provided"):
            translate(pattern, {"Q": ListSource([], event_type="Q")})

    def test_matches_requires_collect_sink(self):
        from repro.asp.operators.sink import DiscardSink

        pattern = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        query = translate(
            pattern,
            {"Q": ListSource([], event_type="Q"),
             "V": ListSource([], event_type="V")},
        )
        query.attach_sink(DiscardSink())
        query.execute()
        with pytest.raises(TranslationError, match="CollectSink"):
            query.matches()

    def test_explain_includes_plan_and_flow(self):
        pattern = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        query = translate(
            pattern,
            {"Q": ListSource([], event_type="Q"),
             "V": ListSource([], event_type="V")},
        )
        text = query.explain()
        assert "LogicalPlan" in text
        assert "Dataflow" in text


class TestSharedPhysicalStream:
    def test_type_routing_filters_inserted(self):
        """A source whose event_type is None feeds several scans via
        per-type routing filters (the paper's single-CSV reading path)."""
        events = [Event("Q", ts=0), Event("V", ts=MIN)]
        shared = ListSource(events, name="mixed")  # event_type=None
        pattern = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        query = translate(pattern, {"Q": shared, "V": shared})
        type_filters = [
            n for n in query.env.flow.operator_nodes()
            if n.operator.kind == "type-filter"
        ]
        assert len(type_filters) == 2
        query.execute()
        assert len(query.matches()) == 1

    def test_typed_source_skips_routing(self):
        events = [Event("Q", ts=0)]
        typed = ListSource(events, name="q", event_type="Q")
        pattern = parse_pattern("PATTERN ITER1(Q q) WITHIN 5 MINUTES")
        query = translate(pattern, {"Q": typed})
        type_filters = [
            n for n in query.env.flow.operator_nodes()
            if n.operator.kind == "type-filter"
        ]
        assert not type_filters
