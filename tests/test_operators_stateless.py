"""Tests for the stateless operators: filter, map, union, key-by."""

import pytest

from repro.asp.datamodel import ComplexEvent, Event
from repro.asp.operators.base import constituents, item_ts
from repro.asp.operators.filter import FilterOperator, TypeFilterOperator
from repro.asp.operators.keyby import (
    KeyByOperator,
    key_by_attribute,
    keys_per_partition,
    partition_for,
    split_by_partition,
    stable_hash,
)
from repro.asp.operators.map import (
    FlatMapOperator,
    KeyAssignOperator,
    MapOperator,
    SchemaAlignOperator,
)
from repro.asp.operators.union import UnionOperator


class TestItemHelpers:
    def test_item_ts_event(self):
        assert item_ts(Event("Q", ts=5)) == 5

    def test_item_ts_complex_uses_assigned_ts(self):
        ce = ComplexEvent((Event("Q", ts=5), Event("V", ts=9)), ts=9)
        assert item_ts(ce) == 9

    def test_constituents_event_is_itself(self):
        e = Event("Q", ts=1)
        assert constituents(e) == (e,)

    def test_constituents_complex_flattens(self):
        events = (Event("Q", ts=1), Event("V", ts=2))
        assert constituents(ComplexEvent(events)) == events


class TestFilterOperator:
    def test_passes_and_drops(self):
        op = FilterOperator(lambda e: e.value > 10)
        assert list(op.process(Event("Q", ts=1, value=20))) == [Event("Q", ts=1, value=20)]
        assert list(op.process(Event("Q", ts=2, value=5))) == []
        assert op.passed == 1 and op.dropped == 1

    def test_observed_selectivity(self):
        op = FilterOperator(lambda e: e.value > 0)
        assert op.observed_selectivity == 0.0
        op.process(Event("Q", ts=1, value=1))
        op.process(Event("Q", ts=2, value=-1))
        assert op.observed_selectivity == 0.5

    def test_type_filter(self):
        op = TypeFilterOperator("Q")
        assert list(op.process(Event("Q", ts=1)))
        assert not list(op.process(Event("V", ts=1)))

    def test_stateless(self):
        assert not FilterOperator(lambda e: True).is_stateful


class TestMapOperators:
    def test_map_applies_fn(self):
        op = MapOperator(lambda e: e.with_attrs(value=e.value * 2))
        (out,) = op.process(Event("Q", ts=1, value=3))
        assert out.value == 6

    def test_flat_map_multiple_outputs(self):
        op = FlatMapOperator(lambda e: [e, e])
        assert len(list(op.process(Event("Q", ts=1)))) == 2

    def test_flat_map_zero_outputs(self):
        op = FlatMapOperator(lambda e: [])
        assert list(op.process(Event("Q", ts=1))) == []

    def test_schema_align_renames(self):
        op = SchemaAlignOperator(renames={"value": "speed"})
        (out,) = op.process(Event("V", ts=1, value=80.0))
        assert out["speed"] == 80.0

    def test_schema_align_rewrites_type(self):
        op = SchemaAlignOperator(target_type="UNIFIED")
        (out,) = op.process(Event("V", ts=1))
        assert out.event_type == "UNIFIED"

    def test_schema_align_defaults_only_fill_missing(self):
        op = SchemaAlignOperator(defaults={"value": 1.0, "extra": 9})
        (out,) = op.process(Event("V", ts=1, value=5.0))
        assert out.value == 5.0  # present: untouched
        assert out["extra"] == 9

    def test_schema_align_passes_complex_events(self):
        ce = ComplexEvent((Event("Q", ts=1),))
        op = SchemaAlignOperator(target_type="X")
        assert list(op.process(ce)) == [ce]

    def test_key_assign_uniform(self):
        op = KeyAssignOperator()
        (out,) = op.process(Event("Q", ts=1))
        assert out["partition_key"] == KeyAssignOperator.CARTESIAN_KEY

    def test_key_assign_custom(self):
        op = KeyAssignOperator(key_fn=lambda e: e.id)
        (out,) = op.process(Event("Q", ts=1, id=7))
        assert out["partition_key"] == 7


class TestUnionOperator:
    def test_forwards_from_all_ports(self):
        op = UnionOperator(arity=2)
        a, b = Event("Q", ts=1), Event("V", ts=2)
        assert list(op.process(a, port=0)) == [a]
        assert list(op.process(b, port=1)) == [b]
        assert op.counts == [1, 1]

    def test_invalid_port_rejected(self):
        with pytest.raises(ValueError):
            UnionOperator(arity=2).process(Event("Q", ts=1), port=2)

    def test_invalid_arity_rejected(self):
        with pytest.raises(ValueError):
            UnionOperator(arity=0)


class TestKeyPartitioning:
    def test_stable_hash_deterministic_for_strings(self):
        assert stable_hash("sensor-1") == stable_hash("sensor-1")
        assert stable_hash("a") != stable_hash("b")

    def test_stable_hash_nonnegative(self):
        for key in (-5, "x", 3.5):
            assert stable_hash(key) >= 0

    def test_partition_for_in_range(self):
        for key in range(100):
            assert 0 <= partition_for(key, 7) < 7

    def test_partition_for_invalid(self):
        with pytest.raises(ValueError):
            partition_for(1, 0)

    def test_split_by_partition_routes_all_events(self):
        events = [Event("Q", ts=i, id=i % 5) for i in range(50)]
        parts = split_by_partition(events, lambda e: e.id, 3)
        assert sum(len(p) for p in parts) == 50
        # same key always lands in the same partition
        for part in parts:
            for e in part:
                assert partition_for(e.id, 3) == parts.index(part)

    def test_keys_per_partition_covers_all(self):
        assignment = keys_per_partition(list(range(20)), 4)
        assert sorted(k for part in assignment for k in part) == list(range(20))

    def test_key_by_attribute_on_complex_event(self):
        selector = key_by_attribute("id")
        ce = ComplexEvent((Event("Q", ts=1, id=9), Event("V", ts=2, id=9)))
        assert selector(ce) == 9

    def test_key_by_operator_records_keys(self):
        op = KeyByOperator(key_by_attribute("id"))
        op.process(Event("Q", ts=1, id=1))
        op.process(Event("Q", ts=2, id=2))
        assert op.seen_keys == {1, 2}
