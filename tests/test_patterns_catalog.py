"""Tests for the pattern catalog and the rush-hour workload."""

import pytest

from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.mapping.advisor import recommend_options
from repro.mapping.translator import translate
from repro.patterns import CATALOG, catalog_pattern
from repro.sea.ast import Pattern
from repro.workloads import generate_rush_hour_traffic, rush_hour_profile
from repro.workloads.airquality import AirQualityConfig, aq_streams


class TestCatalog:
    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_every_entry_builds_a_valid_pattern(self, name):
        pattern = catalog_pattern(name)
        assert isinstance(pattern, Pattern)
        assert pattern.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            catalog_pattern("nope")

    def test_parameterization(self):
        pattern = catalog_pattern("traffic-congestion", quantity_threshold=95.0,
                                  window_minutes=5)
        assert "95" in pattern.where.render()
        assert pattern.window.size == minutes(5)

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_every_entry_translates(self, name):
        """Each catalog pattern maps to an executable plan under the
        advisor-recommended options."""
        pattern = catalog_pattern(name)
        recommendation = recommend_options(pattern)
        from repro.mapping.rules import build_plan

        plan = build_plan(pattern, recommendation.options)
        assert plan.root is not None


class TestRushHour:
    def test_profile_peaks_at_rush_hours(self):
        assert rush_hour_profile(480) > rush_hour_profile(180)   # 8am > 3am
        assert rush_hour_profile(1050) > rush_hour_profile(780)  # 5:30pm > 1pm
        assert all(0 <= rush_hour_profile(m) <= 1 for m in range(1440))

    def test_generated_values_follow_profile(self):
        streams = generate_rush_hour_traffic(4, minutes(1440), seed=3)
        q = streams["Q"]

        def mean_at(minute):
            vals = [e.value for e in q if e.ts // minutes(1) == minute]
            return sum(vals) / len(vals)

        assert mean_at(480) > mean_at(180)

    def test_congestion_matches_cluster_in_peaks(self):
        """The paper's point: selectivity spikes at peak times — matches
        should concentrate around the rush hours."""
        streams = generate_rush_hour_traffic(4, minutes(1440), seed=5)
        pattern = catalog_pattern("traffic-congestion")
        sources = {
            t: ListSource(v, name=t, event_type=t) for t, v in streams.items()
        }
        query = translate(pattern, sources)
        query.execute()
        matches = query.matches()
        assert matches, "a full day of rush-hour traffic must congest"
        peak_matches = sum(
            1 for m in matches
            if 360 <= (m.ts_b // minutes(1)) % 1440 <= 690
            or 900 <= (m.ts_b // minutes(1)) % 1440 <= 1200
        )
        assert peak_matches / len(matches) > 0.8

    def test_cross_domain_pollution_pattern_runs(self):
        traffic = generate_rush_hour_traffic(2, minutes(240), seed=7)
        aq = aq_streams(
            AirQualityConfig(num_sensors=2, duration_ms=minutes(240), seed=7),
            types=("PM10",),
        )
        pattern = catalog_pattern("vehicle-pollution-alert")
        sources = {
            t: ListSource(v, name=t, event_type=t)
            for t, v in {**traffic, **aq}.items()
        }
        query = translate(pattern, sources)
        result = query.execute()
        assert not result.failed
