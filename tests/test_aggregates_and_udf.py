"""Tests for window aggregations (O2) and the NSEQ next-occurrence UDF."""

import pytest

from repro.asp.datamodel import Event
from repro.asp.operators.aggregate import (
    SortedWindowUdfAggregate,
    WindowAggregate,
    increasing_run_udf,
    kleene_plus_count_udf,
)
from repro.asp.operators.process import AUX_TS_ATTRIBUTE, NextOccurrenceUdf
from repro.asp.operators.window import WindowSpec
from repro.asp.state import StateRegistry
from repro.asp.time import Watermark

MIN = 60_000


def feed(op, events, final=True):
    op.setup(StateRegistry())
    out = []
    for e in events:
        out.extend(op.process(e))
        out.extend(op.on_watermark(Watermark(e.ts - MIN)))
    if final:
        out.extend(op.on_watermark(Watermark.terminal()))
    return out


class TestWindowAggregate:
    def test_count_per_tumbling_window(self):
        op = WindowAggregate(WindowSpec(3 * MIN, 3 * MIN), function="count")
        events = [Event("V", ts=i * MIN) for i in range(6)]
        out = feed(op, events)
        assert [o.value for o in out] == [3.0, 3.0]

    def test_empty_windows_never_fire(self):
        """Paper Section 4.3.2: O2 cannot express Kleene* because windows
        with no event never trigger."""
        op = WindowAggregate(WindowSpec(MIN, MIN), function="count")
        events = [Event("V", ts=0), Event("V", ts=10 * MIN)]
        out = feed(op, events)
        assert len(out) == 2  # only the two non-empty windows fired

    def test_sliding_count_overlap(self):
        op = WindowAggregate(WindowSpec(2 * MIN, MIN), function="count")
        events = [Event("V", ts=0), Event("V", ts=MIN)]
        out = feed(op, events)
        counts = sorted(o.value for o in out)
        assert counts == [1.0, 1.0, 2.0]  # windows [-1,1), [0,2), [1,3)

    @pytest.mark.parametrize(
        "function,expected",
        [("sum", 6.0), ("avg", 2.0), ("min", 1.0), ("max", 3.0), ("count", 3.0)],
    )
    def test_builtin_functions(self, function, expected):
        op = WindowAggregate(WindowSpec(10 * MIN, 10 * MIN), function=function)
        events = [Event("V", ts=i * MIN, value=v) for i, v in enumerate([1.0, 2.0, 3.0])]
        out = feed(op, events)
        assert out[0].value == expected

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            WindowAggregate(WindowSpec(MIN, MIN), function="median")

    def test_keyed_aggregation_separates_keys(self):
        op = WindowAggregate(
            WindowSpec(10 * MIN, 10 * MIN), function="count", key_fn=lambda e: e.id
        )
        events = [Event("V", ts=i * MIN, id=i % 2) for i in range(6)]
        out = feed(op, events)
        assert sorted(o.value for o in out) == [3.0, 3.0]
        assert {o.id for o in out} == {0, 1}

    def test_output_carries_window_metadata(self):
        op = WindowAggregate(WindowSpec(2 * MIN, 2 * MIN), output_type="AGG")
        out = feed(op, [Event("V", ts=0)])
        assert out[0].event_type == "AGG"
        assert out[0]["window_begin"] == 0
        assert out[0]["window_end"] == 2 * MIN
        assert out[0].ts == 2 * MIN - 1

    def test_state_evicted_after_firing(self):
        op = WindowAggregate(WindowSpec(MIN, MIN))
        registry = StateRegistry()
        op.setup(registry)
        for i in range(50):
            op.process(Event("V", ts=i * MIN))
            op.on_watermark(Watermark(i * MIN))
        assert registry.total_items() <= 3


class TestSortedWindowUdfAggregate:
    def test_udf_receives_sorted_pairs(self):
        seen = []

        def udf(pairs):
            seen.append(list(pairs))
            return [float(len(pairs))]

        op = SortedWindowUdfAggregate(WindowSpec(5 * MIN, 5 * MIN), udf)
        feed(op, [Event("V", ts=2 * MIN, value=9.0), Event("V", ts=1 * MIN, value=4.0)])
        assert seen[0] == [(1 * MIN, 4.0), (2 * MIN, 9.0)]

    def test_udf_multiple_outputs(self):
        op = SortedWindowUdfAggregate(
            WindowSpec(5 * MIN, 5 * MIN), lambda pairs: [1.0, 2.0]
        )
        out = feed(op, [Event("V", ts=0)])
        assert [o.value for o in out] == [1.0, 2.0]

    def test_kleene_plus_udf_threshold(self):
        udf = kleene_plus_count_udf(3)
        assert udf([(0, 1.0)] * 2) == []
        assert udf([(0, 1.0)] * 3) == [3.0]

    def test_increasing_run_udf(self):
        udf = increasing_run_udf(3)
        assert udf([(0, 1.0), (1, 2.0), (2, 3.0)]) == [3.0]
        assert udf([(0, 3.0), (1, 2.0), (2, 1.0)]) == []
        assert udf([(0, 1.0), (1, 5.0), (2, 2.0), (3, 3.0), (4, 4.0)]) == [3.0]

    def test_increasing_run_udf_empty(self):
        assert increasing_run_udf(1)([]) == []


class TestNextOccurrenceUdf:
    def test_blocker_resolves_pending_with_its_ts(self):
        op = NextOccurrenceUdf("Q", "W", window_size=5 * MIN)
        op.setup(StateRegistry())
        assert not list(op.process(Event("Q", ts=MIN)))
        out = list(op.process(Event("W", ts=3 * MIN)))
        assert len(out) == 1
        assert out[0][AUX_TS_ATTRIBUTE] == 3 * MIN

    def test_timeout_resolves_with_sentinel(self):
        op = NextOccurrenceUdf("Q", "W", window_size=5 * MIN)
        op.setup(StateRegistry())
        op.process(Event("Q", ts=MIN))
        out = list(op.on_watermark(Watermark(MIN + 5 * MIN)))
        assert len(out) == 1
        assert out[0][AUX_TS_ATTRIBUTE] == MIN + 5 * MIN

    def test_watermark_before_deadline_keeps_pending(self):
        op = NextOccurrenceUdf("Q", "W", window_size=5 * MIN)
        op.setup(StateRegistry())
        op.process(Event("Q", ts=MIN))
        assert not list(op.on_watermark(Watermark(3 * MIN)))

    def test_blocker_outside_window_does_not_resolve_early(self):
        op = NextOccurrenceUdf("Q", "W", window_size=2 * MIN)
        op.setup(StateRegistry())
        op.process(Event("Q", ts=MIN))
        out = list(op.process(Event("W", ts=10 * MIN)))
        # blocker past the deadline resolves by timeout semantics instead
        assert out and out[0][AUX_TS_ATTRIBUTE] == MIN + 2 * MIN

    def test_first_blocker_wins(self):
        op = NextOccurrenceUdf("Q", "W", window_size=10 * MIN)
        op.setup(StateRegistry())
        op.process(Event("Q", ts=MIN))
        out1 = list(op.process(Event("W", ts=2 * MIN)))
        out2 = list(op.process(Event("W", ts=3 * MIN)))
        assert out1[0][AUX_TS_ATTRIBUTE] == 2 * MIN
        assert out2 == []  # already resolved

    def test_keyed_variant_only_blocks_same_id(self):
        op = NextOccurrenceUdf("Q", "W", window_size=5 * MIN, keyed=True)
        op.setup(StateRegistry())
        op.process(Event("Q", ts=MIN, id=1))
        assert not list(op.process(Event("W", ts=2 * MIN, id=2)))
        out = list(op.process(Event("W", ts=3 * MIN, id=1)))
        assert out and out[0][AUX_TS_ATTRIBUTE] == 3 * MIN

    def test_other_types_ignored(self):
        op = NextOccurrenceUdf("Q", "W", window_size=5 * MIN)
        op.setup(StateRegistry())
        op.process(Event("Q", ts=MIN))
        assert not list(op.process(Event("V", ts=2 * MIN)))

    def test_watermark_delay_is_window(self):
        assert NextOccurrenceUdf("Q", "W", window_size=7).watermark_delay() == 7

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            NextOccurrenceUdf("Q", "W", window_size=0)

    def test_state_accounting_drains(self):
        op = NextOccurrenceUdf("Q", "W", window_size=MIN)
        registry = StateRegistry()
        op.setup(registry)
        for i in range(10):
            op.process(Event("Q", ts=i * MIN))
        op.on_watermark(Watermark.terminal())
        assert registry.total_items() == 0
