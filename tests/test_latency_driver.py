"""Unit tests for the detection-latency experiment driver."""

from repro.experiments import Scale, latency_sweep, render_latency
from repro.experiments.latency import LatencyRow


class TestLatencySweep:
    def test_rows_cover_all_approaches_and_selectivities(self):
        rows = latency_sweep(
            Scale(events=3000, sensors=2, seed=7), selectivities_pct=(0.5,)
        )
        assert {r.approach for r in rows} == {"FCEP", "FASP", "FASP-O1"}
        assert all(r.selectivity_pct == 0.5 for r in rows)

    def test_matches_agree_across_approaches(self):
        rows = latency_sweep(
            Scale(events=3000, sensors=2, seed=7), selectivities_pct=(1.0,)
        )
        counts = {r.matches for r in rows}
        assert len(counts) == 1

    def test_eager_engines_have_zero_event_time_lag(self):
        """Interval joins and the NFA detect as the completing event
        arrives; sliding windows buffer until the watermark passes."""
        rows = latency_sweep(
            Scale(events=4000, sensors=2, seed=3), selectivities_pct=(1.0,)
        )
        by_approach = {r.approach: r for r in rows}
        assert by_approach["FASP-O1"].mean_lag_ms == 0
        assert by_approach["FCEP"].mean_lag_ms == 0
        if by_approach["FASP"].matches:
            assert by_approach["FASP"].mean_lag_ms > 0

    def test_sliding_lag_bounded_by_slide_plus_cadence(self):
        rows = latency_sweep(
            Scale(events=4000, sensors=2, seed=3), selectivities_pct=(1.0,)
        )
        fasp = next(r for r in rows if r.approach == "FASP")
        # Upper bound: window size + watermark cadence (coarse but hard).
        assert fasp.max_lag_ms <= 20 * 60_000

    def test_render(self):
        rows = [LatencyRow("FASP", 1.0, 1234.5, 3000, 42)]
        text = render_latency(rows)
        assert "FASP" in text and "42" in text
