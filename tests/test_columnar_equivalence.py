"""Columnar execution equivalence (PR 10).

The struct-of-arrays path (``columnar=True``) is a pure execution-
strategy change on top of the PR 5 batch protocol: vectorized predicate
masks, the bisection interval-join probe and the run-encoded exact
Kleene operator must emit the exact same match multiset as the
per-event row reference for every catalog query, with identical
``events_in``/``items_out``, and stay byte-identical under
checkpoint/recovery crashes and sharded execution.
"""

from hypothesis import given, settings as hsettings, strategies as st

from repro.asp.runtime import FaultPlan, FaultSpec, ShardedBackend
from repro.asp.runtime.fault.chaos import (
    _fresh_query,
    _streams_for,
    canonical_match_bytes,
)
from repro.mapping.advisor import recommend_options
from repro.patterns import CATALOG
from repro.sea.parser import parse_pattern

SCALE_EVENTS = 900
SCALE_SENSORS = 3
SEED = 11

#: Columnar configurations exercised against the per-event reference:
#: tiny odd batches (many row<->column boundary crossings), the
#: production size, columnar alone (batch_size 1 still routes through
#: the batched scheduler), and batches larger than the whole stream.
COLUMNAR_CONFIGS = [(7, False), (256, True), (1, False), (1024, True)]


def _catalog_runs(name):
    pattern = CATALOG[name]()
    options = recommend_options(pattern).options
    streams = _streams_for(pattern, SCALE_EVENTS, SCALE_SENSORS, SEED)

    def run(batch_size, fusion, columnar):
        query = _fresh_query(pattern, streams, options)
        result = query.execute(
            batch_size=batch_size, fusion=fusion, columnar=columnar
        )
        return result, canonical_match_bytes(query.matches())

    return run


def test_catalog_columnar_matches_serial_reference():
    failures = []
    for name in sorted(CATALOG):
        run = _catalog_runs(name)
        ref, ref_bytes = run(1, False, False)
        for batch_size, fusion in COLUMNAR_CONFIGS:
            res, out_bytes = run(batch_size, fusion, True)
            label = f"{name} bs={batch_size} fusion={fusion} columnar"
            if out_bytes != ref_bytes:
                failures.append(f"{label}: match bytes differ")
            if res.events_in != ref.events_in:
                failures.append(
                    f"{label}: events_in {res.events_in} != {ref.events_in}"
                )
            if res.items_out != ref.items_out:
                failures.append(
                    f"{label}: items_out {res.items_out} != {ref.items_out}"
                )
            if res.failed:
                failures.append(f"{label}: run failed: {res.failure}")
    assert not failures, "\n".join(failures)


def test_columnar_channel_totals_match_serial():
    """Frame totals are drive-independent, columns included."""
    run = _catalog_runs("pollution-any-particulate")
    ref, _ = run(1, False, False)
    columnar, _ = run(256, True, True)
    ref_channels = ref.metadata["channels"]
    col_channels = columnar.metadata["channels"]
    assert col_channels["item_frames"] == ref_channels["item_frames"]
    assert col_channels["watermark_frames"] == ref_channels["watermark_frames"]


def test_chaos_recovery_byte_identical_under_columnar():
    """Crashes cut at batch boundaries; columnar recovery replays exactly."""
    pattern = CATALOG["traffic-congestion"]()
    options = recommend_options(pattern).options
    streams = _streams_for(pattern, 1500, SCALE_SENSORS, SEED)

    clean = _fresh_query(pattern, streams, options)
    clean.execute()
    clean_bytes = canonical_match_bytes(clean.matches())

    total = sum(len(evs) for evs in streams.values())
    offsets = (max(150, total // 4), max(300, total // 2))
    plan = FaultPlan(tuple(FaultSpec("crash", at_event=o) for o in offsets))
    for batch_size, fusion in ((256, True), (7, False)):
        query = _fresh_query(pattern, streams, options)
        result = query.execute(
            checkpoint_interval=100,
            fault_plan=plan,
            batch_size=batch_size,
            fusion=fusion,
            columnar=True,
        )
        assert not result.failed, result.failure
        recovery = result.metrics["recovery"]
        assert recovery["recovered"]
        assert len(recovery["restarts"]) == len(offsets)
        assert canonical_match_bytes(query.matches()) == clean_bytes


def test_sharded_backend_runs_columnar_per_shard():
    pattern = CATALOG["traffic-congestion"]()
    keyed = recommend_options(pattern, partition_attribute="id").options
    streams = _streams_for(pattern, SCALE_EVENTS, SCALE_SENSORS, SEED)

    serial = _fresh_query(pattern, streams, keyed)
    serial.execute()
    serial_bytes = canonical_match_bytes(serial.matches())

    query = _fresh_query(pattern, streams, keyed)
    backend = ShardedBackend(shards=2, key_attribute="id", mode="inline")
    result = query.execute(backend=backend, batch_size=256, columnar=True)
    assert not result.failed, result.failure
    assert canonical_match_bytes(query.matches()) == serial_bytes


def test_columnar_state_accounting_matches_row():
    """The bulk-ledger path (cached ``ColumnarBatch.size_bytes``) must
    report the exact same peak state footprint as per-event accounting —
    the RA803 budget check and the peak-state gauges stay truthful."""
    run = _catalog_runs("traffic-congestion")
    ref, _ = run(1, False, False)
    columnar, _ = run(256, True, True)
    assert columnar.peak_state_bytes == ref.peak_state_bytes
    assert columnar.peak_state_bytes > 0


def test_columnar_batch_size_bytes_exact_and_cached():
    from repro.asp.datamodel import ColumnarBatch, Event

    events = [
        Event("V", ts=i * 1000, id=1 + i % 3, value=float(i)) for i in range(16)
    ]
    batch = ColumnarBatch.from_events(events)
    assert batch.size_bytes == sum(e.size_bytes for e in events)
    assert batch._size_bytes == batch.size_bytes  # computed once, then cached
    # A masked view accounts only its selected rows.
    view = batch.select([0, 5, 9])
    assert view.size_bytes == sum(events[i].size_bytes for i in (0, 5, 9))


@hsettings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(["seq", "iter", "band"]),
    # Integral thresholds only: the pattern grammar takes plain decimal
    # literals, not scientific notation.
    threshold=st.integers(min_value=0, max_value=150).map(float),
    window_minutes=st.integers(min_value=2, max_value=30),
    batch_size=st.sampled_from([1, 7, 64, 256]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_patterns_columnar_equals_row(
    kind, threshold, window_minutes, batch_size, seed
):
    """Random patterns x columnar/row mixes: identical matches and
    identical channel frame sequences against the per-event drive."""
    if kind == "seq":
        text = (
            f"PATTERN SEQ(Q a, V b) WHERE a.value > {threshold} "
            f"WITHIN {window_minutes} MINUTES"
        )
    elif kind == "iter":
        text = (
            f"PATTERN ITER2(V v) WHERE v.value < {threshold} "
            f"WITHIN {window_minutes} MINUTES"
        )
    else:
        # A band predicate compiles to a two-conjunct column mask.
        text = (
            f"PATTERN SEQ(Q a, V b) WHERE a.value > {threshold} "
            f"AND b.value < {threshold} WITHIN {window_minutes} MINUTES"
        )
    pattern = parse_pattern(text, name="prop")
    options = recommend_options(pattern).options
    streams = _streams_for(pattern, 240, 2, seed)

    ref = _fresh_query(pattern, streams, options)
    ref_result = ref.execute()
    col = _fresh_query(pattern, streams, options)
    col_result = col.execute(batch_size=batch_size, columnar=True)

    assert canonical_match_bytes(col.matches()) == canonical_match_bytes(
        ref.matches()
    )
    assert col_result.events_in == ref_result.events_in
    assert (
        col_result.metadata["channels"]["item_frames"]
        == ref_result.metadata["channels"]["item_frames"]
    )
