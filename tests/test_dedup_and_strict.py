"""Tests for the dedup operator and the strict-contiguity reference."""

import random

import pytest

from repro.asp.datamodel import ComplexEvent, Event
from repro.asp.operators.dedup import DedupOperator
from repro.asp.state import StateRegistry
from repro.asp.time import Watermark, minutes
from repro.cep.matches import strict_contiguity_reference
from repro.cep.nfa import run_nfa
from repro.cep.pattern_api import from_sea_pattern
from repro.cep.policies import STRICT
from repro.sea.parser import parse_pattern

MIN = minutes(1)


class TestDedupOperator:
    def test_drops_repeated_matches(self):
        op = DedupOperator(window_size=5 * MIN)
        op.setup(StateRegistry())
        ce = ComplexEvent((Event("Q", ts=0), Event("V", ts=MIN)))
        assert list(op.process(ce)) == [ce]
        assert list(op.process(ce)) == []
        assert op.duplicates_dropped == 1

    def test_unordered_mode_collapses_permutations(self):
        op = DedupOperator(window_size=5 * MIN, unordered=True)
        op.setup(StateRegistry())
        q, v = Event("Q", ts=0), Event("V", ts=MIN)
        assert list(op.process(ComplexEvent((q, v))))
        assert not list(op.process(ComplexEvent((v, q))))

    def test_ordered_mode_keeps_permutations(self):
        op = DedupOperator(window_size=5 * MIN)
        op.setup(StateRegistry())
        q, v = Event("Q", ts=0), Event("V", ts=MIN)
        assert list(op.process(ComplexEvent((q, v))))
        assert list(op.process(ComplexEvent((v, q))))

    def test_raw_events_deduplicated_too(self):
        op = DedupOperator(window_size=5 * MIN)
        op.setup(StateRegistry())
        e = Event("Q", ts=0, id=1, value=2.0)
        assert list(op.process(e))
        assert not list(op.process(Event("Q", ts=0, id=1, value=2.0)))

    def test_watermark_evicts_old_keys(self):
        op = DedupOperator(window_size=2 * MIN)
        registry = StateRegistry()
        op.setup(registry)
        for i in range(20):
            op.process(Event("Q", ts=i * MIN, value=float(i)))
            op.on_watermark(Watermark(i * MIN))
        assert registry.total_items() <= 4

    def test_reemission_after_eviction(self):
        """Once the window passed, the same key may legitimately appear
        again (a genuinely new occurrence) and must pass."""
        op = DedupOperator(window_size=MIN)
        op.setup(StateRegistry())
        e = Event("Q", ts=0)
        assert list(op.process(e))
        op.on_watermark(Watermark(10 * MIN))
        assert list(op.process(Event("Q", ts=0)))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DedupOperator(window_size=0)

    def test_end_to_end_normalizes_duplicate_pipeline(self):
        """emit_duplicates pipeline + DedupOperator == duplicate-free run."""
        from repro.asp.operators.source import ListSource
        from repro.mapping.optimizations import TranslationOptions
        from repro.mapping.translator import translate

        rng = random.Random(5)
        events = [
            Event(rng.choice(["Q", "V"]), ts=i * MIN, value=rng.uniform(0, 100))
            for i in range(40)
        ]
        def srcs():
            by = {}
            for e in events:
                by.setdefault(e.event_type, []).append(e)
            return {t: ListSource(v, name=t, event_type=t) for t, v in by.items()}

        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES SLIDE 1 MINUTE"
        )
        clean = translate(pattern, srcs())
        clean.execute()
        raw = translate(pattern, srcs(), TranslationOptions(emit_duplicates=True))
        dedup_op = DedupOperator(window_size=pattern.window.size)
        raw_dedup_handle = raw.output.transform(dedup_op)
        sink = raw_dedup_handle.sink()
        raw.sink = sink
        raw.env.execute(watermark_interval=MIN)
        assert {m.dedup_key() for m in sink.matches()} == {
            m.dedup_key() for m in clean.matches()
        }
        assert dedup_op.duplicates_dropped > 0


class TestStrictContiguityReference:
    def test_nfa_strict_matches_reference(self):
        rng = random.Random(11)
        events = [
            Event(rng.choice(["Q", "V", "W"]), ts=i * MIN,
                  value=rng.uniform(0, 100))
            for i in range(80)
        ]
        sea = parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 6 MINUTES")
        cep = from_sea_pattern(sea, STRICT)
        nfa = {m.dedup_key() for m in run_nfa(cep, events)}
        ref = {m.dedup_key() for m in strict_contiguity_reference(cep, events)}
        assert nfa == ref

    def test_three_way_strict(self):
        rng = random.Random(23)
        events = [
            Event(rng.choice(["Q", "V", "W"]), ts=i * MIN,
                  value=rng.uniform(0, 100))
            for i in range(80)
        ]
        sea = parse_pattern("PATTERN SEQ(Q a, V b, W c) WITHIN 8 MINUTES")
        cep = from_sea_pattern(sea, STRICT)
        nfa = {m.dedup_key() for m in run_nfa(cep, events)}
        ref = {m.dedup_key() for m in strict_contiguity_reference(cep, events)}
        assert nfa == ref

    def test_strict_with_predicates(self):
        rng = random.Random(31)
        events = [
            Event(rng.choice(["Q", "V"]), ts=i * MIN, value=rng.uniform(0, 100))
            for i in range(60)
        ]
        sea = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 40 WITHIN 6 MINUTES"
        )
        cep = from_sea_pattern(sea, STRICT)
        nfa = {m.dedup_key() for m in run_nfa(cep, events)}
        ref = {m.dedup_key() for m in strict_contiguity_reference(cep, events)}
        assert nfa == ref
