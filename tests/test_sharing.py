"""Tests for the multi-query sharability prover (RA81x).

Negative tests pin each near-miss code; the hypothesis property at the
bottom is the soundness contract the compiler leans on: whatever the
prover lets ``translate_many`` merge, batch execution stays exactly
equal to running every query alone.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.sharing import Bound, prove_sharability, scan_pipelines
from repro.asp.datamodel import Event
from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.mapping.multiquery import translate_many
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.optimizer.build import build_plan
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern

MIN = minutes(1)


def submission(text, name, options=None):
    pattern = parse_pattern(text, name=name)
    return (name, build_plan(pattern, options), options)


def prove(*texts, options=None):
    subs = [
        submission(text, f"q{i}", None if options is None else options[i])
        for i, text in enumerate(texts)
    ]
    return prove_sharability(subs)


def make_stream(seed, n=120):
    rng = random.Random(seed)
    return [
        Event(
            rng.choice(["Q", "V"]),
            ts=i * MIN,
            id=rng.randint(1, 3),
            value=round(rng.uniform(0, 100), 3),
        )
        for i in range(n)
    ]


def sources_for(events):
    by_type = {}
    for e in events:
        by_type.setdefault(e.event_type, []).append(e)
    return {t: ListSource(v, name=t, event_type=t) for t, v in by_type.items()}


class TestShareLevels:
    def test_exact_share(self):
        report = prove(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
            "PATTERN AND(Q a, V b) WHERE a.value > 50 AND b.id = a.id WITHIN 6 MINUTES SLIDE 1 MINUTE",
        )
        assert report.ok()
        exact = [g for g in report.groups if g.level == "exact"]
        assert any(g.event_type == "Q" for g in exact)
        group = next(g for g in exact if g.event_type == "Q")
        assert group.windows_aligned
        assert all(not residual for _q, _a, residual in group.residuals)

    def test_subsumed_share_carries_weakest_bound(self):
        report = prove(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 80 WITHIN 6 MINUTES SLIDE 1 MINUTE",
            "PATTERN SEQ(Q a, V b) WHERE a.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
        )
        assert report.ok()
        (group,) = [g for g in report.groups if g.level == "subsumed"]
        assert group.shared_bound == Bound("value", "gt", ">", 50.0)
        assert group.shared_filters == ("a.value > 50.0",)
        residuals = {q: f for q, _a, f in group.residuals}
        assert residuals["q1"] == ()  # the weakest member needs no residual
        assert residuals["q0"]  # the tighter member re-filters

    def test_bucketing_splits_directions_not_pairs(self):
        # Two gt-bounds and one lt-bound on the same attribute: the gt
        # pair merges into its own group; only the cross-direction pairs
        # are near-misses. The old pairwise formulation reported all
        # three pairs as blocked.
        report = prove(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 80 WITHIN 6 MINUTES SLIDE 1 MINUTE",
            "PATTERN SEQ(Q a, V b) WHERE a.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
            "PATTERN SEQ(Q a, V b) WHERE a.value < 10 WITHIN 6 MINUTES SLIDE 1 MINUTE",
        )
        subsumed = [g for g in report.groups if g.level == "subsumed"]
        assert len(subsumed) == 1
        assert set(subsumed[0].queries) == {"q0", "q1"}
        ra811 = [d for d in report.diagnostics if d.code == "RA811"]
        assert len(ra811) == 2  # q0-vs-q2 and q1-vs-q2 only
        assert all("q2" in d.message for d in ra811)


class TestNearMisses:
    def test_ra811_opposite_directions(self):
        report = prove(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
            "PATTERN SEQ(Q a, V b) WHERE a.value < 10 WITHIN 6 MINUTES SLIDE 1 MINUTE",
        )
        assert not any(g.level == "subsumed" for g in report.groups)
        (diag,) = [d for d in report.diagnostics if d.code == "RA811"]
        assert not diag.is_error
        assert "opposite directions" in diag.message

    def test_ra811_different_attributes(self):
        report = prove(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
            "PATTERN SEQ(Q a, V b) WHERE a.id > 1 WITHIN 6 MINUTES SLIDE 1 MINUTE",
        )
        (diag,) = [d for d in report.diagnostics if d.code == "RA811"]
        assert "different attributes" in diag.message

    def test_ra812_window_mismatch_still_shares_scan(self):
        report = prove(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
            "PATTERN SEQ(Q a, V b) WHERE a.value > 50 WITHIN 12 MINUTES SLIDE 1 MINUTE",
        )
        assert report.ok()  # a warning, not an error
        group = next(g for g in report.groups if g.event_type == "Q")
        assert not group.windows_aligned
        ra812 = [d for d in report.diagnostics if d.code == "RA812"]
        assert ra812 and "window extents" in ra812[0].message

    def test_ra813_partition_conflict_is_an_error(self):
        text_id = "PATTERN SEQ(Q a, Q b) WHERE a.id = b.id AND a.value > 50 AND b.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE"
        text_val = "PATTERN SEQ(Q a, Q b) WHERE a.value = b.value AND a.value > 50 AND b.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE"
        report = prove(
            text_id,
            text_val,
            options=[TranslationOptions.o3("id"), TranslationOptions.o3("value")],
        )
        assert not report.ok()
        ra813 = [d for d in report.diagnostics if d.code == "RA813"]
        assert ra813 and ra813[0].is_error
        assert "single O3 partition key" in ra813[0].message

    def test_aligned_partition_keys_pass(self):
        text = "PATTERN SEQ(Q a, Q b) WHERE a.id = b.id AND a.value > 50 AND b.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE"
        report = prove(
            text, text, options=[TranslationOptions.o3("id")] * 2
        )
        assert report.ok()


class TestScanPipelines:
    def test_normalization_matches_rewrite_order(self):
        # Filters listed in either order produce the same signature, so
        # phase-1 and phase-2 plans meet at the same share key.
        a = submission(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 50 AND a.value < 90 WITHIN 6 MINUTES SLIDE 1 MINUTE",
            "x",
        )
        b = submission(
            "PATTERN SEQ(Q a, V b) WHERE a.value < 90 AND a.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
            "y",
        )
        sig_a = next(p for p in scan_pipelines("x", a[1]) if p.event_type == "Q").signature
        sig_b = next(p for p in scan_pipelines("y", b[1]) if p.event_type == "Q").signature
        assert sig_a == sig_b

    def test_effective_bound_takes_tightest_conjunct(self):
        sub = submission(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 50 AND a.value > 70 WITHIN 6 MINUTES SLIDE 1 MINUTE",
            "x",
        )
        pipe = next(p for p in scan_pipelines("x", sub[1]) if p.event_type == "Q")
        assert pipe.effective_bound() == Bound("value", "gt", ">", 70.0)

    def test_single_query_never_groups(self):
        report = prove(
            "PATTERN SEQ(Q a, Q b) WHERE a.value > 50 AND b.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
        )
        assert report.groups == ()


class TestCompiledSubsumption:
    TEXTS = [
        "PATTERN SEQ(Q a, V b) WHERE a.value > 80 WITHIN 6 MINUTES SLIDE 1 MINUTE",
        "PATTERN SEQ(Q a, V b) WHERE a.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
    ]

    def test_translate_many_reports_the_proof(self):
        patterns = [parse_pattern(t, name=f"p{i}") for i, t in enumerate(self.TEXTS)]
        multi = translate_many(patterns, sources_for(make_stream(21)))
        assert multi.sharing is not None and multi.sharing.ok()
        assert any(g.level == "subsumed" for g in multi.sharing.groups)
        assert "subsumed" in multi.explain()

    def test_subsumed_batch_equals_individual_runs(self):
        events = make_stream(22)
        patterns = [parse_pattern(t, name=f"p{i}") for i, t in enumerate(self.TEXTS)]
        multi = translate_many(patterns, sources_for(events))
        multi.execute()
        for index, text in enumerate(self.TEXTS):
            single = translate(parse_pattern(text), sources_for(events))
            single.execute()
            got = {m.dedup_key() for m in multi.matches_of(index)}
            want = {m.dedup_key() for m in single.matches()}
            assert got == want, text


# -- the soundness property -----------------------------------------------

OPS = [">", ">=", "<", "<="]
VALUES = [10.0, 25.0, 50.0, 75.0, 90.0]


@st.composite
def workloads(draw):
    """2-3 single-bound queries over Q/V with varied windows — exercising
    exact, subsumed and blocked share decisions in one batch."""
    n = draw(st.integers(min_value=2, max_value=3))
    queries = []
    for _ in range(n):
        alias_attr = draw(st.sampled_from(["a.value", "a.id", "b.value"]))
        op = draw(st.sampled_from(OPS))
        value = draw(st.sampled_from(VALUES))
        window = draw(st.sampled_from([4, 6]))
        queries.append(
            f"PATTERN SEQ(Q a, V b) WHERE {alias_attr} {op} {value} "
            f"WITHIN {window} MINUTES SLIDE 1 MINUTE"
        )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return queries, seed


@settings(max_examples=30, deadline=None)
@given(workloads())
def test_prover_soundness_batch_equals_individual(workload):
    """Whatever the prover classifies, the merged dataflow's matches are
    exactly the per-query matches — the prover never lets ``translate_many``
    merge scans whose outputs could differ."""
    texts, seed = workload
    events = make_stream(seed)
    patterns = [parse_pattern(t, name=f"p{i}") for i, t in enumerate(texts)]
    multi = translate_many(patterns, sources_for(events))
    multi.execute()
    for index, text in enumerate(texts):
        single = translate(parse_pattern(text), sources_for(events))
        single.execute()
        got = {m.dedup_key() for m in multi.matches_of(index)}
        want = {m.dedup_key() for m in single.matches()}
        assert got == want, (text, multi.sharing and multi.sharing.render())
