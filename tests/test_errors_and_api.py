"""Tests for the exception hierarchy and the public package surface."""

import pytest

import repro
from repro.errors import (
    BackpressureError,
    ClusterError,
    ExecutionError,
    GraphError,
    MemoryExhaustedError,
    OptimizationError,
    PatternSyntaxError,
    PatternValidationError,
    ReproError,
    SchemaError,
    TranslationError,
    WorkloadError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc_type", [
        SchemaError, PatternSyntaxError, PatternValidationError,
        TranslationError, OptimizationError, GraphError, ExecutionError,
        MemoryExhaustedError, BackpressureError, ClusterError, WorkloadError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_memory_exhausted_is_execution_error(self):
        assert issubclass(MemoryExhaustedError, ExecutionError)
        assert issubclass(BackpressureError, ExecutionError)

    def test_memory_exhausted_carries_details(self):
        exc = MemoryExhaustedError(2048, 1024, operator="join")
        assert exc.used_bytes == 2048
        assert exc.budget_bytes == 1024
        assert exc.operator == "join"
        assert "join" in str(exc)
        assert "2048" in str(exc)

    def test_memory_exhausted_without_operator(self):
        exc = MemoryExhaustedError(10, 5)
        assert "in operator" not in str(exc)

    def test_pattern_syntax_error_position(self):
        exc = PatternSyntaxError("bad token", line=3, column=7)
        assert exc.line == 3 and exc.column == 7
        assert "line 3" in str(exc)
        assert "column 7" in str(exc)

    def test_pattern_syntax_error_without_position(self):
        exc = PatternSyntaxError("bad token")
        assert "line" not in str(exc)

    def test_single_except_catches_everything(self):
        for exc_type in (SchemaError, TranslationError, ClusterError):
            try:
                raise exc_type("x")
            except ReproError:
                pass


class TestPublicApi:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_minimal_end_to_end_via_public_api_only(self):
        """The README quickstart path, using only `repro` top-level names."""
        from repro.asp.operators.source import ListSource

        pattern = repro.parse_pattern(
            "PATTERN SEQ(Q q1, V v1) WHERE q1.value > 50 "
            "WITHIN 10 MINUTES SLIDE 1 MINUTE"
        )
        events_q = [repro.Event("Q", ts=repro.minutes(i), value=80.0) for i in range(10)]
        events_v = [repro.Event("V", ts=repro.minutes(i) + 1, value=10.0) for i in range(10)]
        query = repro.translate(
            pattern,
            {"Q": ListSource(events_q, event_type="Q"),
             "V": ListSource(events_v, event_type="V")},
            repro.TranslationOptions.o1(),
        )
        result = query.execute()
        assert not result.failed
        assert query.matches()

    def test_subpackages_export_alls(self):
        import repro.asp
        import repro.cep
        import repro.experiments
        import repro.mapping
        import repro.runtime
        import repro.sea
        import repro.workloads

        for module in (repro.asp, repro.cep, repro.experiments, repro.mapping,
                       repro.runtime, repro.sea, repro.workloads):
            assert module.__all__
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"
