"""Per-rule unit tests for the phase-2 plan optimizer (PR 6).

Each rewrite rule is exercised in isolation: one test per fire path and
one per decline path, so a regression pinpoints the exact rule. The
rewrite engine's contracts — determinism, full rule traces, and the
RA70x structural-invariant gate on output-preserving rules — are tested
at the bottom.
"""

import dataclasses

import pytest

from repro.asp.datamodel import TypeRegistry
from repro.errors import ReproError
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.optimizer import optimize_plan, resolve_cost_model
from repro.mapping.optimizer.build import build_plan
from repro.mapping.optimizer.cost import (
    EQ_SELECTIVITY,
    MANY_WINDOWS_THRESHOLD,
    NEQ_SELECTIVITY,
    RANGE_SELECTIVITY,
    ProfileCostModel,
    StaticCostModel,
    predicate_selectivity,
)
from repro.mapping.optimizer.ir import (
    CountAggregate,
    JoinKind,
    Permute,
    PostFilter,
    WindowStrategy,
)
from repro.mapping.optimizer.rewrite import (
    OptimizeContext,
    Rule,
    RuleDecision,
    optimize_by_rules,
)
from repro.mapping.optimizer.rules import (
    DEFAULT_RULES,
    AnnotateColumnarSegments,
    AnnotateFusionSegments,
    ChooseAggregateIteration,
    ChooseIntervalWindows,
    OrderScanFilters,
    PushResidualPredicates,
    ReorderCommutativeJoin,
)
from repro.analysis.equivalence import check_rewrite_invariants
from repro.asp.runtime.observability.costprofile import CostProfile
from repro.sea.parser import parse_pattern


class RatesModel(StaticCostModel):
    """Static heuristics with injected per-type rates (ev/s)."""

    name = "stub"

    def __init__(self, rates):
        super().__init__()
        self.rates = rates

    def scan_rate(self, scan):
        return self.rates.get(scan.event_type)


def plan_for(text, options=None):
    pattern = parse_pattern(text, name="t")
    return build_plan(pattern, options or TranslationOptions())


def ctx_for(model=None, options=None, **kwargs):
    return OptimizeContext(
        options or TranslationOptions(), model or StaticCostModel(), **kwargs
    )


class TestOrderScanFilters:
    def test_fires_when_filters_out_of_selectivity_order(self):
        plan = plan_for(
            "PATTERN SEQ(Q a, V b) WHERE a.value != 3 AND a.value > 40 "
            "WITHIN 7 MINUTES"
        )
        decision = OrderScanFilters().apply(plan, ctx_for())
        assert decision.fired
        rendered = [p.render() for p in decision.plan.root.left.filters]
        assert rendered == ["a.value > 40", "a.value != 3"]

    def test_declines_when_already_ordered(self):
        plan = plan_for(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 40 AND a.value != 3 "
            "WITHIN 7 MINUTES"
        )
        decision = OrderScanFilters().apply(plan, ctx_for())
        assert not decision.fired
        assert "already" in decision.reason


class TestPushResidualPredicates:
    def _wrapped_plan(self):
        """A plan with the cross-alias theta lifted into a PostFilter."""
        plan = plan_for(
            "PATTERN AND(Q a, V b) WHERE a.value < b.value WITHIN 7 MINUTES"
        )
        join = plan.root
        pred = join.extra_theta[0]
        stripped = dataclasses.replace(
            join, extra_theta=(), kind=JoinKind.CROSS
        )
        return dataclasses.replace(
            plan, root=PostFilter(input=stripped, predicates=(pred,))
        ), pred

    def test_fires_and_upgrades_cross_to_theta(self):
        wrapped, pred = self._wrapped_plan()
        decision = PushResidualPredicates().apply(wrapped, ctx_for())
        assert decision.fired
        root = decision.plan.root
        assert not isinstance(root, PostFilter)
        assert pred in root.extra_theta
        assert root.kind is JoinKind.THETA

    def test_declines_without_post_filter(self):
        plan = plan_for("PATTERN AND(Q a, V b) WITHIN 7 MINUTES")
        decision = PushResidualPredicates().apply(plan, ctx_for())
        assert not decision.fired


class TestReorderCommutativeJoin:
    def test_fires_with_sparser_right_side(self):
        plan = plan_for(
            "PATTERN AND(Q a, V b) WHERE a.id = b.id WITHIN 10 MINUTES"
        )
        model = RatesModel({"Q": 10.0, "V": 1.0})
        decision = ReorderCommutativeJoin().apply(plan, ctx_for(model))
        assert decision.fired
        root = decision.plan.root
        assert isinstance(root, Permute)
        assert root.order == (1, 0)
        # The permutation restores canonical composition order...
        assert root.aliases == ("a", "b")
        # ...while the join underneath executes sparse-side-first with
        # the equi key orientation flipped to match.
        assert root.input.left.event_type == "V"
        assert root.input.equi_keys == ((("b", "id"), ("a", "id")),)

    def test_declines_on_equal_rates(self):
        plan = plan_for("PATTERN AND(Q a, V b) WITHIN 10 MINUTES")
        model = RatesModel({"Q": 1.0, "V": 1.0})
        assert not ReorderCommutativeJoin().apply(plan, ctx_for(model)).fired

    def test_declines_when_rates_unknown(self):
        plan = plan_for("PATTERN AND(Q a, V b) WITHIN 10 MINUTES")
        assert not ReorderCommutativeJoin().apply(plan, ctx_for()).fired

    def test_never_touches_ordered_sequence_joins(self):
        plan = plan_for("PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES")
        model = RatesModel({"Q": 10.0, "V": 1.0})
        assert not ReorderCommutativeJoin().apply(plan, ctx_for(model)).fired


class TestChooseIntervalWindows:
    def test_fires_on_many_overlapping_windows(self):
        plan = plan_for(
            f"PATTERN SEQ(Q a, V b) WITHIN {MANY_WINDOWS_THRESHOLD} MINUTES "
            "SLIDE 1 MINUTE"
        )
        decision = ChooseIntervalWindows().apply(plan, ctx_for())
        assert decision.fired
        assert decision.plan.root.strategy is WindowStrategy.INTERVAL

    def test_fires_on_sparse_left_rates(self):
        plan = plan_for("PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES")
        model = RatesModel({"Q": 1.0, "V": 10.0})
        decision = ChooseIntervalWindows().apply(plan, ctx_for(model))
        assert decision.fired
        assert decision.plan.root.strategy is WindowStrategy.INTERVAL

    def test_declines_below_thresholds(self):
        plan = plan_for("PATTERN SEQ(Q a, V b) WITHIN 15 MINUTES")
        decision = ChooseIntervalWindows().apply(plan, ctx_for())
        assert not decision.fired
        # The rejected alternative is part of the explain trail.
        assert decision.alternatives

    def test_declines_under_emit_duplicates(self):
        options = TranslationOptions(emit_duplicates=True)
        plan = plan_for(
            "PATTERN SEQ(Q a, V b) WITHIN 60 MINUTES SLIDE 1 MINUTE", options
        )
        decision = ChooseIntervalWindows().apply(
            plan, ctx_for(options=options)
        )
        assert not decision.fired


class TestChooseAggregateIteration:
    def test_is_declared_approximate(self):
        assert ChooseAggregateIteration().preserves_output is False

    def test_fires_when_approximation_allowed(self):
        plan = plan_for("PATTERN ITER3(V v) WITHIN 10 MINUTES")
        decision = ChooseAggregateIteration().apply(
            plan, ctx_for(allow_approximate=True)
        )
        assert decision.fired
        root = decision.plan.root
        assert isinstance(root, CountAggregate)
        assert root.minimum == 3

    def test_declines_under_exact_output_contract(self):
        plan = plan_for("PATTERN ITER3(V v) WITHIN 10 MINUTES")
        decision = ChooseAggregateIteration().apply(plan, ctx_for())
        assert not decision.fired
        assert "exact" in decision.reason


class TestAnnotateFusionSegments:
    def test_fires_on_align_over_filtered_scan(self):
        plan = plan_for(
            "PATTERN OR(Q a, V b) WHERE a.value > 40 AND b.value > 40 "
            "WITHIN 10 MINUTES"
        )
        decision = AnnotateFusionSegments().apply(plan, ctx_for())
        assert decision.fired
        assert any("fusion segment" in note for note in decision.plan.notes)

    def test_declines_without_stateless_runs(self):
        plan = plan_for("PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES")
        assert not AnnotateFusionSegments().apply(plan, ctx_for()).fired


class TestAnnotateColumnarSegments:
    def test_fires_on_mask_compilable_filters(self):
        plan = plan_for(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 40 AND b.value < 10 "
            "WITHIN 10 MINUTES"
        )
        decision = AnnotateColumnarSegments().apply(plan, ctx_for())
        assert decision.fired
        assert any("columnar segment" in note for note in decision.plan.notes)

    def test_annotates_exact_kleene_run_enumeration(self):
        plan = plan_for(
            "PATTERN ITER3(V v) WHERE v.value < 10 WITHIN 10 MINUTES",
            TranslationOptions(iteration_strategy="exact"),
        )
        decision = AnnotateColumnarSegments().apply(plan, ctx_for())
        assert decision.fired
        assert any("run enumeration" in note for note in decision.plan.notes)

    def test_declines_on_unfiltered_scans(self):
        plan = plan_for("PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES")
        assert not AnnotateColumnarSegments().apply(plan, ctx_for()).fired


class TestRewriteEngine:
    def test_deterministic_given_same_inputs(self):
        pattern_text = (
            "PATTERN AND(Q a, V b) WHERE a.id = b.id WITHIN 60 MINUTES "
            "SLIDE 1 MINUTE"
        )
        model = RatesModel({"Q": 10.0, "V": 1.0})

        def run():
            plan = plan_for(pattern_text)
            return optimize_plan(plan, TranslationOptions(), model)

        first, second = run(), run()
        assert first.explain() == second.explain()
        assert first.trace.fired_rules == second.trace.fired_rules
        assert first.trace.as_dict() == second.trace.as_dict()
        assert first.summary() == second.summary()

    def test_trace_records_every_rule_in_order(self):
        plan = plan_for("PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES")
        optimized = optimize_plan(plan, TranslationOptions(), StaticCostModel())
        names = [app.rule for app in optimized.trace.applications]
        assert names == [rule.name for rule in DEFAULT_RULES]

    def test_violating_rule_is_rejected(self):
        class DropFilters(Rule):
            name = "drop-filters"
            description = "evil: silently removes pushdown filters"

            def apply(self, plan, ctx):
                def strip(node):
                    if hasattr(node, "filters") and node.filters:
                        return dataclasses.replace(node, filters=())
                    return node

                root = dataclasses.replace(
                    plan.root,
                    left=strip(plan.root.left),
                    right=strip(plan.root.right),
                )
                return RuleDecision.fire(
                    dataclasses.replace(plan, root=root), "dropped filters"
                )

        plan = plan_for(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 40 WITHIN 10 MINUTES"
        )
        with pytest.raises(ReproError, match="predicate multiset"):
            optimize_by_rules(plan, (DropFilters(),), ctx_for())


class TestRewriteInvariants:
    def _plan(self):
        return plan_for(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 40 WITHIN 10 MINUTES"
        )

    def test_identity_rewrite_is_clean(self):
        plan = self._plan()
        assert check_rewrite_invariants(plan, plan) == []

    def test_lost_predicate_is_ra702(self):
        plan = self._plan()
        stripped = dataclasses.replace(
            plan,
            root=dataclasses.replace(
                plan.root,
                left=dataclasses.replace(plan.root.left, filters=()),
            ),
        )
        codes = {d.code for d in check_rewrite_invariants(plan, stripped)}
        assert codes == {"RA702"}

    def test_swap_without_permute_is_ra701(self):
        plan = plan_for("PATTERN AND(Q a, V b) WITHIN 10 MINUTES")
        swapped = dataclasses.replace(
            plan,
            root=dataclasses.replace(
                plan.root, left=plan.root.right, right=plan.root.left
            ),
        )
        codes = {d.code for d in check_rewrite_invariants(plan, swapped)}
        assert codes == {"RA701"}

    def test_window_resize_is_ra703(self):
        plan = self._plan()
        resized = dataclasses.replace(
            plan,
            root=dataclasses.replace(
                plan.root, window_size=plan.root.window_size * 2
            ),
        )
        codes = {d.code for d in check_rewrite_invariants(plan, resized)}
        assert codes == {"RA703"}

    def test_sliding_to_interval_is_not_a_violation(self):
        # O1 is an execution-strategy change, deliberately outside the
        # RA703 window-extent key.
        plan = self._plan()
        interval = dataclasses.replace(
            plan,
            root=dataclasses.replace(
                plan.root, strategy=WindowStrategy.INTERVAL
            ),
        )
        assert check_rewrite_invariants(plan, interval) == []


class TestCostModels:
    def test_resolve_modes(self):
        assert resolve_cost_model("off") is None
        assert isinstance(resolve_cost_model("static"), StaticCostModel)
        with pytest.raises(ValueError):
            resolve_cost_model("profile")  # needs --profile-from
        with pytest.raises(ValueError):
            resolve_cost_model("aggressive")

    def test_predicate_selectivity_heuristics(self):
        plan = plan_for(
            "PATTERN SEQ(Q a, V b) WHERE a.value = 3 AND a.value > 40 "
            "AND a.value != 9 WITHIN 10 MINUTES"
        )
        by_render = {
            p.render(): predicate_selectivity(p)
            for p in plan.root.left.filters
        }
        assert by_render["a.value = 3"] == EQ_SELECTIVITY
        assert by_render["a.value > 40"] == RANGE_SELECTIVITY
        assert by_render["a.value != 9"] == NEQ_SELECTIVITY

    def test_static_rates_come_from_registry(self):
        plan = plan_for("PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES")
        model = StaticCostModel(TypeRegistry.paper_default())
        # Q emits once a minute in the paper's registry metadata.
        assert model.scan_rate(plan.root.left) == pytest.approx(1 / 60)
        assert StaticCostModel().scan_rate(plan.root.left) is None

    def test_profile_model_prefers_observations(self):
        report = {
            "schema": "repro.metrics/v1",
            "job": {"name": "probe", "events_in": 1200, "pipeline_seconds": 60.0},
            "operators": {
                "filter[a]#3": {
                    "kind": "filter",
                    "events_in": 600,
                    "events_out": 60,
                    "selectivity": 0.1,
                },
                "join[a,b]#7": {
                    "kind": "window-join",
                    "events_in": 660,
                    "events_out": 33,
                    "selectivity": 0.05,
                    "state_peak_bytes": 4096,
                },
            },
        }
        profile = CostProfile.from_report(report)
        assert profile.job_name == "probe"
        assert profile.joins[0].kind == "window-join"
        plan = plan_for(
            "PATTERN SEQ(Q a, V b) WHERE a.value > 40 WITHIN 10 MINUTES"
        )
        model = ProfileCostModel(profile, TypeRegistry.paper_default())
        # Observed: 600 events over 60s of pipeline time.
        assert model.scan_rate(plan.root.left) == pytest.approx(10.0)
        assert model.scan_selectivity(plan.root.left) == pytest.approx(0.1)
        assert model.join_selectivity(plan.root, 0) == pytest.approx(0.05)
        # An unobserved alias has no rate: the registry's event-time
        # rates are a different unit from the profile's wall-clock rates,
        # so falling back would fabricate skew against observed scans.
        assert model.scan_rate(plan.root.right) is None
        # Dimensionless quantities do fall back to the static heuristics.
        assert model.scan_selectivity(plan.root.right) == pytest.approx(1.0)
        assert "probe" in model.describe()
