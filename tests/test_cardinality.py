"""Tests for the cardinality/state abstract interpretation (RA80x).

The same interpreter powers the optimizer's point estimates
(``estimate_plan`` delegates to it) and the verifier's guaranteed
bounds, so besides the negative tests per code this file pins the
point-vs-bounds consistency across the whole catalog.
"""

import math

import pytest

from repro.analysis.cardinality import (
    Interval,
    plan_bounds,
    plan_cardinality_diagnostics,
)
from repro.asp.datamodel import TypeRegistry
from repro.asp.time import minutes
from repro.mapping.advisor import recommend_options
from repro.mapping.optimizer.build import build_plan
from repro.mapping.optimizer.cost import StaticCostModel, estimate_plan
from repro.mapping.optimizer.ir import (
    IterationInfo,
    JoinKind,
    LogicalPlan,
    PlanFeatures,
    StreamScan,
    WindowJoin,
    WindowStrategy,
)
from repro.patterns import CATALOG
from repro.sea.parser import parse_pattern

MIN = minutes(1)


def _iteration_chain_plan(unbounded: bool, window_size: int = 5 * MIN) -> LogicalPlan:
    """A join-mapped ITER chain, hand-built.

    ``build_plan`` forces Kleene+ onto the O2 aggregate mapping precisely
    because the join chain is unbounded, so the RA801 input has to be
    constructed directly — this is the plan shape the guard exists for.
    """
    left = StreamScan("V", "v[1]")
    right = StreamScan("V", "v[2]")
    join = WindowJoin(
        left=left,
        right=right,
        kind=JoinKind.THETA,
        strategy=WindowStrategy.SLIDING,
        ordered=True,
        window_size=window_size,
        window_slide=MIN,
    )
    features = PlanFeatures(
        root_kind="ITER",
        iterations=(
            IterationInfo(
                event_type="V",
                alias="v",
                count=2,
                unbounded=unbounded,
                condition_kind=None,
            ),
        ),
    )
    return LogicalPlan(join, "iter-chain", window_size, MIN, features=features)


class TestRA801:
    def test_unbounded_iteration_join_chain_is_flagged(self):
        diags = plan_cardinality_diagnostics(_iteration_chain_plan(unbounded=True))
        ra801 = [d for d in diags if d.code == "RA801"]
        assert len(ra801) == 1  # one per cause, not one per ancestor
        assert ra801[0].is_error
        assert "Kleene" in ra801[0].message

    def test_bounded_iteration_chain_is_clean(self):
        diags = plan_cardinality_diagnostics(_iteration_chain_plan(unbounded=False))
        assert not any(d.code == "RA801" for d in diags)

    def test_non_evicting_window_is_flagged(self):
        diags = plan_cardinality_diagnostics(
            _iteration_chain_plan(unbounded=False, window_size=0)
        )
        ra801 = [d for d in diags if d.code == "RA801"]
        assert len(ra801) == 1
        assert "never evicts" in ra801[0].message

    def test_unbounded_state_shows_in_bounds(self):
        bounds = plan_bounds(_iteration_chain_plan(unbounded=True), StaticCostModel())
        assert bounds.total_state.hi == math.inf
        # The point estimate stays finite: structural unboundedness is a
        # property of the interval track, not the optimizer's guess.
        assert math.isfinite(bounds.total_cpu)


class TestRA802:
    def test_pure_cross_product_is_flagged(self):
        plan = build_plan(
            parse_pattern("PATTERN AND(Q a, V b) WITHIN 10 MINUTES")
        )
        diags = plan_cardinality_diagnostics(plan)
        ra802 = [d for d in diags if d.code == "RA802"]
        assert ra802 and not ra802[0].is_error
        assert "every in-window pair" in ra802[0].message

    def test_theta_predicate_silences_it(self):
        plan = build_plan(
            parse_pattern("PATTERN AND(Q a, V b) WHERE a.id = b.id WITHIN 10 MINUTES")
        )
        assert not any(
            d.code == "RA802" for d in plan_cardinality_diagnostics(plan)
        )

    def test_sequence_order_silences_it(self):
        plan = build_plan(
            parse_pattern("PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES")
        )
        assert not any(
            d.code == "RA802" for d in plan_cardinality_diagnostics(plan)
        )


class TestRA803:
    PATTERN = "PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES SLIDE 1 MINUTE"

    def test_proven_bound_exceeding_budget(self):
        plan = build_plan(parse_pattern(self.PATTERN))
        diags = plan_cardinality_diagnostics(
            plan, registry=TypeRegistry.paper_default(), state_budget=1e-6
        )
        ra803 = [d for d in diags if d.code == "RA803"]
        assert len(ra803) == 1
        assert "proven state bound" in ra803[0].message

    def test_unproven_bound_names_the_gap(self):
        # Without a registry the input rates are unknown: the upper bound
        # is infinite and the check falls back to the point estimate,
        # saying so explicitly.
        plan = build_plan(parse_pattern(self.PATTERN))
        diags = plan_cardinality_diagnostics(plan, state_budget=1e-6)
        ra803 = [d for d in diags if d.code == "RA803"]
        assert len(ra803) == 1
        assert "unproven" in ra803[0].message

    def test_generous_budget_is_clean(self):
        plan = build_plan(parse_pattern(self.PATTERN))
        diags = plan_cardinality_diagnostics(
            plan, registry=TypeRegistry.paper_default(), state_budget=1e12
        )
        assert not any(d.code == "RA803" for d in diags)

    def test_no_budget_no_finding(self):
        plan = build_plan(parse_pattern(self.PATTERN))
        diags = plan_cardinality_diagnostics(
            plan, registry=TypeRegistry.paper_default()
        )
        assert not any(d.code == "RA803" for d in diags)


class TestPointBoundsConsistency:
    """The optimizer's estimates and the verifier's bounds are one walk."""

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_catalog_point_totals_agree(self, name):
        pattern = CATALOG[name]()
        options = recommend_options(pattern).options
        plan = build_plan(pattern, options)
        model = StaticCostModel(TypeRegistry.paper_default())
        cost = estimate_plan(plan, model)
        bounds = plan_bounds(plan, model)
        assert cost.total_cpu == bounds.total_cpu
        assert dict(cost.nodes).keys() == dict(bounds.nodes).keys()
        for (label, node_cost), (_label, node_bounds) in zip(
            cost.nodes, bounds.nodes
        ):
            assert node_cost == node_bounds.point, label

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_catalog_state_bounds_are_finite_with_registry(self, name):
        pattern = CATALOG[name]()
        options = recommend_options(pattern).options
        plan = build_plan(pattern, options)
        bounds = plan_bounds(plan, StaticCostModel(TypeRegistry.paper_default()))
        assert bounds.total_state.bounded, bounds.total_state.render()
        # Soundness: with known rates the guaranteed upper bound can
        # never undercut the optimizer's point estimate (selectivities
        # only discard, they never create events).
        for label, nb in bounds.nodes:
            assert nb.state.hi >= nb.point.state, label
            assert nb.out_rate.hi >= nb.point.out_rate or not nb.out_rate.bounded, label


class TestInterval:
    def test_malformed_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 1.0)
        with pytest.raises(ValueError):
            Interval(-1.0, 1.0)

    def test_zero_rate_annihilates_unknown(self):
        assert Interval.point(0.0).scaled(math.inf) == Interval.point(0.0)

    def test_unknown_is_unbounded(self):
        assert not Interval.unknown().bounded
        assert Interval.point(3.0).bounded
