"""Tests for the concurrency self-lint (RA82x)."""

from pathlib import Path

from repro.analysis.concurrency import (
    lint_runtime_sources,
    source_concurrency_diagnostics,
)

FIXTURE = Path(__file__).parent / "fixtures" / "concurrency_violations.py"


def codes_of(source):
    return [d.code for d in source_concurrency_diagnostics(source)]


class TestRA821:
    def test_blocking_call_in_async_def(self):
        src = (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n"
        )
        assert codes_of(src) == ["RA821"]

    def test_bare_open_in_async_def(self):
        src = (
            "async def handler(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
        )
        assert codes_of(src) == ["RA821"]

    def test_sync_def_is_fine(self):
        src = (
            "import time\n"
            "def worker():\n"
            "    time.sleep(1)\n"
        )
        assert codes_of(src) == []

    def test_passing_the_callable_is_fine(self):
        # Only *calling* the blocking function inline stalls the loop;
        # handing it to run_in_executor is exactly the prescribed fix.
        src = (
            "import time\n"
            "async def handler(loop):\n"
            "    await loop.run_in_executor(None, time.sleep, 1)\n"
        )
        assert codes_of(src) == []

    def test_syntax_error_is_reported_not_swallowed(self):
        diags = source_concurrency_diagnostics("def broken(:\n")
        assert [d.code for d in diags] == ["RA821"]
        assert "does not parse" in diags[0].message


LOCKED_COUNTER = (
    "import threading\n"
    "class Counter:\n"
    "    def __init__(self):\n"
    "        self.lock = threading.Lock()\n"
    "        self.total = 0\n"
    "    def add(self, n):\n"
    "        with self.lock:\n"
    "            self.total += n\n"
)


class TestRA822:
    def test_unguarded_write_to_lock_owned_attribute(self):
        src = LOCKED_COUNTER + (
            "    def reset(self):\n"
            "        self.total = 0\n"
        )
        assert codes_of(src) == ["RA822"]

    def test_constructor_writes_are_exempt(self):
        # __init__ writes total without the lock; that is
        # construction-before-publication, not a race.
        assert codes_of(LOCKED_COUNTER) == []

    def test_suppression_comment(self):
        src = LOCKED_COUNTER + (
            "    def reset(self):\n"
            "        self.total = 0  # lint: unguarded\n"
        )
        assert codes_of(src) == []

    def test_mutator_method_counts_as_write(self):
        src = (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self.cond = threading.Condition()\n"
            "        self.items = []\n"
            "    def put(self, x):\n"
            "        with self.cond:\n"
            "            self.items.append(x)\n"
            "    def sneak(self, x):\n"
            "        self.items.append(x)\n"
        )
        assert codes_of(src) == ["RA822"]

    def test_attribution_is_file_scoped(self, tmp_path):
        # File A guards `total` with a lock; file B has an unrelated
        # attribute of the same name and no locking at all. A global
        # guard map would flag B — per-file scoping must not.
        (tmp_path / "a.py").write_text(
            LOCKED_COUNTER + "    def reset(self):\n        self.total = 0\n"
        )
        (tmp_path / "b.py").write_text(
            "class Tally:\n"
            "    def bump(self):\n"
            "        self.total = 1\n"
        )
        report = lint_runtime_sources(paths=[tmp_path])
        sources = [d.source for d in report.diagnostics if d.code == "RA822"]
        assert len(sources) == 1 and sources[0].startswith(str(tmp_path / "a.py"))


class TestRA823:
    def test_for_loop_over_set(self):
        src = (
            "def routes(event_types):\n"
            "    for t in set(event_types):\n"
            "        print(t)\n"
        )
        assert codes_of(src) == ["RA823"]

    def test_set_typed_local_is_tracked(self):
        src = (
            "def routes(event_types, streams):\n"
            "    needed = set(event_types)\n"
            "    return {t: streams[t] for t in needed}\n"
        )
        assert codes_of(src) == ["RA823"]

    def test_sorted_wrapper_is_the_fix(self):
        src = (
            "def routes(event_types, streams):\n"
            "    needed = set(event_types)\n"
            "    return {t: streams[t] for t in sorted(needed)}\n"
        )
        assert codes_of(src) == []

    def test_reassignment_clears_the_taint(self):
        src = (
            "def routes(event_types):\n"
            "    needed = set(event_types)\n"
            "    needed = sorted(needed)\n"
            "    return [t for t in needed]\n"
        )
        assert codes_of(src) == []

    def test_set_comprehension_from_set_is_order_free(self):
        src = (
            "def upper(event_types):\n"
            "    return {t.upper() for t in set(event_types)}\n"
        )
        assert codes_of(src) == []

    def test_set_union_expression(self):
        src = (
            "def both(a, b):\n"
            "    return [t for t in set(a) | set(b)]\n"
        )
        assert codes_of(src) == ["RA823"]


class TestShippedTree:
    def test_runtime_sources_are_clean(self):
        # The CI gate `repro lint --self`: our own service + execution
        # core must satisfy the invariants the lint encodes.
        report = lint_runtime_sources()
        assert report.ok(), report.render()

    def test_seeded_fixture_fails(self):
        report = lint_runtime_sources(paths=[FIXTURE])
        assert not report.ok()
        codes = {d.code for d in report.diagnostics}
        assert codes == {"RA821", "RA822", "RA823"}
