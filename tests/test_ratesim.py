"""Tests for the queueing-based load model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.executor import RunResult
from repro.errors import BackpressureError
from repro.runtime.ratesim import PipelineModel, Station, compare_under_load


def run_result(stage_seconds, events=1000):
    return RunResult(
        job_name="j", events_in=events, items_out=0, wall_seconds=1.0,
        peak_state_bytes=0, work_units=0, stage_seconds=stage_seconds,
    )


class TestStation:
    def test_utilization_linear_in_rate(self):
        station = Station("s", service_s=0.001)
        assert station.utilization(500) == pytest.approx(0.5)

    def test_waiting_grows_toward_saturation(self):
        station = Station("s", service_s=0.001)
        low = station.waiting_s(100)
        high = station.waiting_s(900)
        assert 0 < low < high

    def test_waiting_infinite_at_saturation(self):
        station = Station("s", service_s=0.001)
        assert math.isinf(station.waiting_s(1000))
        assert math.isinf(station.waiting_s(2000))

    def test_md1_closed_form(self):
        # rho = 0.5: W = 0.5 * s / (2 * 0.5) = s / 2
        station = Station("s", service_s=0.002)
        assert station.waiting_s(250) == pytest.approx(0.001)


class TestPipelineModel:
    def test_from_run_divides_busy_by_events(self):
        model = PipelineModel.from_run(
            run_result({"filter#1": 0.1, "join#2": 0.4}, events=1000)
        )
        services = {s.name: s.service_s for s in model.stations}
        assert services["filter#1"] == pytest.approx(0.0001)
        assert services["join#2"] == pytest.approx(0.0004)

    def test_bottleneck_and_sustainable_rate(self):
        model = PipelineModel.from_run(
            run_result({"filter#1": 0.1, "join#2": 0.4}, events=1000)
        )
        assert model.bottleneck.name == "join#2"
        assert model.max_sustainable_tps() == pytest.approx(2500.0)

    def test_sustainability_boundary(self):
        model = PipelineModel.from_run(run_result({"op#1": 0.5}, events=1000))
        assert model.is_sustainable(1999)
        assert not model.is_sustainable(2000)

    def test_expected_latency_monotone_in_rate(self):
        model = PipelineModel.from_run(
            run_result({"a#1": 0.2, "b#2": 0.3}, events=1000)
        )
        low = model.expected_latency_s(500)
        high = model.expected_latency_s(3000)
        assert 0 < low < high

    def test_latency_infinite_beyond_saturation(self):
        model = PipelineModel.from_run(run_result({"a#1": 0.5}, events=1000))
        assert math.isinf(model.expected_latency_s(3000))

    def test_windowing_lag_added(self):
        model = PipelineModel.from_run(run_result({"a#1": 0.1}, events=1000))
        base = model.expected_latency_s(100)
        with_lag = model.expected_latency_s(100, windowing_lag_s=2.0)
        assert with_lag == pytest.approx(base + 2.0)

    def test_latency_curve_shapes(self):
        model = PipelineModel.from_run(run_result({"a#1": 0.2}, events=1000))
        curve = model.latency_curve()
        rates = [r for r, _l in curve]
        latencies = [l for _r, l in curve]
        assert rates == sorted(rates)
        assert latencies == sorted(latencies)

    def test_invalid_inputs(self):
        with pytest.raises(BackpressureError):
            PipelineModel.from_run(run_result({}, events=0))
        with pytest.raises(BackpressureError):
            PipelineModel.from_run(run_result({}, events=10))
        model = PipelineModel.from_run(run_result({"a#1": 0.1}))
        with pytest.raises(BackpressureError):
            model.expected_latency_s(0)

    def test_describe(self):
        model = PipelineModel.from_run(run_result({"a#1": 0.1, "b#2": 0.2}))
        text = model.describe()
        assert "bottleneck: b#2" in text

    @settings(max_examples=30, deadline=None)
    @given(
        services=st.lists(
            st.floats(min_value=1e-7, max_value=1e-3), min_size=1, max_size=6
        ),
        utilization=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_property_sustainable_below_saturation(self, services, utilization):
        stage_seconds = {f"s#{i}": s * 1000 for i, s in enumerate(services)}
        model = PipelineModel.from_run(run_result(stage_seconds, events=1000))
        rate = utilization * model.max_sustainable_tps()
        if rate <= 0:
            return
        assert model.is_sustainable(rate)
        assert math.isfinite(model.expected_latency_s(rate))


class TestPaperShape:
    def test_concentrated_work_saturates_before_decomposed(self):
        """The mechanism behind the paper's Figure 3b latency story:
        identical total work, concentrated in one station vs spread over
        four — the monolith saturates at a quarter of the rate and its
        latency diverges first."""
        total_busy = 0.8
        fcep = run_result({"cep#1": total_busy}, events=1000)
        fasp = run_result(
            {f"op#{i}": total_busy / 4 for i in range(4)}, events=1000
        )
        # FCEP saturates at 1 / (0.8 ms) = 1250 tps; FASP at 5000 tps.
        rates = compare_under_load(fcep, fasp, offered_tps=1300)
        assert math.isinf(rates["FCEP"])      # beyond FCEP's saturation
        assert math.isfinite(rates["FASP"])    # well within FASP's
        fcep_model = PipelineModel.from_run(fcep)
        fasp_model = PipelineModel.from_run(fasp)
        assert fasp_model.max_sustainable_tps() == pytest.approx(
            4 * fcep_model.max_sustainable_tps()
        )

    def test_real_runs_feed_the_model(self):
        """End to end with measured runs: the FASP pipeline sustains at
        least the FCEP rate for the same pattern and workload."""
        from repro.experiments.common import Scale, qnv_workload, seq2_pattern
        from repro.runtime.harness import run_fasp, run_fcep

        streams = qnv_workload(Scale(events=4000, sensors=2, seed=5))
        pattern = seq2_pattern(0.05, window_minutes=10)
        _m1, _s1, fcep_result = run_fcep(pattern, streams)
        _m2, _s2, fasp_result = run_fasp(pattern, streams)
        fcep_model = PipelineModel.from_run(fcep_result)
        fasp_model = PipelineModel.from_run(fasp_result)
        assert fasp_model.max_sustainable_tps() >= fcep_model.max_sustainable_tps() * 0.8
        # Latency at half of FCEP's saturation: both finite, FASP's lower
        # or comparable.
        rate = 0.5 * fcep_model.max_sustainable_tps()
        fcep_latency = fcep_model.expected_latency_s(rate)
        fasp_latency = fasp_model.expected_latency_s(rate)
        assert math.isfinite(fcep_latency) and math.isfinite(fasp_latency)
