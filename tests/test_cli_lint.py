"""CLI coverage for ``repro lint`` (the CI `lint-plans` entry point)."""

import json

from repro.cli import main

BAD_REF = "PATTERN SEQ(Q a, V b) WHERE a.bogus = b.id WITHIN 15 MINUTES"
KEYED = "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 10 MINUTES"
UNKEYED = "PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES"


class TestLintCli:
    def test_catalog_lints_clean(self, capsys):
        rc = main(["lint", "--catalog"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out and "OK" in out

    def test_single_pattern_ok(self, capsys):
        rc = main(["lint", "-p", KEYED])
        out = capsys.readouterr().out
        assert rc == 0
        assert "linted 1 plan(s)" in out

    def test_open_schema_warning_passes_unless_strict(self, capsys):
        rc = main(["lint", "-p", BAD_REF])
        out = capsys.readouterr().out
        assert rc == 0
        assert "RA101" in out  # surfaced as a warning

    def test_strict_promotes_warnings_to_failure(self, capsys):
        rc = main(["lint", "--strict", "-p", BAD_REF])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RA101" in out and "FAIL" in out

    def test_sharded_proof_fails_without_keys(self, capsys):
        rc = main(["lint", "--sharded", "-p", UNKEYED])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RA401" in out or "RA403" in out

    def test_sharded_proof_passes_with_o3(self, capsys):
        rc = main(["lint", "--sharded", "--o3", "id", "-p", KEYED])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out

    def test_json_output_is_machine_readable(self, capsys):
        rc = main(["lint", "--json", "-p", BAD_REF])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert isinstance(payload, list) and len(payload) == 1
        codes = [d["code"] for d in payload[0]["diagnostics"]]
        assert "RA101" in codes

    def test_stream_data_closes_the_schema(self, tmp_path, capsys):
        rc = main(["generate", "--out", str(tmp_path), "--segments", "1",
                   "--minutes", "30"])
        assert rc == 0
        capsys.readouterr()
        rc = main([
            "lint", "-p", BAD_REF,
            "--stream", f"Q={tmp_path}/Q.csv",
            "--stream", f"V={tmp_path}/V.csv",
        ])
        out = capsys.readouterr().out
        # with real data the inferred schema is closed: warning becomes error
        assert rc == 1
        assert "error[RA101]" in out
