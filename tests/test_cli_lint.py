"""CLI coverage for ``repro lint`` (the CI `lint-plans` entry point)."""

import json
from pathlib import Path

from repro.cli import main

FIXTURE = Path(__file__).parent / "fixtures" / "concurrency_violations.py"

BAD_REF = "PATTERN SEQ(Q a, V b) WHERE a.bogus = b.id WITHIN 15 MINUTES"
KEYED = "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 10 MINUTES"
UNKEYED = "PATTERN SEQ(Q a, V b) WITHIN 10 MINUTES"


class TestLintCli:
    def test_catalog_lints_clean(self, capsys):
        rc = main(["lint", "--catalog"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out and "OK" in out

    def test_single_pattern_ok(self, capsys):
        rc = main(["lint", "-p", KEYED])
        out = capsys.readouterr().out
        assert rc == 0
        assert "linted 1 plan(s)" in out

    def test_open_schema_warning_passes_unless_strict(self, capsys):
        rc = main(["lint", "-p", BAD_REF])
        out = capsys.readouterr().out
        assert rc == 0
        assert "RA101" in out  # surfaced as a warning

    def test_strict_promotes_warnings_to_failure(self, capsys):
        rc = main(["lint", "--strict", "-p", BAD_REF])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RA101" in out and "FAIL" in out

    def test_sharded_proof_fails_without_keys(self, capsys):
        rc = main(["lint", "--sharded", "-p", UNKEYED])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RA401" in out or "RA403" in out

    def test_sharded_proof_passes_with_o3(self, capsys):
        rc = main(["lint", "--sharded", "--o3", "id", "-p", KEYED])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out

    def test_json_output_is_machine_readable(self, capsys):
        rc = main(["lint", "--json", "-p", BAD_REF])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert isinstance(payload, list) and len(payload) == 1
        codes = [d["code"] for d in payload[0]["diagnostics"]]
        assert "RA101" in codes

    def test_stream_data_closes_the_schema(self, tmp_path, capsys):
        rc = main(["generate", "--out", str(tmp_path), "--segments", "1",
                   "--minutes", "30"])
        assert rc == 0
        capsys.readouterr()
        rc = main([
            "lint", "-p", BAD_REF,
            "--stream", f"Q={tmp_path}/Q.csv",
            "--stream", f"V={tmp_path}/V.csv",
        ])
        out = capsys.readouterr().out
        # with real data the inferred schema is closed: warning becomes error
        assert rc == 1
        assert "error[RA101]" in out

    def test_state_budget_flag_warns(self, capsys):
        rc = main(["lint", "-p", KEYED, "--state-budget", "0.000001"])
        out = capsys.readouterr().out
        assert rc == 0  # RA803 is a warning unless --strict
        assert "RA803" in out


class TestSharingMode:
    def test_catalog_sharing_proof(self, capsys):
        rc = main(["lint", "--sharing", "--catalog"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "shared prefix group(s)" in out
        assert "subsumed" in out  # the catalog proves a non-trivial share
        assert "RA811" in out  # and reports at least one near-miss

    def test_sharing_needs_two_queries(self, capsys):
        rc = main(["lint", "--sharing", "-p", KEYED])
        err = capsys.readouterr().err
        assert rc == 2
        assert "at least two queries" in err

    def test_sharing_report_file(self, tmp_path, capsys):
        report_path = tmp_path / "sharing.json"
        rc = main(["lint", "--sharing", "--catalog", "--report", str(report_path)])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(report_path.read_text())
        assert payload["kind"] == "repro.lint/v1"
        assert payload["mode"] == "sharing" and payload["ok"]
        groups = [g for r in payload["reports"] for g in r.get("groups", [])]
        assert any(g["level"] == "subsumed" for g in groups)


class TestSelfMode:
    def test_shipped_tree_is_clean(self, capsys):
        rc = main(["lint", "--self"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "source file set" in out and "OK" in out

    def test_seeded_fixture_fails(self, capsys):
        rc = main(["lint", "--self", "--self-path", str(FIXTURE)])
        out = capsys.readouterr().out
        assert rc == 1
        for code in ("RA821", "RA822", "RA823"):
            assert code in out


class TestGithubFormat:
    def test_annotations_are_workflow_commands(self, capsys):
        rc = main(["lint", "--format", "github", "-p", BAD_REF])
        out = capsys.readouterr().out
        assert rc == 0
        assert "::warning " in out and "title=RA101" in out

    def test_self_annotations_carry_file_and_line(self, capsys):
        rc = main(["lint", "--self", "--format", "github",
                   "--self-path", str(FIXTURE)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "::error file=" in out
        assert "concurrency_violations.py" in out and ",line=" in out
