"""Batched + fused execution equivalence (PR 5).

The micro-batched path (``batch_size > 1``) and compiled stateless
fusion (``fusion=True``) are pure execution-strategy changes: for every
catalog query they must emit the exact same match multiset as the
per-event reference path, with identical ``events_in``/``items_out``
and identical join-level ``pairs_emitted``. Fused segments must also
preserve exact per-stage metrics, checkpoint/recovery must stay
byte-identical under batching, and the fan-out framing fix must keep
channel frame totals consistent between the two drives.
"""

from hypothesis import given, settings as hsettings, strategies as st

from repro.asp.datamodel import Event
from repro.asp.operators.sink import CollectSink
from repro.asp.runtime import FaultPlan, FaultSpec
from repro.asp.runtime.fault.chaos import (
    _fresh_query,
    _streams_for,
    canonical_match_bytes,
)
from repro.asp.stream import StreamEnvironment
from repro.mapping.advisor import recommend_options
from repro.patterns import CATALOG

SCALE_EVENTS = 900
SCALE_SENSORS = 3
SEED = 11

#: Batched configurations exercised against the per-event reference:
#: tiny odd batches (boundary churn), a production-like size with
#: fusion, fusion alone, and batches larger than the whole stream.
BATCH_CONFIGS = [(7, False), (64, True), (1, True), (1024, True)]


def _catalog_runs(name):
    pattern = CATALOG[name]()
    options = recommend_options(pattern).options
    streams = _streams_for(pattern, SCALE_EVENTS, SCALE_SENSORS, SEED)

    def run(batch_size, fusion):
        query = _fresh_query(pattern, streams, options)
        result = query.execute(batch_size=batch_size, fusion=fusion)
        pairs = sum(
            getattr(node.payload, "pairs_emitted", 0)
            for node in query.env.flow.nodes.values()
        )
        return result, canonical_match_bytes(query.matches()), pairs

    return run


def test_catalog_batched_matches_serial_reference():
    failures = []
    for name in sorted(CATALOG):
        run = _catalog_runs(name)
        ref, ref_bytes, ref_pairs = run(1, False)
        for batch_size, fusion in BATCH_CONFIGS:
            res, out_bytes, pairs = run(batch_size, fusion)
            label = f"{name} bs={batch_size} fusion={fusion}"
            if out_bytes != ref_bytes:
                failures.append(f"{label}: match bytes differ")
            if res.events_in != ref.events_in:
                failures.append(
                    f"{label}: events_in {res.events_in} != {ref.events_in}"
                )
            if res.items_out != ref.items_out:
                failures.append(
                    f"{label}: items_out {res.items_out} != {ref.items_out}"
                )
            if pairs != ref_pairs:
                failures.append(f"{label}: pairs_emitted {pairs} != {ref_pairs}")
            if res.failed:
                failures.append(f"{label}: run failed: {res.failure}")
    assert not failures, "\n".join(failures)


def test_batched_channel_totals_match_serial():
    """Frame totals are drive-independent (only peak_burst may differ)."""
    name = "pollution-any-particulate"
    run = _catalog_runs(name)
    ref, _, _ = run(1, False)
    batched, _, _ = run(64, True)
    ref_channels = ref.metadata["channels"]
    batched_channels = batched.metadata["channels"]
    assert batched_channels["item_frames"] == ref_channels["item_frames"]
    assert batched_channels["watermark_frames"] == ref_channels["watermark_frames"]


def _fanout_env(events, n_consumers):
    """One source fanning out to several filters (the PR 5 framing fix)."""
    env = StreamEnvironment("fanout")
    src = env.from_events(events, event_type="A")
    doubled = src.flat_map(
        lambda e: [e, Event(e.event_type, ts=e.ts, id=e.id, value=e.value + 0.5)],
        name="dup",
    )
    sinks = []
    for i in range(n_consumers):
        branch = doubled.filter(lambda e: True, name=f"branch{i}")
        sinks.append(branch.sink(CollectSink()))
    return env, sinks


def test_fanout_framing_counts_delivered_items():
    from repro.asp.runtime import ExecutionSettings
    from repro.asp.runtime.backends.serial import SerialJob

    events = [Event("A", ts=i * 1000, id=1, value=float(i)) for i in range(40)]
    env, sinks = _fanout_env(events, n_consumers=2)
    job = SerialJob(env.flow, ExecutionSettings())
    result = job.run()
    # The flat_map doubles the stream, so each fan-out channel carries
    # 80 items and must record exactly 80 item frames — one per
    # delivered item, not one per process() call.
    fanout = [
        c
        for group in job.channels.values()
        for c in group
        if c.source_name.startswith("dup") and c.target_name.startswith("branch")
    ]
    assert len(fanout) == 2
    for channel in fanout:
        assert channel.items == 2 * len(events), channel.target_name
    for sink in sinks:
        assert sink.count == 2 * len(events)

    # Batched drive: identical totals, aggregate and per-edge.
    env2, sinks2 = _fanout_env(events, n_consumers=2)
    batched = env2.execute(batch_size=16, fusion=True)
    assert (
        batched.metadata["channels"]["item_frames"]
        == result.metadata["channels"]["item_frames"]
    )
    assert (
        batched.metadata["channels"]["watermark_frames"]
        == result.metadata["channels"]["watermark_frames"]
    )
    assert [s.items for s in sinks2] == [s.items for s in sinks]


def _stage_counts(result):
    ops = result.metrics["operators"]
    return {
        scope: (m["events_in"]["value"], m["events_out"]["value"])
        for scope, m in ops.items()
    }


def _chain_env(values, batch_size, fusion):
    events = [
        Event("A", ts=i * 1000, id=1 + (i % 3), value=v)
        for i, v in enumerate(values)
    ]
    env = StreamEnvironment("chain")
    src = env.from_events(events, event_type="A")
    stage = src.filter(lambda e: e.value >= 0, name="nonneg")
    stage = stage.map(
        lambda e: Event(e.event_type, ts=e.ts, id=e.id, value=e.value * 2.0),
        name="double",
    )
    stage = stage.filter(lambda e: e.value < 120, name="cap")
    sink = stage.sink(CollectSink())
    result = env.execute(batch_size=batch_size, fusion=fusion)
    return result, sink


@hsettings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), max_size=120
    ),
    batch_size=st.sampled_from([1, 3, 17, 256]),
)
def test_fused_stage_metrics_equal_unfused(values, batch_size):
    """Fusing a filter->map->filter chain never changes per-stage counts."""
    fused_result, fused_sink = _chain_env(values, batch_size, fusion=True)
    plain_result, plain_sink = _chain_env(values, 1, fusion=False)
    assert [e.value for e in fused_sink.items] == [
        e.value for e in plain_sink.items
    ]
    fused = _stage_counts(fused_result)
    plain = _stage_counts(plain_result)
    assert fused == plain
    if len(values) > 0:
        assert fused_result.metadata["fused_segments"] == ["nonneg+double+cap"]


def test_fused_segment_composition_and_busy_attribution():
    result, _ = _chain_env([float(i) for i in range(200)], 32, fusion=True)
    assert result.metadata["fused_segments"] == ["nonneg+double+cap"]
    # Busy time distributed back onto constituent stages, never negative.
    for scope in ("nonneg#", "double#", "cap#"):
        matching = [s for s in result.stage_seconds if s.startswith(scope)]
        assert matching, scope
        assert all(result.stage_seconds[s] >= 0 for s in matching)


def test_chaos_recovery_byte_identical_under_batching():
    """Crashes cut at batch boundaries; recovery replays exactly."""
    pattern = CATALOG["traffic-congestion"]()
    options = recommend_options(pattern).options
    streams = _streams_for(pattern, 1500, SCALE_SENSORS, SEED)

    clean = _fresh_query(pattern, streams, options)
    clean.execute()
    clean_bytes = canonical_match_bytes(clean.matches())

    total = sum(len(evs) for evs in streams.values())
    offsets = (max(150, total // 4), max(300, total // 2))
    plan = FaultPlan(tuple(FaultSpec("crash", at_event=o) for o in offsets))
    for batch_size, fusion in ((64, True), (7, False)):
        query = _fresh_query(pattern, streams, options)
        result = query.execute(
            checkpoint_interval=100,
            fault_plan=plan,
            batch_size=batch_size,
            fusion=fusion,
        )
        assert not result.failed, result.failure
        recovery = result.metrics["recovery"]
        assert recovery["recovered"]
        assert len(recovery["restarts"]) == len(offsets)
        assert canonical_match_bytes(query.matches()) == clean_bytes


def test_sharded_backend_runs_batched_per_shard():
    from repro.asp.runtime import ShardedBackend

    pattern = CATALOG["traffic-congestion"]()
    keyed = recommend_options(pattern, partition_attribute="id").options
    streams = _streams_for(pattern, SCALE_EVENTS, SCALE_SENSORS, SEED)

    serial = _fresh_query(pattern, streams, keyed)
    serial.execute()
    serial_bytes = canonical_match_bytes(serial.matches())

    query = _fresh_query(pattern, streams, keyed)
    backend = ShardedBackend(shards=2, key_attribute="id", mode="inline")
    result = query.execute(backend=backend, batch_size=64, fusion=True)
    assert not result.failed, result.failure
    assert canonical_match_bytes(query.matches()) == serial_bytes
