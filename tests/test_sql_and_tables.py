"""Tests for the SQL rendering (paper Listings 4/6/8) and Tables 1/2."""


from repro.experiments.tables import render_table, table1_rows, table2_rows
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.rules import build_plan
from repro.mapping.sql import render_sql
from repro.sea.parser import parse_pattern


def sql_of(text, options=None):
    pattern = parse_pattern(text)
    return render_sql(build_plan(pattern, options or TranslationOptions()))


class TestSqlRendering:
    def test_and_query_matches_listing4(self):
        sql = sql_of("PATTERN AND(T1 e1, T2 e2) WITHIN 15 MINUTES")
        assert "SELECT *" in sql
        assert "Stream T1 e1" in sql and "Stream T2 e2" in sql
        assert "Window [Range 15 MIN" in sql

    def test_seq_query_matches_listing8(self):
        sql = sql_of("PATTERN SEQ(T1 e1, T2 e2, T3 e3) WITHIN 15 MINUTES")
        assert "e1.ts < e2.ts" in sql
        assert "e2.ts < e3.ts" in sql

    def test_predicates_rendered(self):
        sql = sql_of(
            "PATTERN SEQ(T1 e1, T2 e2) WHERE e1.value > 10 WITHIN 15 MINUTES"
        )
        assert "e1.value > 10" in sql

    def test_nseq_renders_not_exists_subquery(self):
        sql = sql_of("PATTERN SEQ(T1 e1, !T2 e2, T3 e3) WITHIN 15 MINUTES")
        assert "NOT EXISTS" in sql
        assert "e1.ts < e2.ts" in sql

    def test_equi_keys_rendered(self):
        sql = sql_of(
            "PATTERN SEQ(T1 e1, T2 e2) WHERE e1.id = e2.id WITHIN 15 MINUTES"
        )
        assert "e1.id = e2.id" in sql

    def test_o1_noted(self):
        sql = sql_of("PATTERN SEQ(T1 e1, T2 e2) WITHIN 15 MINUTES", TranslationOptions.o1())
        assert "O1" in sql

    def test_o2_renders_group_by_having(self):
        sql = sql_of("PATTERN ITER3(V v) WITHIN 15 MINUTES", TranslationOptions.o2())
        assert "count(*)" in sql
        assert "HAVING n >= 3" in sql

    def test_union_rendered_for_or(self):
        sql = sql_of("PATTERN OR(T1 e1, T2 e2) WITHIN 15 MINUTES")
        assert "UNION ALL" in sql

    def test_ms_window_granularity(self):
        sql = sql_of("PATTERN SEQ(T1 e1, T2 e2) WITHIN 90 SECONDS SLIDE 10 SECONDS")
        assert "MS" in sql


class TestTable1:
    def test_rows_cover_all_operators(self):
        rows = table1_rows()
        operators = {r["operator"] for r in rows}
        assert {"Conjunction (AND)", "Sequence (SEQ)", "Disjunction (OR)",
                "Iteration (ITER^m)", "Negated Sequence (NSEQ)"} <= operators

    def test_mappings_match_paper(self):
        rows = {(r["operator"], r["optimization"]): r["mapping"] for r in table1_rows()}
        assert rows[("Conjunction (AND)", "-")] == "T × T"
        assert rows[("Conjunction (AND)", "O3")] == "T ⋈c T"
        assert rows[("Sequence (SEQ)", "-")] == "T ⋈θ T"
        assert rows[("Disjunction (OR)", "-")] == "T1 ∪ T2"
        assert rows[("Iteration (ITER^m)", "-")] == "T ⋈θ T ⋈θ T"
        assert rows[("Iteration (ITER^m)", "O2")] == "γ_count(*)(T)"
        assert rows[("Negated Sequence (NSEQ)", "-")] == "UDF(T1 ∪ T2) ⋈θ T3"


class TestTable2:
    def test_matrix_matches_paper(self):
        rows = {(r["engine"], r["policy"]): r for r in table2_rows()}
        fasp = rows[("FASP", "stam")]
        assert all(fasp[op] for op in ("AND", "SEQ", "OR", "ITER", "NSEQ"))
        for policy in ("stam", "stnm", "sc"):
            fcep = rows[("FCEP", policy)]
            assert not fcep["AND"]
            assert not fcep["OR"]
            assert fcep["SEQ"] and fcep["ITER"] and fcep["NSEQ"]

    def test_render_table(self):
        text = render_table(table2_rows(), "Table 2")
        assert "Table 2" in text
        assert "✓" in text and "✗" in text

    def test_render_empty(self):
        assert "(empty)" in render_table([], "T")
