"""Tests for shared multi-query execution (paper Section 6 capability)."""

import random

import pytest

from repro.asp.datamodel import Event
from repro.asp.operators.filter import FilterOperator
from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.errors import TranslationError
from repro.mapping.multiquery import MultiQuery, translate_many
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern

MIN = minutes(1)


def make_stream(seed, n=60):
    rng = random.Random(seed)
    return [
        Event(rng.choice(["Q", "V", "W"]), ts=i * MIN, id=rng.randint(1, 3),
              value=round(rng.uniform(0, 100), 3))
        for i in range(n)
    ]


def sources_for(events):
    by_type = {}
    for e in events:
        by_type.setdefault(e.event_type, []).append(e)
    return {t: ListSource(v, name=t, event_type=t) for t, v in by_type.items()}


PATTERNS = [
    "PATTERN SEQ(Q a, V b) WHERE a.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
    "PATTERN SEQ(Q a, W c) WHERE a.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE",
    "PATTERN ITER2(V v) WITHIN 5 MINUTES SLIDE 1 MINUTE",
]


class TestTranslateMany:
    def test_batch_matches_equal_individual_runs(self):
        events = make_stream(3)
        patterns = [parse_pattern(t, name=f"p{i}") for i, t in enumerate(PATTERNS)]
        multi = translate_many(patterns, sources_for(events))
        multi.execute()
        for index, text in enumerate(PATTERNS):
            single = translate(parse_pattern(text), sources_for(events))
            single.execute()
            got = {m.dedup_key() for m in multi.matches_of(index)}
            want = {m.dedup_key() for m in single.matches()}
            assert got == want, text

    def test_identical_filters_shared(self):
        """The two patterns filter Q identically: one scan pipeline."""
        events = make_stream(4)
        patterns = [parse_pattern(t, name=f"p{i}") for i, t in enumerate(PATTERNS[:2])]
        multi = translate_many(patterns, sources_for(events))
        # scans: Q-filtered (shared), V (bare), W (bare) => 3 pipelines
        assert multi.num_shared_scans == 3
        filters = [
            n.operator
            for n in multi.env.flow.operator_nodes()
            if isinstance(n.operator, FilterOperator)
            and n.operator.name.startswith("filter[")
        ]
        assert len(filters) == 1  # the Q predicate compiled once

    def test_one_source_node_per_type(self):
        events = make_stream(5)
        patterns = [parse_pattern(t, name=f"p{i}") for i, t in enumerate(PATTERNS)]
        multi = translate_many(patterns, sources_for(events))
        source_names = [n.name for n in multi.env.flow.source_nodes()]
        assert len(source_names) == len(set(source_names)) == 3

    def test_single_pass_processes_input_once(self):
        events = make_stream(6)
        patterns = [parse_pattern(t, name=f"p{i}") for i, t in enumerate(PATTERNS)]
        multi = translate_many(patterns, sources_for(events))
        result = multi.execute()
        assert result.events_in == len(events)

    def test_per_pattern_options(self):
        events = make_stream(7)
        patterns = [parse_pattern(t, name=f"p{i}") for i, t in enumerate(PATTERNS[:2])]
        multi = translate_many(
            patterns,
            sources_for(events),
            options=[TranslationOptions.fasp(), TranslationOptions.o1()],
        )
        multi.execute()
        assert multi.matches_of(0) is not None

    def test_option_count_mismatch_rejected(self):
        patterns = [parse_pattern(PATTERNS[0])]
        with pytest.raises(TranslationError, match="option sets"):
            translate_many(patterns, {}, options=[TranslationOptions.fasp()] * 2)

    def test_empty_batch_rejected(self):
        with pytest.raises(TranslationError, match="at least one"):
            translate_many([], {})

    def test_custom_sinks(self):
        from repro.asp.operators.sink import CollectSink

        events = make_stream(8)
        patterns = [parse_pattern(PATTERNS[0], name="p0")]
        sink = CollectSink("mine")
        multi = translate_many(patterns, sources_for(events), sinks=[sink])
        multi.execute()
        assert multi.sinks[0] is sink

    def test_sink_count_mismatch_rejected(self):
        from repro.asp.operators.sink import CollectSink

        patterns = [parse_pattern(PATTERNS[0])]
        with pytest.raises(TranslationError, match="sinks"):
            translate_many(patterns, {}, sinks=[CollectSink(), CollectSink()])

    def test_explain(self):
        events = make_stream(9)
        patterns = [parse_pattern(t, name=f"p{i}") for i, t in enumerate(PATTERNS[:2])]
        multi = translate_many(patterns, sources_for(events))
        text = multi.explain()
        assert "MultiQuery over 2 patterns" in text


class TestReturnProjection:
    def test_star_concatenates_aliased_attributes(self):
        events = make_stream(11)
        query = translate(
            parse_pattern(
                "PATTERN SEQ(Q a, V b) WITHIN 6 MINUTES SLIDE 1 MINUTE RETURN *"
            ),
            sources_for(events),
        )
        query.execute()
        rows = query.projected_matches()
        if rows:
            assert "a.value" in rows[0] and "b.ts" in rows[0]
            assert "ts_b" in rows[0] and "ts_e" in rows[0]

    def test_explicit_projection(self):
        events = make_stream(12)
        query = translate(
            parse_pattern(
                "PATTERN SEQ(Q a, V b) WITHIN 6 MINUTES SLIDE 1 MINUTE "
                "RETURN a.value, b.ts"
            ),
            sources_for(events),
        )
        query.execute()
        rows = query.projected_matches()
        assert rows, "expected at least one match for this seed"
        assert set(rows[0]) == {"a.value", "b.ts", "ts_b", "ts_e"}

    def test_unknown_alias_in_return_rejected(self):
        events = make_stream(13)
        query = translate(
            parse_pattern(
                "PATTERN SEQ(Q a, V b) WITHIN 6 MINUTES SLIDE 1 MINUTE "
                "RETURN a.value"
            ),
            sources_for(events),
        )
        query.execute()
        query.projected_matches()  # valid alias: fine
        # Force a bad clause to exercise the error path.
        from repro.sea.ast import ReturnClause
        import dataclasses

        query.pattern = dataclasses.replace(
            query.pattern, returns=ReturnClause(("nope.value",))
        )
        if query.matches():
            with pytest.raises(TranslationError, match="unknown alias"):
                query.projected_matches()
