"""Optimizer output-equivalence gates (PR 6).

The exact-output contract: for every catalog query, translating with
``optimize="static"`` or a metrics-fed profile model must produce
byte-identical match sets to the unoptimized plan — including under the
micro-batched engine and under crash/recovery from checkpoints. A
hypothesis property extends the guarantee beyond the catalog: any
subsequence of the default rule set, applied to randomly drawn patterns
under randomly skewed cost models, preserves equivalence.
"""

from hypothesis import given, settings, strategies as st

from repro.asp.datamodel import TypeRegistry
from repro.asp.operators.source import ListSource
from repro.asp.runtime import FaultPlan, FaultSpec
from repro.asp.runtime.fault.chaos import (
    _streams_for,
    canonical_match_bytes,
)
from repro.asp.runtime.observability.costprofile import CostProfile
from repro.asp.runtime.observability.report import run_report
from repro.cli import main
from repro.mapping.optimizer.cost import ProfileCostModel, StaticCostModel
from repro.mapping.optimizer.rules import DEFAULT_RULES
from repro.mapping.translator import translate
from repro.patterns import CATALOG
from repro.sea.parser import parse_pattern

SCALE_EVENTS = 600
SCALE_SENSORS = 3
SEED = 23

REGISTRY = TypeRegistry.paper_default()


def _query(pattern, streams, **kwargs):
    sources = {
        t: ListSource(list(evs), name=f"src[{t}]", event_type=t)
        for t, evs in streams.items()
    }
    return translate(pattern, sources, analyze=False, **kwargs)


def _run_bytes(pattern, streams, **kwargs):
    query = _query(pattern, streams, **kwargs)
    result = query.execute()
    return canonical_match_bytes(query.matches()), result, query


def test_catalog_static_optimizer_is_byte_identical():
    failures = []
    fired_any = False
    for name in sorted(CATALOG):
        pattern = CATALOG[name]()
        streams = _streams_for(pattern, SCALE_EVENTS, SCALE_SENSORS, SEED)
        ref_bytes, _, _ = _run_bytes(pattern, streams)
        opt_bytes, _, query = _run_bytes(
            pattern, streams, optimize="static", registry=REGISTRY
        )
        if opt_bytes != ref_bytes:
            failures.append(f"{name}: static-optimized matches differ")
        fired_any = fired_any or bool(query.plan.trace.fired_rules)
    assert not failures, "\n".join(failures)
    # The gate must not pass vacuously: the static model fires at least
    # O1 on the catalog's wide-window queries.
    assert fired_any


def test_catalog_profile_optimizer_is_byte_identical():
    failures = []
    for name in sorted(CATALOG):
        pattern = CATALOG[name]()
        streams = _streams_for(pattern, SCALE_EVENTS, SCALE_SENSORS, SEED)
        ref_bytes, ref_result, _ = _run_bytes(pattern, streams)
        # Feed the first run's own metrics report back into the planner.
        profile = CostProfile.from_report(run_report(ref_result))
        model = ProfileCostModel(profile, REGISTRY)
        opt_bytes, _, query = _run_bytes(pattern, streams, cost_model=model)
        if opt_bytes != ref_bytes:
            failures.append(f"{name}: profile-optimized matches differ")
        if query.plan.trace is None:
            failures.append(f"{name}: optimized plan lost its rule trace")
    assert not failures, "\n".join(failures)


def test_optimized_plan_survives_batching_and_fusion():
    name = "vehicle-pollution-alert"
    pattern = CATALOG[name]()
    streams = _streams_for(pattern, SCALE_EVENTS, SCALE_SENSORS, SEED)
    ref_bytes, _, _ = _run_bytes(pattern, streams)
    query = _query(pattern, streams, optimize="static", registry=REGISTRY)
    assert query.plan.trace.fired_rules  # O1 fires on the 30-minute window
    result = query.execute(batch_size=64, fusion=True)
    assert not result.failed
    assert canonical_match_bytes(query.matches()) == ref_bytes


def test_optimized_plan_survives_crash_recovery():
    name = "traffic-congestion"
    pattern = CATALOG[name]()
    streams = _streams_for(pattern, SCALE_EVENTS, SCALE_SENSORS, SEED)
    ref_bytes, _, _ = _run_bytes(pattern, streams)
    query = _query(pattern, streams, optimize="static", registry=REGISTRY)
    crash = FaultPlan((FaultSpec("crash", at_event=SCALE_EVENTS // 3),))
    result = query.execute(checkpoint_interval=50, fault_plan=crash)
    assert not result.failed
    assert result.metrics["recovery"]["recovered"] == 1
    assert canonical_match_bytes(query.matches()) == ref_bytes


PROPERTY_PATTERNS = [
    "PATTERN SEQ(Q a, V b) WHERE a.value > 40 WITHIN 7 MINUTES SLIDE 1 MINUTE",
    "PATTERN AND(Q a, V b) WITHIN 4 MINUTES SLIDE 1 MINUTE",
    "PATTERN AND(Q a, V b) WHERE a.id = b.id WITHIN 40 MINUTES SLIDE 1 MINUTE",
    "PATTERN OR(Q a, V b) WHERE a.value > 30 AND b.value > 30 "
    "WITHIN 4 MINUTES SLIDE 1 MINUTE",
    "PATTERN SEQ(Q a, V b, W c) WITHIN 35 MINUTES SLIDE 1 MINUTE",
    "PATTERN ITER2(V v) WITHIN 5 MINUTES SLIDE 1 MINUTE",
]


class SkewedModel(StaticCostModel):
    """Registry-free model with drawn per-type rates, to push the
    cost-driven rules (reorder, O1) into firing on arbitrary sides."""

    name = "skewed"

    def __init__(self, rates):
        super().__init__()
        self.rates = rates

    def scan_rate(self, scan):
        return self.rates.get(scan.event_type)


@st.composite
def optimizer_cases(draw):
    pattern_text = draw(st.sampled_from(PROPERTY_PATTERNS))
    mask = draw(
        st.lists(
            st.booleans(), min_size=len(DEFAULT_RULES), max_size=len(DEFAULT_RULES)
        )
    )
    rules = tuple(r for r, keep in zip(DEFAULT_RULES, mask) if keep)
    rates = {
        t: draw(st.sampled_from([0.1, 1.0, 10.0, None])) for t in ("Q", "V", "W")
    }
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return pattern_text, rules, rates, seed


@given(optimizer_cases())
@settings(max_examples=20, deadline=None)
def test_rule_subsequences_preserve_equivalence(case):
    import random

    from repro.asp.datamodel import Event

    pattern_text, rules, rates, seed = case
    pattern = parse_pattern(pattern_text, name="prop")
    rng = random.Random(seed)
    events = [
        Event(
            rng.choice(("Q", "V", "W")),
            ts=i * 60_000,
            id=rng.choice((1, 2)),
            value=round(rng.uniform(0, 100), 3),
        )
        for i in range(60)
    ]
    streams = {}
    for event in events:
        streams.setdefault(event.event_type, []).append(event)
    for t in pattern.distinct_event_types():
        streams.setdefault(t, [])
    ref_bytes, _, _ = _run_bytes(pattern, streams)
    opt_bytes, _, _ = _run_bytes(
        pattern, streams, cost_model=SkewedModel(rates), rules=rules
    )
    assert opt_bytes == ref_bytes


def test_multiquery_static_optimizer_is_byte_identical():
    from repro.mapping.multiquery import translate_many

    names = sorted(CATALOG)
    patterns = [CATALOG[n]() for n in names]
    streams = {}
    for pattern in patterns:
        streams.update(_streams_for(pattern, SCALE_EVENTS, SCALE_SENSORS, SEED))

    def run(optimize):
        sources = {
            t: ListSource(list(evs), name=f"src[{t}]", event_type=t)
            for t, evs in streams.items()
        }
        mq = translate_many(
            patterns, sources, optimize=optimize, registry=REGISTRY
        )
        mq.execute()
        return mq, {
            n: canonical_match_bytes(mq.matches_of(i))
            for i, n in enumerate(names)
        }

    _, ref = run("off")
    mq, opt = run("static")
    assert ref == opt
    # Scan sharing still works across rewritten plans.
    assert mq.num_shared_scans > 0


def test_cli_explain_emits_rule_trace(capsys):
    rc = main([
        "explain", "-p",
        "PATTERN SEQ(Q a, V b) WITHIN 60 MINUTES SLIDE 1 MINUTE",
        "--optimize", "static",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "[FIRED] choose-interval-windows" in out
    assert "[declined]" in out
    assert "cost model: static" in out


def test_cli_run_with_optimizer(tmp_path, capsys):
    rc = main(["generate", "--out", str(tmp_path), "--segments", "2",
               "--minutes", "120"])
    assert rc == 0
    capsys.readouterr()
    args = [
        "run", "-p",
        "PATTERN SEQ(Q a, V b) WITHIN 60 MINUTES SLIDE 1 MINUTE",
        "--stream", f"Q={tmp_path}/Q.csv", "--stream", f"V={tmp_path}/V.csv",
        "--show", "0",
    ]
    rc = main(args)
    base = capsys.readouterr().out
    assert rc == 0
    rc = main(args + ["--optimize", "static"])
    optimized = capsys.readouterr().out
    assert rc == 0
    assert "optimizer[static]: choose-interval-windows" in optimized

    def matches(text):
        for line in text.splitlines():
            if "events ->" in line:
                return line.split("events ->")[1].split("matches")[0].strip()
        raise AssertionError(f"no match line in {text!r}")

    assert matches(base) == matches(optimized)
