"""Tests for the simulated cluster and the FCEP/FASP harness."""

import pytest

from repro.asp.datamodel import Event
from repro.asp.time import minutes
from repro.errors import ClusterError
from repro.mapping.optimizations import TranslationOptions
from repro.runtime.cluster import (
    ClusterConfig,
    partition_streams,
    run_on_cluster,
)
from repro.runtime.harness import (
    run_fasp,
    run_fasp_on_cluster,
    run_fcep,
    run_fcep_on_cluster,
)
from repro.runtime.metrics import (
    ThroughputMeasurement,
    cpu_proxy_series,
    format_bytes,
    format_tps,
    resource_series,
    speedup,
)
from repro.sea.parser import parse_pattern
from repro.workloads.qnv import QnVConfig, qnv_streams

MIN = minutes(1)


@pytest.fixture(scope="module")
def keyed_streams():
    return qnv_streams(QnVConfig(num_segments=8, duration_ms=minutes(300), seed=3))


@pytest.fixture(scope="module")
def keyed_pattern():
    return parse_pattern(
        "PATTERN SEQ(Q a, V b) WHERE a.value > 50 AND a.id = b.id "
        "WITHIN 10 MINUTES SLIDE 1 MINUTE",
        name="SEQk",
    )


class TestClusterConfig:
    def test_total_slots(self):
        assert ClusterConfig(num_workers=2, slots_per_worker=8).total_slots == 16

    def test_memory_per_slot(self):
        config = ClusterConfig(slots_per_worker=4, memory_per_worker_bytes=4000)
        assert config.memory_per_slot_bytes == 1000

    def test_no_budget(self):
        assert ClusterConfig().memory_per_slot_bytes is None

    def test_validation(self):
        with pytest.raises(ClusterError):
            ClusterConfig(num_workers=0)
        with pytest.raises(ClusterError):
            ClusterConfig(slots_per_worker=0)


class TestPartitioning:
    def test_all_events_routed(self, keyed_streams):
        parts = partition_streams(keyed_streams, 4)
        total = sum(len(v) for p in parts for v in p.values())
        assert total == sum(len(v) for v in keyed_streams.values())

    def test_same_key_same_partition(self, keyed_streams):
        parts = partition_streams(keyed_streams, 4)
        for idx, part in enumerate(parts):
            for events in part.values():
                for e in events:
                    from repro.asp.operators.keyby import partition_for

                    assert partition_for(e.id, 4) == idx

    def test_custom_key_fn(self):
        streams = {"Q": [Event("Q", ts=0, id=1, value=5.0)]}
        parts = partition_streams(streams, 2, key_fn=lambda e: "fixed")
        non_empty = [p for p in parts if p["Q"]]
        assert len(non_empty) == 1


class TestRunOnCluster:
    def test_idle_slots_skipped(self, keyed_streams):
        # 8 keys over 64 slots: at most 8 busy slots.
        config = ClusterConfig(num_workers=4, slots_per_worker=16)

        def job(streams, budget):
            from repro.asp.executor import RunResult

            total = sum(len(v) for v in streams.values())
            return (
                RunResult("job", total, 0, wall_seconds=0.01,
                          peak_state_bytes=0, work_units=total),
                0,
            )

        outcome = run_on_cluster(keyed_streams, job, config)
        assert 0 < len(outcome.slots) <= 8
        assert outcome.events_in == sum(len(v) for v in keyed_streams.values())

    def test_makespan_is_max_over_workers(self, keyed_streams):
        config = ClusterConfig(num_workers=2, slots_per_worker=2)

        def job(streams, budget):
            from repro.asp.executor import RunResult

            total = sum(len(v) for v in streams.values())
            return (
                RunResult("job", total, 0, wall_seconds=total / 1000.0,
                          peak_state_bytes=0, work_units=total),
                0,
            )

        outcome = run_on_cluster(keyed_streams, job, config)
        assert outcome.makespan_seconds == max(outcome.worker_wall_seconds())
        assert outcome.throughput_tps > 0

    def test_failure_propagates(self, keyed_streams):
        config = ClusterConfig(num_workers=1, slots_per_worker=2)

        def job(streams, budget):
            from repro.asp.executor import RunResult

            total = sum(len(v) for v in streams.values())
            return (
                RunResult("job", total, 0, wall_seconds=0.01, peak_state_bytes=0,
                          work_units=0, failed=True, failure="boom"),
                0,
            )

        outcome = run_on_cluster(keyed_streams, job, config)
        assert outcome.failed
        assert "boom" in outcome.failure

    def test_skew_metric(self, keyed_streams):
        config = ClusterConfig(num_workers=1, slots_per_worker=4)

        def job(streams, budget):
            from repro.asp.executor import RunResult

            total = sum(len(v) for v in streams.values())
            return (
                RunResult("job", total, 0, wall_seconds=0.01,
                          peak_state_bytes=0, work_units=0),
                0,
            )

        outcome = run_on_cluster(keyed_streams, job, config)
        assert outcome.skew() >= 1.0


class TestHarness:
    def test_fcep_and_fasp_agree_on_matches(self, keyed_pattern, keyed_streams):
        m_fcep, sink_fcep, _res = run_fcep(keyed_pattern, keyed_streams)
        m_fasp, sink_fasp, _res = run_fasp(keyed_pattern, keyed_streams)
        assert sink_fcep.count == sink_fasp.count
        assert m_fcep.matches == m_fasp.matches
        assert m_fcep.label == "FCEP"
        assert m_fasp.label == "FASP"

    def test_all_option_sets_agree(self, keyed_pattern, keyed_streams):
        counts = set()
        for options in (
            TranslationOptions.fasp(),
            TranslationOptions.o1(),
            TranslationOptions.o3(),
            TranslationOptions.o1_o3(),
        ):
            _m, sink, _res = run_fasp(keyed_pattern, keyed_streams, options)
            counts.add(sink.count)
        assert len(counts) == 1

    def test_cluster_runs_agree_with_single_node(self, keyed_pattern, keyed_streams):
        _m0, sink0, _res = run_fcep(keyed_pattern, keyed_streams, key_attribute="id")
        config = ClusterConfig(num_workers=1, slots_per_worker=4)
        m_fcep, _out = run_fcep_on_cluster(keyed_pattern, keyed_streams, config)
        m_fasp, _out = run_fasp_on_cluster(
            keyed_pattern, keyed_streams, config, TranslationOptions.o3()
        )
        assert m_fcep.matches == sink0.count
        assert m_fasp.matches == sink0.count

    def test_measurement_fields(self, keyed_pattern, keyed_streams):
        measurement, _sink, result = run_fasp(keyed_pattern, keyed_streams)
        assert measurement.events_in == result.events_in
        assert measurement.throughput_tps > 0
        assert measurement.wall_seconds > 0
        assert not measurement.failed

    def test_collect_mode_returns_matches(self, keyed_pattern, keyed_streams):
        _m, sink, _res = run_fasp(keyed_pattern, keyed_streams, collect=True)
        assert hasattr(sink, "items")
        assert len(sink.matches()) == sink.count


class TestMetrics:
    def test_format_tps(self):
        assert format_tps(1_500_000) == "1.50M tpl/s"
        assert format_tps(2_500) == "2.5k tpl/s"
        assert format_tps(42) == "42 tpl/s"

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0 B"
        assert format_bytes(2048) == "2.0 KB"
        assert "GB" in format_bytes(3 * 1024**3)

    def test_speedup(self):
        base = ThroughputMeasurement("FCEP", "p", 1, 0, 1.0, 100.0, 0, 0)
        fast = ThroughputMeasurement("FASP", "p", 1, 0, 1.0, 250.0, 0, 0)
        assert speedup(base, fast) == 2.5

    def test_output_selectivity_pct(self):
        m = ThroughputMeasurement("FASP", "p", 200, 4, 1.0, 1.0, 0, 0)
        assert m.output_selectivity_pct == 2.0

    def test_resource_series_and_cpu_proxy(self, keyed_pattern, keyed_streams):
        _m, _sink, result = run_fasp(
            keyed_pattern, keyed_streams, sample_every=200
        )
        samples = resource_series(result)
        assert len(samples) > 2
        cpu = cpu_proxy_series(samples)
        assert all(0.0 <= u <= 100.0 for _t, u in cpu)

    def test_cpu_proxy_short_series(self):
        assert cpu_proxy_series([]) == []
