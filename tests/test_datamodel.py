"""Unit tests for the unified CEP/ASP data model."""

import pytest

from repro.asp.datamodel import (
    Attribute,
    ComplexEvent,
    Event,
    EventTypeInfo,
    Schema,
    TypeRegistry,
    merge_events,
)
from repro.errors import SchemaError


class TestEvent:
    def test_core_attribute_access(self):
        e = Event("Q", ts=100, id=7, value=3.5, lat=50.0, lon=8.0)
        assert e["ts"] == 100
        assert e["id"] == 7
        assert e["value"] == 3.5
        assert e["lat"] == 50.0
        assert e["lon"] == 8.0
        assert e["type"] == "Q"
        assert e["event_type"] == "Q"

    def test_extra_attribute_access(self):
        e = Event("Q", ts=1, attrs={"a_ts": 42})
        assert e["a_ts"] == 42

    def test_unknown_attribute_raises_schema_error(self):
        e = Event("Q", ts=1)
        with pytest.raises(SchemaError, match="no attribute 'nope'"):
            e["nope"]

    def test_get_returns_default_for_missing(self):
        e = Event("Q", ts=1)
        assert e.get("missing", 5) == 5
        assert e.get("ts") == 1

    def test_has_attribute(self):
        e = Event("Q", ts=1, attrs={"x": 1})
        assert e.has_attribute("ts")
        assert e.has_attribute("x")
        assert not e.has_attribute("y")

    def test_with_attrs_overrides_core_field(self):
        e = Event("Q", ts=1, value=2.0)
        e2 = e.with_attrs(value=9.0)
        assert e2.value == 9.0
        assert e.value == 2.0  # original untouched

    def test_with_attrs_adds_extra(self):
        e = Event("Q", ts=1)
        e2 = e.with_attrs(a_ts=77)
        assert e2["a_ts"] == 77
        assert e.attrs is None

    def test_with_attrs_merges_existing_extras(self):
        e = Event("Q", ts=1, attrs={"x": 1})
        e2 = e.with_attrs(y=2)
        assert e2["x"] == 1 and e2["y"] == 2

    def test_equality_and_hash(self):
        a = Event("Q", ts=1, id=2, value=3.0)
        b = Event("Q", ts=1, id=2, value=3.0)
        c = Event("Q", ts=1, id=2, value=4.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_considers_extras(self):
        a = Event("Q", ts=1, attrs={"x": 1})
        b = Event("Q", ts=1, attrs={"x": 2})
        assert a != b

    def test_not_equal_to_other_types(self):
        assert Event("Q", ts=1) != "Q"

    def test_as_dict_round_trips_core_fields(self):
        e = Event("Q", ts=5, id=1, value=2.0, attrs={"k": "v"})
        d = e.as_dict()
        assert d["type"] == "Q" and d["ts"] == 5 and d["k"] == "v"

    def test_approx_size_grows_with_attrs(self):
        small = Event("Q", ts=1)
        big = Event("Q", ts=1, attrs={"a": 1, "b": 2})
        assert big.approx_size_bytes() > small.approx_size_bytes()

    def test_repr_mentions_type_and_ts(self):
        assert "Q" in repr(Event("Q", ts=9))


class TestComplexEvent:
    def test_ts_bounds(self):
        ce = ComplexEvent((Event("Q", ts=10), Event("V", ts=30), Event("Q", ts=20)))
        assert ce.ts_b == 10
        assert ce.ts_e == 30
        assert ce.duration == 20

    def test_default_assigned_ts_is_minimum(self):
        ce = ComplexEvent((Event("Q", ts=10), Event("V", ts=30)))
        assert ce.ts == 10  # partial-match semantics (paper Section 4.2.2)

    def test_explicit_ts(self):
        ce = ComplexEvent((Event("Q", ts=10), Event("V", ts=30)), ts=30)
        assert ce.ts == 30

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            ComplexEvent(())

    def test_dedup_key_is_order_sensitive(self):
        q, v = Event("Q", ts=1), Event("V", ts=2)
        assert ComplexEvent((q, v)).dedup_key() != ComplexEvent((v, q)).dedup_key()

    def test_ordered_dedup_key_is_order_insensitive(self):
        q, v = Event("Q", ts=1), Event("V", ts=2)
        a = ComplexEvent((q, v)).ordered_dedup_key()
        b = ComplexEvent((v, q)).ordered_dedup_key()
        assert a == b

    def test_equality_via_dedup_key(self):
        q, v = Event("Q", ts=1), Event("V", ts=2)
        assert ComplexEvent((q, v)) == ComplexEvent((q, v))
        assert hash(ComplexEvent((q, v))) == hash(ComplexEvent((q, v)))

    def test_len_and_iteration(self):
        events = (Event("Q", ts=1), Event("V", ts=2))
        ce = ComplexEvent(events)
        assert len(ce) == 2
        assert tuple(ce) == events


class TestSchema:
    def test_of_builder(self):
        s = Schema.of("a", "b")
        assert s.names == ("a", "b")
        assert "a" in s and "c" not in s
        assert len(s) == 2

    def test_sensor_schema_matches_paper(self):
        assert Schema.sensor_schema().names == ("id", "lat", "lon", "ts", "value")

    def test_union_compatibility_same_schema(self):
        assert Schema.of("a", "b").union_compatible(Schema.of("a", "b"))

    def test_union_incompatible_different_names(self):
        assert not Schema.of("a", "b").union_compatible(Schema.of("a", "c"))

    def test_union_incompatible_different_arity(self):
        assert not Schema.of("a").union_compatible(Schema.of("a", "b"))

    def test_union_incompatible_different_types(self):
        left = Schema((Attribute("a", int),))
        right = Schema((Attribute("a", float),))
        assert not left.union_compatible(right)

    def test_require_union_compatible_raises(self):
        with pytest.raises(SchemaError, match="not union compatible"):
            Schema.of("a").require_union_compatible(Schema.of("b"))


class TestTypeRegistry:
    def test_declare_and_get(self):
        reg = TypeRegistry()
        reg.declare("Q")
        assert "Q" in reg
        assert reg.get("Q").name == "Q"

    def test_duplicate_registration_rejected(self):
        reg = TypeRegistry()
        reg.declare("Q")
        with pytest.raises(SchemaError, match="already registered"):
            reg.declare("Q")

    def test_unknown_type_raises(self):
        with pytest.raises(SchemaError, match="unknown event type"):
            TypeRegistry().get("nope")

    def test_paper_default_has_six_types(self):
        reg = TypeRegistry.paper_default()
        assert set(reg.names()) == {"Q", "V", "PM10", "PM2", "TEMP", "HUM"}
        assert len(reg) == 6

    def test_registry_iterates_infos(self):
        reg = TypeRegistry([EventTypeInfo("A"), EventTypeInfo("B")])
        assert [i.name for i in reg] == ["A", "B"]


class TestMergeEvents:
    def test_merges_by_timestamp(self):
        a = [Event("Q", ts=3), Event("Q", ts=1)]
        b = [Event("V", ts=2)]
        merged = merge_events(a, b)
        assert [e.ts for e in merged] == [1, 2, 3]

    def test_deterministic_tie_break(self):
        a = [Event("Q", ts=1, id=2)]
        b = [Event("Q", ts=1, id=1)]
        merged = merge_events(a, b)
        assert [e.id for e in merged] == [1, 2]
