"""The experiment drivers must hit their calibrated selectivity targets.

The paper's Figure 3b axis is the *output* selectivity; the drivers
invert analytic models to choose filter thresholds. These tests check
the achieved sigma_o empirically (uniform-value workloads make the
models exact up to sampling noise).
"""

import pytest

from repro.experiments import Scale, fig3b_selectivity
from repro.experiments.common import qnv_workload, seq2_pattern
from repro.sea.semantics import evaluate_pattern
from repro.workloads import merged_timeline
from repro.workloads.selectivity import calibrate_filter_selectivity, calibrate_iter_filter


class TestSeq2Calibration:
    @pytest.mark.parametrize("target_pct", [0.1, 3.0, 30.0])
    def test_fig3b_driver_hits_target(self, target_pct):
        rows = fig3b_selectivity(
            Scale(events=10000, sensors=8, seed=42),
            selectivities_pct=(target_pct,),
        )
        fasp = next(r for r in rows if r.approach == "FASP")
        measured_pct = 100.0 * fasp.matches / fasp.events_in
        assert measured_pct == pytest.approx(target_pct, rel=0.35)

    def test_oracle_confirms_calibration(self):
        scale = Scale(events=1600, sensors=4, seed=9)
        streams = qnv_workload(scale)
        target = 0.02
        p = calibrate_filter_selectivity(target, 10 * 60_000, sensors=scale.sensors)
        pattern = seq2_pattern(p, window_minutes=10)
        events = merged_timeline(streams)
        matches = evaluate_pattern(pattern, events)
        assert len(matches) / len(events) == pytest.approx(target, rel=0.5)


class TestIterCalibration:
    @pytest.mark.parametrize("m", [2, 3])
    def test_iteration_calibration_is_monotone_and_productive(self, m):
        """The per-window combination target is a workload knob, not a
        deduplicated match count (overlapping windows share combinations),
        so the empirical check is monotonicity: a larger target must
        yield a larger filter selectivity and more distinct matches."""
        from repro.experiments.common import iter_threshold_pattern

        scale = Scale(events=2400, sensors=4, seed=3)
        streams = qnv_workload(scale)
        counts = []
        for target in (0.5, 8.0):
            p = calibrate_iter_filter(
                target, m, 15 * 60_000, sensors=scale.sensors
            )
            pattern = iter_threshold_pattern(m, p, window_minutes=15)
            counts.append(len(evaluate_pattern(pattern, streams["V"])))
        low, high = counts
        assert high > low
        assert high > 0
