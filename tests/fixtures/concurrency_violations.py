"""Seeded concurrency-lint violations — a *fixture*, never imported.

``repro lint --self --self-path tests/fixtures/concurrency_violations.py``
must FAIL on this file; the CI gate asserts exactly that (an inverted
check), and ``tests/test_concurrency_lint.py`` keys on the codes. One
block per RA82x family:

* RA821 — blocking calls inside async handlers
* RA822 — a lock-owned attribute written without the lock
* RA823 — iterating an unordered set on an output path
"""

import threading
import time


async def handle_request(payload):  # RA821: time.sleep in an async def
    time.sleep(0.1)
    with open("/tmp/out") as fh:  # RA821: blocking file I/O
        return fh.read() + str(payload)


class Counter:
    def __init__(self):
        self.lock = threading.Lock()
        self.total = 0

    def add(self, n):
        with self.lock:
            self.total += n

    def reset(self):  # RA822: lock-owned attribute written without it
        self.total = 0


def routes(event_types, streams):
    needed = set(event_types)
    return {t: streams[t] for t in needed}  # RA823: unordered set iteration
