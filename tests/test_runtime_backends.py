"""The layered runtime: channels, scheduler, instrumentation, backends.

The central guarantee: the sharded backend (O3 key partitioning made
physical) produces exactly the serial backend's deduplicated match set,
which in turn equals the formal-semantics oracle. Plus unit coverage for
the runtime layers the old monolithic executor used to interleave.
"""

import random

import pytest

from repro.asp.datamodel import Event
from repro.asp.executor import Executor, run_dataflow
from repro.asp.graph import Dataflow, clone_dataflow, extract_shards, linear_pipeline
from repro.asp.operators.filter import FilterOperator
from repro.asp.operators.keyby import key_by_attribute
from repro.asp.operators.sink import CollectSink, DiscardSink
from repro.asp.operators.source import ListSource
from repro.asp.runtime import (
    ExecutionSettings,
    Instrumentation,
    SerialBackend,
    ShardedBackend,
    merge_sources,
    resolve_backend,
)
from repro.asp.runtime.backends.serial import SerialJob
from repro.asp.state import StateRegistry
from repro.asp.time import WatermarkGenerator, minutes
from repro.cep.matches import dedup
from repro.errors import ExecutionError
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern
from repro.sea.semantics import evaluate_pattern

MIN = minutes(1)

IDS = (1, 2, 3, 4, 5)


def keyed_stream(seed, n=60, types=("Q", "V", "W"), ids=IDS):
    rng = random.Random(seed)
    return [
        Event(
            rng.choice(types),
            ts=i * MIN,
            id=rng.choice(ids),
            value=round(rng.uniform(0, 100), 3),
        )
        for i in range(n)
    ]


def sources_for(events):
    by_type = {}
    for e in events:
        by_type.setdefault(e.event_type, []).append(e)
    return {
        t: ListSource(lst, name=f"src[{t}]", event_type=t)
        for t, lst in by_type.items()
    }


def match_set(pattern, events, backend=None):
    query = translate(pattern, sources_for(events), TranslationOptions.o3())
    query.execute(backend=backend)
    return {m.dedup_key() for m in dedup(query.matches())}


KEYED_PATTERNS = [
    "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 7 MINUTES SLIDE 1 MINUTE",
    "PATTERN SEQ(Q a, V b, W c) WHERE a.id = b.id AND b.id = c.id "
    "WITHIN 6 MINUTES SLIDE 1 MINUTE",
    "PATTERN ITER2(V v) WHERE v[1].id = v[2].id WITHIN 5 MINUTES SLIDE 1 MINUTE",
]

NSEQ_KEYED = (
    "PATTERN SEQ(Q a, !W x, V b) WHERE a.id = b.id WITHIN 6 MINUTES SLIDE 1 MINUTE"
)


class TestShardedEquivalence:
    """Satellite guarantee: sharded == serial == oracle, per pattern."""

    @pytest.mark.parametrize("shards", (2, 4))
    @pytest.mark.parametrize("text", KEYED_PATTERNS)
    def test_sharded_equals_serial_and_oracle(self, text, shards):
        pattern = parse_pattern(text)
        for seed in (11, 12):
            events = keyed_stream(seed)
            serial = match_set(pattern, events)
            sharded = match_set(
                pattern,
                events,
                backend=ShardedBackend(shards=shards, mode="inline"),
            )
            oracle = {m.dedup_key() for m in evaluate_pattern(pattern, events)}
            assert sharded == serial, f"seed={seed}"
            assert sharded == oracle, f"seed={seed}"

    @pytest.mark.parametrize("shards", (2, 4))
    def test_keyed_nseq_sharded_equals_serial(self, shards):
        """NSEQ's negation is key-scoped under O3; the oracle is the
        unkeyed pattern evaluated per key substream."""
        pattern = parse_pattern(NSEQ_KEYED)
        events = keyed_stream(17, n=80)
        serial = match_set(pattern, events)
        sharded = match_set(
            pattern, events, backend=ShardedBackend(shards=shards, mode="inline")
        )
        per_key = parse_pattern(
            "PATTERN SEQ(Q a, !W x, V b) WITHIN 6 MINUTES SLIDE 1 MINUTE"
        )
        oracle = set()
        for key in IDS:
            sub = [e for e in events if e.id == key]
            oracle |= {m.dedup_key() for m in evaluate_pattern(per_key, sub)}
        assert sharded == serial
        assert sharded == oracle

    def test_process_mode_smoke(self):
        """The real process pool ships lambda-bearing subgraphs via
        cloudpickle and returns identical matches."""
        cloudpickle = pytest.importorskip("cloudpickle")
        assert cloudpickle is not None
        pattern = parse_pattern(KEYED_PATTERNS[0])
        events = keyed_stream(3, n=40)
        serial = match_set(pattern, events)
        sharded = match_set(
            pattern, events, backend=ShardedBackend(shards=2, mode="process")
        )
        assert sharded == serial

    def test_sharded_result_metadata(self):
        pattern = parse_pattern(KEYED_PATTERNS[0])
        events = keyed_stream(5, n=50)
        query = translate(pattern, sources_for(events), TranslationOptions.o3())
        result = query.execute(backend=ShardedBackend(shards=4, mode="inline"))
        meta = result.metadata
        assert meta["backend"] == "sharded"
        assert meta["shards"] == 4
        assert meta["mode"] == "inline"
        assert len(meta["shard_pipeline_seconds"]) == 4
        # The merged pipeline time is the measured makespan: the slowest
        # shard bounds the parallel job.
        assert result.pipeline_seconds == pytest.approx(
            max(meta["shard_pipeline_seconds"])
        )
        assert sum(meta["shard_events_in"]) == result.events_in


class TestShardedRejection:
    def test_unkeyed_plan_is_refused(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WITHIN 7 MINUTES SLIDE 1 MINUTE"
        )
        events = keyed_stream(1, n=30)
        query = translate(pattern, sources_for(events), TranslationOptions.fasp())
        with pytest.raises(ExecutionError, match="O3|key-parallel"):
            query.execute(backend=ShardedBackend(shards=2, mode="inline"))

    def test_error_names_the_unsafe_operators(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WITHIN 7 MINUTES SLIDE 1 MINUTE"
        )
        events = keyed_stream(1, n=30)
        query = translate(pattern, sources_for(events), TranslationOptions.fasp())
        with pytest.raises(ExecutionError, match="join"):
            ShardedBackend(shards=2).check_shardable(query.env.flow)

    def test_backend_constructor_validation(self):
        with pytest.raises(ExecutionError):
            ShardedBackend(shards=0)
        with pytest.raises(ExecutionError):
            ShardedBackend(mode="threads")


class TestResolveBackend:
    def test_default_and_names(self):
        assert resolve_backend(None).name == "serial"
        assert resolve_backend("serial").name == "serial"
        sharded = resolve_backend("sharded", shards=8, key_attribute="sensor")
        assert sharded.name == "sharded"
        assert sharded.shards == 8
        assert sharded.key_attribute == "sensor"

    def test_instance_passthrough_and_unknown(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend
        with pytest.raises(ExecutionError, match="unknown"):
            resolve_backend("distributed")


class TestMergeSourcesEdges:
    """Satellite: source-merge edge cases."""

    @staticmethod
    def _flow_of(*event_lists):
        flow = Dataflow(name="merge-test")
        for i, events in enumerate(event_lists):
            flow.add_source(ListSource(events, name=f"s{i}"))
        return flow

    def test_empty_source_contributes_nothing(self):
        left = [Event("Q", ts=i * MIN, id=1) for i in range(3)]
        flow = self._flow_of(left, [])
        merged = list(merge_sources(flow))
        assert [e.ts for _n, e in merged] == [0, MIN, 2 * MIN]
        assert all(node_id == 0 for node_id, _e in merged)

    def test_all_sources_empty(self):
        flow = self._flow_of([], [])
        assert list(merge_sources(flow)) == []

    def test_single_source_preserves_order(self):
        events = [Event("Q", ts=ts, id=1) for ts in (0, MIN, MIN, 2 * MIN)]
        flow = self._flow_of(events)
        assert [e for _n, e in merge_sources(flow)] == events

    def test_duplicate_timestamps_keep_source_order(self):
        """Ties break by source registration order, deterministically."""
        a = [Event("A", ts=MIN, id=1), Event("A", ts=2 * MIN, id=1)]
        b = [Event("B", ts=MIN, id=2), Event("B", ts=2 * MIN, id=2)]
        flow = self._flow_of(a, b)
        types = [e.event_type for _n, e in merge_sources(flow)]
        assert types == ["A", "B", "A", "B"]


class TestInstrumentation:
    """Satellite: one budget check even when cadences coincide."""

    @staticmethod
    def _instrumentation(sample_every=1000):
        flow = linear_pipeline(
            ListSource([], name="s"), [FilterOperator(lambda e: True)]
        )
        return Instrumentation(flow, StateRegistry(), sample_every=sample_every)

    def test_coinciding_cadences_check_once(self):
        instr = self._instrumentation(sample_every=1000)
        instr.after_event(1000, watermark_emitted=True)
        assert instr.budget_checks == 1
        assert len(instr.samples) == 1

    def test_watermark_only_checks_without_sampling(self):
        instr = self._instrumentation(sample_every=1000)
        instr.after_event(7, watermark_emitted=True)
        assert instr.budget_checks == 1
        assert instr.samples == []

    def test_quiet_event_checks_nothing(self):
        instr = self._instrumentation(sample_every=1000)
        instr.after_event(7, watermark_emitted=False)
        assert instr.budget_checks == 0
        assert instr.samples == []

    def test_sample_hook_sees_live_samples(self):
        from repro.runtime.metrics import TimeSeriesHook

        hook = TimeSeriesHook()
        flow = linear_pipeline(
            ListSource(
                [Event("Q", ts=i * MIN, id=1) for i in range(30)], name="s"
            ),
            [DiscardSink()],
        )
        run_dataflow(flow, sample_every=10)
        # Hook not wired -> empty; wire it through the Executor facade.
        assert hook.series == []
        executor = Executor(flow, sample_every=10, on_sample=hook)
        executor.run()
        assert hook.series
        assert hook.series[-1].events_in == 30


class TestChannelsAndClock:
    def test_channels_count_items_and_watermarks(self):
        events = [Event("Q", ts=i * MIN, id=1) for i in range(20)]
        flow = linear_pipeline(
            ListSource(events, name="s"),
            [FilterOperator(lambda e: True), DiscardSink()],
        )
        job = SerialJob(flow, ExecutionSettings(watermark_interval=MIN))
        result = job.run()
        totals = result.metadata["channels"]
        assert result.metadata["backend"] == "serial"
        assert totals["item_frames"] == 40  # 20 into the filter, 20 onward
        assert totals["watermark_frames"] > 0
        source_channel = job.channels[0][0]
        assert source_channel.items == 20
        assert source_channel.peak_burst >= 1

    def test_watermark_clock_is_public(self):
        """The executor wires operators' event clock through the public
        ``current_max_ts`` property, not the private ``_max_ts``."""
        generator = WatermarkGenerator(emit_interval=MIN)
        generator.observe(5 * MIN)
        assert generator.current_max_ts == 5 * MIN
        events = [Event("Q", ts=i * MIN, id=1) for i in range(4)]
        flow = linear_pipeline(ListSource(events, name="s"), [DiscardSink()])
        executor = Executor(flow, watermark_interval=MIN)
        executor.run()
        assert executor.watermarks.current_max_ts == 3 * MIN


class TestExtractShards:
    @staticmethod
    def _keyed_flow():
        events = keyed_stream(9, n=40)
        flow = linear_pipeline(
            ListSource(events, name="s"),
            [FilterOperator(lambda e: True), CollectSink()],
        )
        return flow, events

    def test_partitions_are_disjoint_and_complete(self):
        flow, events = self._keyed_flow()
        shards = extract_shards(flow, 4, key_by_attribute("id"))
        assert len(shards) == 4
        seen = []
        for sub in shards:
            seen.extend(iter(sub.source_nodes()[0].source))
        assert sorted(seen, key=lambda e: e.ts) == events
        # Same key -> same shard (determinism across calls).
        again = extract_shards(flow, 4, key_by_attribute("id"))
        for sub, sub2 in zip(shards, again):
            assert list(iter(sub.source_nodes()[0].source)) == list(
                iter(sub2.source_nodes()[0].source)
            )

    def test_shards_get_fresh_operators(self):
        flow, _events = self._keyed_flow()
        shards = extract_shards(flow, 2, key_by_attribute("id"))
        originals = {id(n.operator) for n in flow.operator_nodes()}
        for sub in shards:
            for node in sub.operator_nodes():
                assert id(node.operator) not in originals

    def test_clone_shares_sources_by_default(self):
        flow, _events = self._keyed_flow()
        cloned = clone_dataflow(flow)
        assert cloned.source_nodes()[0].payload is flow.source_nodes()[0].payload
        assert (
            clone_dataflow(flow, share_sources=False).source_nodes()[0].payload
            is not flow.source_nodes()[0].payload
        )


class TestRunDataflowBackend:
    def test_run_dataflow_sharded_counts_everything_once(self):
        events = keyed_stream(21, n=48)
        flow = linear_pipeline(
            ListSource(events, name="s"),
            [FilterOperator(lambda e: e.value > 50.0), CollectSink()],
        )
        serial_flow = clone_dataflow(flow)
        sharded = run_dataflow(flow, backend="sharded", shards=4)
        serial = run_dataflow(serial_flow)
        assert sharded.events_in == serial.events_in == len(events)
        kept = {
            (e.ts, e.id)
            for e in flow.sink_nodes()[0].operator.items
        }
        kept_serial = {
            (e.ts, e.id)
            for e in serial_flow.sink_nodes()[0].operator.items
        }
        assert kept == kept_serial
