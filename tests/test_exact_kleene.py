"""Exact Kleene iteration (PR 10): the columnar ITER operator against
the SEA denotational oracle and the join-chain mapping.

``iteration_strategy="exact"`` enumerates every ts-increasing event
composition per window (first-window deduplicated) instead of the m-way
self-join (O2's approximate count replaces both). For bounded ITERm the
exact operator must reproduce the join chain byte-for-byte; for bounded
and unbounded patterns alike it must reproduce ``evaluate_pattern``,
the executable semantics of Section 3. Workloads stay sparse — exact
Kleene output is combinatorial by definition.
"""

import pytest

from repro.asp.datamodel import merge_events
from repro.asp.runtime.fault.chaos import (
    _fresh_query,
    _streams_for,
    canonical_match_bytes,
)
from repro.mapping.optimizations import TranslationOptions
from repro.patterns import street_lighting_idle
from repro.sea.parser import parse_pattern
from repro.sea.semantics import evaluate_pattern

SEED = 13
SENSORS = 2


def _run(pattern, streams, strategy, **engine):
    query = _fresh_query(
        pattern, streams, TranslationOptions(iteration_strategy=strategy)
    )
    result = query.execute(**engine)
    assert not result.failed, result.failure
    return canonical_match_bytes(query.matches())


def _oracle_bytes(pattern, streams):
    merged = merge_events(*streams.values())
    return canonical_match_bytes(evaluate_pattern(pattern, merged))


@pytest.mark.parametrize("count", [2, 3])
def test_bounded_iteration_exact_equals_join_chain(count):
    pattern = parse_pattern(
        f"PATTERN ITER{count}(V v) WHERE v.value > 110.0 "
        "WITHIN 10 MINUTES SLIDE 2 MINUTES",
        name=f"iter{count}",
    )
    streams = _streams_for(pattern, 200, SENSORS, SEED)
    join_bytes = _run(pattern, streams, "join")
    exact_bytes = _run(pattern, streams, "exact")
    assert exact_bytes == join_bytes
    assert exact_bytes == _oracle_bytes(pattern, streams)


def test_unbounded_kleene_exact_equals_oracle():
    """ITERm+ has no join-chain mapping; the oracle is the only exact
    reference. Sparse predicate: runs stay short, output stays finite."""
    pattern = street_lighting_idle(velocity_free_flow=128.0, occurrences=3)
    streams = _streams_for(pattern, 160, SENSORS, SEED)
    exact_bytes = _run(pattern, streams, "exact")
    assert exact_bytes == _oracle_bytes(pattern, streams)
    assert exact_bytes  # the workload must actually produce matches


def test_exact_kleene_columnar_equals_row():
    pattern = street_lighting_idle(velocity_free_flow=128.0, occurrences=3)
    streams = _streams_for(pattern, 160, SENSORS, SEED)
    row_bytes = _run(pattern, streams, "exact")
    for batch_size in (7, 256):
        columnar_bytes = _run(
            pattern, streams, "exact", batch_size=batch_size, columnar=True
        )
        assert columnar_bytes == row_bytes


def test_exact_kleene_recovery_byte_identical():
    from repro.asp.runtime import FaultPlan, FaultSpec

    pattern = street_lighting_idle(velocity_free_flow=128.0, occurrences=3)
    streams = _streams_for(pattern, 160, SENSORS, SEED)
    clean_bytes = _run(pattern, streams, "exact")
    total = sum(len(evs) for evs in streams.values())
    plan = FaultPlan((FaultSpec("crash", at_event=max(20, total // 2)),))
    recovered = _run(
        pattern,
        streams,
        "exact",
        checkpoint_interval=25,
        fault_plan=plan,
        batch_size=64,
        columnar=True,
    )
    assert recovered == clean_bytes
