"""Cross-engine semantic equivalence — the reproduction's core guarantee.

For identical streams, the brute-force oracle (formal semantics), the NFA
engine (FCEP analog, skip-till-any-match) and every mapped ASP plan must
produce the same match sets after duplicate elimination (the paper's
notion of query equivalence after Negri et al.). Streams are grid-aligned
per Theorem 2 (one event per minute slot), matching the paper's
per-minute sensor data.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.datamodel import Event
from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.cep.matches import dedup, dedup_unordered
from repro.cep.nfa import run_nfa
from repro.cep.pattern_api import from_sea_pattern
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern
from repro.sea.semantics import evaluate_pattern

MIN = minutes(1)

ALL_OPTIONS = [
    TranslationOptions.fasp(),
    TranslationOptions.o1(),
]

KEYED_OPTIONS = ALL_OPTIONS + [
    TranslationOptions.o3(),
    TranslationOptions.o1_o3(),
]


def make_stream(seed, n=50, types=("Q", "V", "W"), ids=(1, 2)):
    rng = random.Random(seed)
    return [
        Event(
            rng.choice(types),
            ts=i * MIN,
            id=rng.choice(ids),
            value=round(rng.uniform(0, 100), 3),
        )
        for i in range(n)
    ]


def sources_for(events):
    by_type = {}
    for e in events:
        by_type.setdefault(e.event_type, []).append(e)
    return {
        t: ListSource(lst, name=f"src[{t}]", event_type=t)
        for t, lst in by_type.items()
    }


def run_mapped(pattern, events, options):
    query = translate(pattern, sources_for(events), options)
    query.execute()
    return query.matches()


def oracle_set(pattern, events, unordered=False):
    matches = evaluate_pattern(pattern, events)
    if unordered:
        return {m.ordered_dedup_key() for m in matches}
    return {m.dedup_key() for m in matches}


def mapped_set(pattern, events, options, unordered=False):
    matches = run_mapped(pattern, events, options)
    if unordered:
        return {m.ordered_dedup_key() for m in dedup_unordered(matches)}
    return {m.dedup_key() for m in dedup(matches)}


PATTERNS = [
    ("PATTERN SEQ(Q a, V b) WITHIN 7 MINUTES SLIDE 1 MINUTE", False),
    ("PATTERN SEQ(Q a, V b) WHERE a.value > 40 WITHIN 7 MINUTES SLIDE 1 MINUTE", False),
    ("PATTERN SEQ(Q a, V b, W c) WITHIN 5 MINUTES SLIDE 1 MINUTE", False),
    ("PATTERN SEQ(Q a, V b) WHERE a.value < b.value WITHIN 6 MINUTES SLIDE 1 MINUTE", False),
    ("PATTERN AND(Q a, V b) WITHIN 4 MINUTES SLIDE 1 MINUTE", True),
    ("PATTERN OR(Q a, V b) WITHIN 4 MINUTES SLIDE 1 MINUTE", False),
    ("PATTERN ITER2(V v) WITHIN 5 MINUTES SLIDE 1 MINUTE", False),
    ("PATTERN ITER3(V v) WHERE v.value < 60 WITHIN 6 MINUTES SLIDE 1 MINUTE", False),
    ("PATTERN SEQ(Q a, !W x, V b) WITHIN 6 MINUTES SLIDE 1 MINUTE", False),
    ("PATTERN SEQ(Q a, !W x, V b) WHERE x.value > 50 WITHIN 6 MINUTES SLIDE 1 MINUTE", False),
]

KEYED_PATTERNS = [
    ("PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 7 MINUTES SLIDE 1 MINUTE", False),
    ("PATTERN SEQ(Q a, V b, W c) WHERE a.id = b.id AND b.id = c.id "
     "WITHIN 6 MINUTES SLIDE 1 MINUTE", False),
    ("PATTERN AND(Q a, V b) WHERE a.id = b.id WITHIN 4 MINUTES SLIDE 1 MINUTE", True),
]


class TestNfaMatchesOracle:
    @pytest.mark.parametrize("text,unordered", PATTERNS)
    def test_nfa_equals_oracle(self, text, unordered):
        pattern = parse_pattern(text)
        if " AND(" in text or " OR(" in text:
            pytest.skip("FCEP does not support AND/OR (paper Table 2)")
        for seed in (1, 2, 3):
            events = make_stream(seed)
            nfa_matches = dedup(run_nfa(from_sea_pattern(pattern), events))
            got = {m.dedup_key() for m in nfa_matches}
            assert got == oracle_set(pattern, events), f"seed={seed}"


class TestMappedMatchesOracle:
    @pytest.mark.parametrize("text,unordered", PATTERNS)
    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=lambda o: o.label())
    def test_mapped_equals_oracle(self, text, unordered, options):
        pattern = parse_pattern(text)
        for seed in (1, 2):
            events = make_stream(seed)
            got = mapped_set(pattern, events, options, unordered=unordered)
            want = oracle_set(pattern, events, unordered=unordered)
            assert got == want, f"seed={seed}"

    @pytest.mark.parametrize("text,unordered", KEYED_PATTERNS)
    @pytest.mark.parametrize("options", KEYED_OPTIONS, ids=lambda o: o.label())
    def test_keyed_mapped_equals_oracle(self, text, unordered, options):
        pattern = parse_pattern(text)
        for seed in (4, 5):
            events = make_stream(seed)
            got = mapped_set(pattern, events, options, unordered=unordered)
            want = oracle_set(pattern, events, unordered=unordered)
            assert got == want, f"seed={seed}"


class TestO2Approximation:
    def test_aggregate_fires_iff_combinations_exist(self):
        """O2 is approximate (one output per window), but it must fire in
        exactly the windows where the exact iteration has matches."""
        pattern = parse_pattern(
            "PATTERN ITER3(V v) WHERE v.value < 50 WITHIN 5 MINUTES SLIDE 1 MINUTE"
        )
        for seed in (1, 2, 3):
            events = make_stream(seed, types=("V",))
            exact = evaluate_pattern(pattern, events)
            approx = run_mapped(pattern, events, TranslationOptions.o2())
            assert (len(exact) > 0) == (len(approx) > 0), f"seed={seed}"

    def test_kleene_plus_via_o2(self):
        pattern = parse_pattern(
            "PATTERN ITER2+(V v) WHERE v.value < 50 WITHIN 5 MINUTES SLIDE 1 MINUTE"
        )
        events = make_stream(7, types=("V",))
        exact = evaluate_pattern(pattern, events)
        approx = run_mapped(pattern, events, TranslationOptions.o2())
        assert (len(exact) > 0) == (len(approx) > 0)


class TestThreeWayAgreementProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        window_slots=st.integers(min_value=2, max_value=8),
    )
    def test_oracle_nfa_and_mapping_agree_on_random_seq(self, seed, window_slots):
        events = make_stream(seed, n=40)
        pattern = parse_pattern(
            f"PATTERN SEQ(Q a, V b) WITHIN {window_slots} MINUTES SLIDE 1 MINUTE"
        )
        want = oracle_set(pattern, events)
        nfa = {m.dedup_key() for m in dedup(run_nfa(from_sea_pattern(pattern), events))}
        fasp = mapped_set(pattern, events, TranslationOptions.fasp())
        o1 = mapped_set(pattern, events, TranslationOptions.o1())
        assert nfa == want
        assert fasp == want
        assert o1 == want

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_agreement_on_random_nseq(self, seed):
        events = make_stream(seed, n=40)
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, !W x, V b) WITHIN 5 MINUTES SLIDE 1 MINUTE"
        )
        want = oracle_set(pattern, events)
        nfa = {m.dedup_key() for m in dedup(run_nfa(from_sea_pattern(pattern), events))}
        fasp = mapped_set(pattern, events, TranslationOptions.fasp())
        assert nfa == want
        assert fasp == want

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           m=st.integers(min_value=2, max_value=3))
    def test_agreement_on_random_iteration(self, seed, m):
        events = make_stream(seed, n=30, types=("V", "W"))
        pattern = parse_pattern(
            f"PATTERN ITER{m}(V v) WHERE v.value < 70 WITHIN 4 MINUTES SLIDE 1 MINUTE"
        )
        want = oracle_set(pattern, events)
        nfa = {m_.dedup_key() for m_ in dedup(run_nfa(from_sea_pattern(pattern), events))}
        fasp = mapped_set(pattern, events, TranslationOptions.fasp())
        assert nfa == want
        assert fasp == want


class TestNseqBoundaryRegression:
    def test_blocker_exactly_at_e3_does_not_block(self):
        """Eq. 14 blocks on the open interval (e1.ts, e3.ts): a qualifying
        T2 event exactly at e3.ts must not suppress the match. The paper's
        Listing 6 writes a strict a_ts > e3.ts, which would wrongly reject
        this boundary; the mapping uses >= (see rules.py)."""
        events = [
            Event("Q", ts=0, id=1, value=1.0),
            Event("W", ts=2 * MIN, id=1, value=1.0),  # blocker AT e3.ts
            Event("V", ts=2 * MIN, id=2, value=1.0),
        ]
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, !W x, V b) WITHIN 5 MINUTES SLIDE 1 MINUTE"
        )
        want = oracle_set(pattern, events)
        assert len(want) == 1
        got = mapped_set(pattern, events, TranslationOptions.fasp())
        assert got == want
        nfa = {m.dedup_key() for m in dedup(run_nfa(from_sea_pattern(pattern), events))}
        assert nfa == want

    def test_same_type_on_both_positive_sides_with_ties(self):
        """Regression: NSEQ over the same event type with multi-sensor
        timestamp ties (the air-quality example workload)."""
        import random

        rng = random.Random(0)
        pm, hum = [], []
        for i in range(30):
            for sensor in (1, 2, 3):
                pm.append(Event("PM10", ts=i * 4 * MIN, id=sensor,
                                value=rng.uniform(0, 120)))
                hum.append(Event("HUM", ts=i * 4 * MIN, id=sensor,
                                 value=rng.uniform(10, 100)))
        events = sorted(pm + hum, key=lambda e: (e.ts, e.event_type, e.id))
        pattern = parse_pattern(
            "PATTERN SEQ(PM10 a, !HUM h, PM10 b) "
            "WHERE a.value > 100 AND b.value > 100 AND h.value > 90 "
            "WITHIN 40 MINUTES SLIDE 1 MINUTE"
        )
        want = oracle_set(pattern, events)
        got = mapped_set(pattern, events, TranslationOptions.fasp())
        nfa = {m.dedup_key() for m in dedup(run_nfa(from_sea_pattern(pattern), events))}
        assert got == want
        assert nfa == want


class TestKeyedNseq:
    def test_o3_nseq_blocks_per_key(self):
        """Under O3 the NSEQ's negation is scoped per key (the keyed
        next-occurrence UDF): a blocker on sensor 2 must not suppress a
        match on sensor 1. Validated against the oracle evaluated on each
        key's substream independently."""
        rng = random.Random(17)
        events = [
            Event(rng.choice(["Q", "W", "V"]), ts=i * MIN, id=rng.choice((1, 2)),
                  value=round(rng.uniform(0, 100), 2))
            for i in range(60)
        ]
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, !W x, V b) WHERE a.id = b.id "
            "WITHIN 6 MINUTES SLIDE 1 MINUTE"
        )
        query = translate(
            pattern, sources_for(events), TranslationOptions.o3()
        )
        query.execute()
        got = {m.dedup_key() for m in dedup(query.matches())}
        # Oracle: evaluate the unkeyed pattern per key substream.
        want = set()
        for key in (1, 2):
            sub = [e for e in events if e.id == key]
            per_key = parse_pattern(
                "PATTERN SEQ(Q a, !W x, V b) WITHIN 6 MINUTES SLIDE 1 MINUTE"
            )
            want |= {m.dedup_key() for m in evaluate_pattern(per_key, sub)}
        assert got == want

    def test_unkeyed_nseq_blocks_across_keys(self):
        """Without O3 the negation is global: any qualifying blocker
        suppresses, regardless of sensor (Eq. 14 verbatim)."""
        events = [
            Event("Q", ts=0, id=1),
            Event("W", ts=MIN, id=2),   # blocker on a DIFFERENT sensor
            Event("V", ts=2 * MIN, id=1),
        ]
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, !W x, V b) WITHIN 6 MINUTES SLIDE 1 MINUTE"
        )
        assert oracle_set(pattern, events) == set()
        assert mapped_set(pattern, events, TranslationOptions.fasp()) == set()
        # Keyed variant: the cross-sensor blocker does not block.
        keyed = parse_pattern(
            "PATTERN SEQ(Q a, !W x, V b) WHERE a.id = b.id "
            "WITHIN 6 MINUTES SLIDE 1 MINUTE"
        )
        query = translate(keyed, sources_for(events), TranslationOptions.o3())
        query.execute()
        assert len(query.matches()) == 1
