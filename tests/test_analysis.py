"""Tests for the static plan verifier (``repro.analysis``).

One targeted negative test per diagnostic code proves the code fires on
a crafted bad input; the framework tests pin the diagnostic/report API;
the pre-flight tests prove ``translate()`` rejects statically unsafe
plans before execution (and that ``analyze=False`` opts out).
"""

import dataclasses
import json
import math

import pytest

from repro.analysis import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    analyze,
    analyze_query,
    callable_diagnostics,
    error,
    merge_reports,
    pattern_diagnostics,
    scan_schema,
    shardability_diagnostics,
    warning,
)
from repro.analysis.partition import derived_keys, plan_partition_diagnostics
from repro.analysis.purity import flow_purity_diagnostics
from repro.analysis.schema import schema_diagnostics
from repro.analysis.state import flow_state_diagnostics, plan_state_diagnostics
from repro.analysis.structure import structural_diagnostics
from repro.analysis.timing import flow_time_diagnostics, plan_time_diagnostics
from repro.asp.datamodel import Event, Schema, TypeRegistry
from repro.asp.graph import Dataflow, linear_pipeline
from repro.asp.operators.base import Operator, StatefulOperator
from repro.asp.operators.filter import FilterOperator
from repro.asp.operators.source import ListSource
from repro.asp.operators.union import UnionOperator
from repro.asp.runtime import ShardedBackend
from repro.asp.time import minutes
from repro.errors import (
    ExecutionError,
    ShardabilityError,
    StaticAnalysisError,
    TranslationError,
)
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.plan import WindowJoin, WindowStrategy
from repro.mapping.rules import build_plan
from repro.mapping.translator import translate
from repro.sea.ast import Pattern, ReturnClause, nseq, ref, seq
from repro.sea.parser import parse_pattern

MIN = minutes(1)

SEQ_KEYED = "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 5 MINUTES SLIDE 1 MINUTE"
SEQ_UNKEYED = "PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES SLIDE 1 MINUTE"


def make_events(n=12, types=("Q", "V")):
    return [
        Event(types[i % len(types)], ts=i * MIN, id=i % 2, value=float(i))
        for i in range(n)
    ]


def sources_for(events, types=("Q", "V")):
    return {
        t: ListSource(
            [e for e in events if e.event_type == t], name=t, event_type=t
        )
        for t in types
    }


def empty_sources(types=("Q", "V", "W")):
    return {t: ListSource([], name=t, event_type=t) for t in types}


def sensor_registry(*names):
    registry = TypeRegistry()
    for name in names:
        registry.declare(name)
    return registry


def codes_of(diagnostics):
    return {d.code for d in diagnostics}


# -- diagnostic / report framework --------------------------------------------


class TestDiagnosticFramework:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic("RA999", Severity.ERROR, "nope")

    def test_every_registered_code_has_prefix_and_title(self):
        for code, title in CODES.items():
            assert code.startswith("RA") and len(code) == 5
            assert title

    def test_render_carries_code_and_location(self):
        diag = error("RA101", "bad ref", "join[a,b]")
        text = diag.render()
        assert "RA101" in text and "join[a,b]" in text and "error" in text

    def test_report_partitions_by_severity(self):
        report = AnalysisReport(
            target="p",
            diagnostics=(error("RA101", "x"), warning("RA303", "y")),
        )
        assert len(report) == 2
        assert [d.code for d in report.errors] == ["RA101"]
        assert [d.code for d in report.warnings] == ["RA303"]
        assert not report.ok()
        summary = report.summary()
        assert summary["ok"] is False
        assert summary["errors"] == 1 and summary["warnings"] == 1
        assert summary["codes"] == {"RA101": 1, "RA303": 1}

    def test_raise_for_errors(self):
        report = AnalysisReport(target="p", diagnostics=(error("RA101", "x"),))
        with pytest.raises(StaticAnalysisError) as excinfo:
            report.raise_for_errors()
        assert excinfo.value.diagnostics[0].code == "RA101"
        # warnings alone never raise
        AnalysisReport(
            target="p", diagnostics=(warning("RA303", "y"),)
        ).raise_for_errors()

    def test_static_analysis_error_is_translation_error(self):
        assert issubclass(StaticAnalysisError, TranslationError)
        assert issubclass(ShardabilityError, ExecutionError)

    def test_merge_and_json_round_trip(self):
        merged = merge_reports(
            "both",
            [
                AnalysisReport(target="a", diagnostics=(warning("RA303", "y"),)),
                AnalysisReport(target="b", diagnostics=(error("RA101", "x"),)),
            ],
        )
        assert len(merged) == 2
        payload = json.dumps(merged.as_dict())
        assert "RA101" in payload and "RA303" in payload


# -- RA0xx structure ----------------------------------------------------------


class TestStructureCodes:
    def test_ra001_no_sources_and_ra002_no_sinks(self):
        flow = Dataflow(name="empty")
        diags = structural_diagnostics(flow)
        assert {"RA001", "RA002"} <= codes_of(diags)

    def test_ra003_cycle(self):
        flow = Dataflow(name="loop")
        src = flow.add_source(ListSource([], name="s", event_type="Q"))
        a = flow.add_operator(FilterOperator(lambda e: True, name="a"))
        b = flow.add_operator(FilterOperator(lambda e: True, name="b"))
        flow.connect(src, a)
        flow.connect(a, b)
        flow.connect(b, a)
        assert "RA003" in codes_of(structural_diagnostics(flow))

    def test_ra004_missing_join_port(self):
        flow = Dataflow(name="halfjoin")
        src = flow.add_source(ListSource([], name="s", event_type="Q"))
        union = flow.add_operator(UnionOperator(2))
        flow.connect(src, union, port=0)  # port 1 never connected
        diags = structural_diagnostics(flow, require_sinks=False)
        assert "RA004" in codes_of(diags)
        assert any("missing inputs" in d.message for d in diags)


# -- RA01x pattern well-formedness --------------------------------------------


class TestPatternCodes:
    def test_ra011_duplicate_alias(self):
        from repro.asp.operators.window import WindowSpec

        # parse_pattern validates eagerly, so build the bad AST directly
        pattern = Pattern(
            seq(ref("Q", "x"), ref("V", "x")),
            window=WindowSpec(size=minutes(5), slide=minutes(1)),
        )
        assert "RA011" in codes_of(pattern_diagnostics(pattern))

    def test_ra012_unknown_type(self):
        pattern = parse_pattern("PATTERN SEQ(Q a, NOPE b) WITHIN 5 MINUTES")
        diags = pattern_diagnostics(pattern, registry=sensor_registry("Q", "V"))
        assert "RA012" in codes_of(diags)

    def test_ra013_unbound_where_alias(self):
        from repro.asp.operators.window import WindowSpec
        from repro.sea.predicates import Attr, Compare, Const

        pattern = Pattern(
            seq(ref("Q", "a"), ref("V", "b")),
            where=Compare(">", Attr("zz", "value"), Const(3)),
            window=WindowSpec(size=minutes(5), slide=minutes(1)),
        )
        assert "RA013" in codes_of(pattern_diagnostics(pattern))

    def test_ra014_nested_or_operand(self):
        from repro.sea.ast import Disjunction
        from repro.asp.operators.window import WindowSpec

        bad = Pattern(
            Disjunction((ref("Q", "a"), seq(ref("V", "b"), ref("W", "c")))),
            window=WindowSpec(size=minutes(5), slide=minutes(1)),
        )
        assert "RA014" in codes_of(pattern_diagnostics(bad))

    def test_ra015_nseq_operand_not_a_ref(self):
        from repro.asp.operators.window import WindowSpec

        node = nseq(ref("Q", "a"), ref("W", "x"), ref("V", "b"))
        # No parser production yields this shape; force it to prove the
        # analyzer guards the invariant rather than trusting the parser.
        object.__setattr__(node, "first", seq(ref("Q", "a"), ref("V", "c")))
        bad = Pattern(node, window=WindowSpec(size=minutes(5), slide=minutes(1)))
        assert "RA015" in codes_of(pattern_diagnostics(bad))


# -- RA1xx schema -------------------------------------------------------------


class TestSchemaCodes:
    def test_ra101_bad_field_ref_closed_registry(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.bogus = b.id WITHIN 5 MINUTES"
        )
        registry = sensor_registry("Q", "V")
        plan = build_plan(pattern, TranslationOptions(), registry=registry)
        diags = schema_diagnostics(plan, pattern, registry, empty_sources())
        hits = [d for d in diags if d.code == "RA101"]
        assert hits and all(d.is_error for d in hits)
        assert "bogus" in hits[0].message

    def test_ra101_open_schema_demotes_to_warning(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.bogus = b.id WITHIN 5 MINUTES"
        )
        plan = build_plan(pattern, TranslationOptions())
        diags = schema_diagnostics(plan, pattern, None, None)
        hits = [d for d in diags if d.code == "RA101"]
        assert hits and all(not d.is_error for d in hits)

    def test_ra101_inferred_from_source_sample(self):
        events = [Event("Q", ts=i * MIN, value=1.0) for i in range(4)]
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.nothere > 1 WITHIN 5 MINUTES"
        )
        plan = build_plan(pattern, TranslationOptions())
        # Q gets a closed sampled schema -> error; V stays open.
        diags = schema_diagnostics(
            plan, pattern, None, sources_for(events, types=("Q", "V"))
        )
        hits = [d for d in diags if d.code == "RA101"]
        assert hits and any(d.is_error for d in hits)

    def test_ra102_union_incompatible_registry(self):
        registry = TypeRegistry()
        registry.declare("Q")  # sensor schema (5 attributes)
        registry.declare("V", Schema.of("x", "y"))
        pattern = parse_pattern("PATTERN OR(Q a, V b) WITHIN 5 MINUTES")
        plan = build_plan(pattern, TranslationOptions())
        diags = schema_diagnostics(plan, pattern, registry, None)
        hits = [d for d in diags if d.code == "RA102"]
        assert hits and hits[0].is_error
        assert "union compatible" in hits[0].message

    def test_ra103_bad_return_attribute(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES RETURN a.bogus, b.value"
        )
        registry = sensor_registry("Q", "V")
        plan = build_plan(pattern, TranslationOptions(), registry=registry)
        diags = schema_diagnostics(plan, pattern, registry, None)
        hits = [d for d in diags if d.code == "RA103"]
        assert hits and hits[0].is_error and "bogus" in hits[0].message

    def test_ra103_malformed_return_entry(self):
        from repro.asp.operators.window import WindowSpec

        pattern = Pattern(
            seq(ref("Q", "a"), ref("V", "b")),
            window=WindowSpec(size=minutes(5), slide=minutes(1)),
            returns=ReturnClause(("a",)),  # no attribute
        )
        plan = build_plan(pattern, TranslationOptions())
        diags = schema_diagnostics(plan, pattern, None, None)
        assert any(d.code == "RA103" and d.is_error for d in diags)

    def test_scan_schema_prefers_registry(self):
        info = scan_schema("Q", sensor_registry("Q"), None)
        assert info.closed and info.resolves("value") and not info.resolves("bogus")
        open_info = scan_schema("Q", None, None)
        assert not open_info.closed


# -- RA2xx time ---------------------------------------------------------------


def sliding_join_plan(text=SEQ_UNKEYED, options=None):
    plan = build_plan(parse_pattern(text), options or TranslationOptions())
    assert isinstance(plan.root, WindowJoin)
    return plan


class TestTimeCodes:
    def test_ra201_nonpositive_and_oversized_slide(self):
        plan = sliding_join_plan()
        bad_root = dataclasses.replace(plan.root, window_slide=0)
        diags = plan_time_diagnostics(dataclasses.replace(plan, root=bad_root))
        assert any(d.code == "RA201" and "positive" in d.message for d in diags)
        drop_root = dataclasses.replace(
            plan.root, window_slide=plan.root.window_size * 2
        )
        diags = plan_time_diagnostics(dataclasses.replace(plan, root=drop_root))
        assert any(d.code == "RA201" and "drop events" in d.message for d in diags)

    def test_ra202_empty_interval_bounds(self):
        plan = sliding_join_plan(options=TranslationOptions.o1())
        assert plan.root.strategy is WindowStrategy.INTERVAL
        bad_root = dataclasses.replace(plan.root, window_size=0)
        diags = plan_time_diagnostics(dataclasses.replace(plan, root=bad_root))
        assert any(d.code == "RA202" and d.is_error for d in diags)

    def test_ra203_theorem2_slide_vs_gap(self):
        plan = sliding_join_plan()  # slide = 1 minute
        diags = plan_time_diagnostics(plan, min_inter_event_gap=1000)
        assert any(d.code == "RA203" and "Theorem 2" in d.message for d in diags)
        assert not plan_time_diagnostics(plan, min_inter_event_gap=minutes(1))

    def test_ra204_out_of_orderness_reaches_state_horizon(self):
        query = translate(parse_pattern(SEQ_UNKEYED), empty_sources())
        diags = flow_time_diagnostics(query.env.flow, max_out_of_orderness=minutes(10))
        hits = [d for d in diags if d.code == "RA204"]
        assert hits and all(not d.is_error for d in hits)
        assert not flow_time_diagnostics(query.env.flow, max_out_of_orderness=0)

    def test_ra205_asymmetric_union_delays(self):
        class Delayed(Operator):
            def watermark_delay(self):
                return minutes(2)

            def process(self, item, port=0):
                return (item,)

        flow = Dataflow(name="asym")
        fast = flow.add_source(ListSource([], name="fast", event_type="Q"))
        slow = flow.add_source(ListSource([], name="slow", event_type="V"))
        lag = flow.add_operator(Delayed(name="lag"))
        union = flow.add_operator(UnionOperator(2))
        flow.connect(slow, lag)
        flow.connect(lag, union, port=0)
        flow.connect(fast, union, port=1)
        diags = flow_time_diagnostics(flow)
        hits = [d for d in diags if d.code == "RA205"]
        assert hits and "asymmetric" in hits[0].message


# -- RA3xx state --------------------------------------------------------------


class TestStateCodes:
    def test_ra301_stateful_without_horizon(self):
        class Hoarder(StatefulOperator):
            def process(self, item, port=0):
                return ()

        flow = linear_pipeline(
            ListSource([], name="s", event_type="Q"), [Hoarder(name="hoarder")]
        )
        diags = flow_state_diagnostics(flow)
        assert any(
            d.code == "RA301" and d.is_error and "hoarder" in d.message
            for d in diags
        )

    def test_ra301_clean_on_translated_flows(self):
        query = translate(parse_pattern(SEQ_KEYED), empty_sources())
        assert not flow_state_diagnostics(query.env.flow)

    def test_ra302_wide_iteration_under_join_strategy(self):
        pattern = parse_pattern("PATTERN ITER4(V v) WITHIN 5 MINUTES")
        plan = build_plan(pattern, TranslationOptions())
        diags = plan_state_diagnostics(plan, pattern, "join")
        hits = [d for d in diags if d.code == "RA302"]
        assert hits and not hits[0].is_error and "O2" in hits[0].message
        # O2 makes the warning moot
        assert not [
            d
            for d in plan_state_diagnostics(plan, pattern, "aggregate")
            if d.code == "RA302"
        ]

    def test_ra304_approximate_count_flags_exact_alternative(self):
        pattern = parse_pattern("PATTERN ITER3(V v) WITHIN 10 MINUTES SLIDE 5 MINUTES")
        plan = build_plan(pattern, TranslationOptions(iteration_strategy="aggregate"))
        diags = plan_state_diagnostics(plan, pattern, "aggregate")
        hits = [d for d in diags if d.code == "RA304"]
        assert hits and not hits[0].is_error
        assert "iteration_strategy='exact'" in hits[0].message
        # The exact mapping itself is clean: no approximate output to flag.
        exact = build_plan(pattern, TranslationOptions(iteration_strategy="exact"))
        assert not [
            d
            for d in plan_state_diagnostics(exact, pattern, "exact")
            if d.code == "RA304"
        ]

    def test_ra303_many_concurrent_panes(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WITHIN 30 MINUTES SLIDE 1 MINUTE"
        )
        plan = build_plan(pattern, TranslationOptions())
        panes = math.ceil(plan.root.window_size / plan.root.window_slide)
        assert panes >= 30
        diags = plan_state_diagnostics(plan, pattern, "join")
        hits = [d for d in diags if d.code == "RA303"]
        assert hits and not hits[0].is_error


# -- RA4xx partition safety ---------------------------------------------------


class TestPartitionCodes:
    def test_ra401_unkeyed_flow_not_shardable(self):
        query = translate(parse_pattern(SEQ_UNKEYED), empty_sources())
        diags = shardability_diagnostics(query.env.flow)
        assert [d.code for d in diags] == ["RA401"]
        assert "key-parallel" in diags[0].message

    def test_ra401_keyed_o3_flow_is_shardable(self):
        query = translate(
            parse_pattern(SEQ_KEYED), empty_sources(), TranslationOptions.o3("id")
        )
        assert not shardability_diagnostics(query.env.flow)

    def test_ra402_partition_attribute_missing_from_closed_schema(self):
        pattern = parse_pattern(SEQ_KEYED)
        plan = build_plan(pattern, TranslationOptions.o3("plume"))
        diags = plan_partition_diagnostics(
            plan, "plume", sensor_registry("Q", "V"), None
        )
        hits = [d for d in diags if d.code == "RA402"]
        assert hits and all(d.is_error for d in hits)
        # open schema: cannot prove, stays silent
        assert not plan_partition_diagnostics(plan, "plume", None, None)

    def test_ra403_sharding_without_any_key(self):
        pattern = parse_pattern(SEQ_UNKEYED)
        plan = build_plan(pattern, TranslationOptions())
        assert not derived_keys(plan)
        diags = plan_partition_diagnostics(plan, None, None, None, prove_shardable=True)
        assert any(d.code == "RA403" and d.is_error for d in diags)
        # keyed plan derives its key set from the equi-predicate
        keyed = build_plan(parse_pattern(SEQ_KEYED), TranslationOptions())
        assert derived_keys(keyed)
        assert not plan_partition_diagnostics(keyed, None, None, None, prove_shardable=True)

    def test_sharded_backend_raises_structured_diagnostic(self):
        events = make_events()
        query = translate(parse_pattern(SEQ_UNKEYED), sources_for(events))
        with pytest.raises(ShardabilityError) as excinfo:
            query.execute(backend=ShardedBackend(shards=2, mode="inline"))
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostics[0].code == "RA401"
        assert "key-parallel" in str(excinfo.value)


# -- RA5xx purity -------------------------------------------------------------


class TestPurityCodes:
    def test_ra501_nondeterministic_udf(self):
        import random

        fn = lambda e: e["value"] > random.random()
        diags = callable_diagnostics(fn, "filter.predicate")
        assert any(d.code == "RA501" and d.is_error for d in diags)

    def test_ra502_io_udf(self):
        fn = lambda e: print(e) is None
        diags = callable_diagnostics(fn, "filter.predicate")
        assert any(d.code == "RA502" and d.is_error for d in diags)

    def test_ra503_mutates_closure(self):
        seen = []
        fn = lambda e: seen.append(e) is None
        diags = callable_diagnostics(fn, "filter.predicate")
        assert any(
            d.code == "RA503" and "seen" in d.message and d.is_error for d in diags
        )

    def test_ra503_global_statement(self):
        def impure(event):
            global _counter  # noqa: PLW0603
            _counter = event
            return True

        diags = callable_diagnostics(impure, "filter.predicate")
        assert any(d.code == "RA503" and "global" in d.message for d in diags)

    def test_ra504_unrecoverable_source(self):
        import math as math_module

        diags = callable_diagnostics(math_module.sqrt, "map.fn")
        assert [d.code for d in diags] == ["RA504"]
        assert not diags[0].is_error

    def test_builtins_are_trusted(self):
        assert callable_diagnostics(len, "map.fn") == []

    def test_pure_lambda_is_clean(self):
        threshold = 30.0
        fn = lambda e: e["value"] < threshold
        assert callable_diagnostics(fn, "filter.predicate") == []

    def test_flow_level_lint_reaches_operator_predicates(self):
        import random

        flow = linear_pipeline(
            ListSource([], name="s", event_type="Q"),
            [FilterOperator(lambda e: random.random() < 0.5, name="dice")],
        )
        diags = flow_purity_diagnostics(flow)
        assert any(d.code == "RA501" and "dice" in d.where for d in diags)

    def test_cache_rebinds_location(self):
        fn = lambda e: e["value"] > 1
        first = callable_diagnostics(fn, "here")
        second = callable_diagnostics(fn, "there")
        assert first == [] and second == []


# -- the translate() pre-flight ----------------------------------------------


class TestTranslatePreflight:
    def test_unsafe_o3_plan_rejected_before_execution(self):
        """Acceptance: a statically unsafe O3 plan never reaches execute()."""
        events = make_events()
        with pytest.raises(StaticAnalysisError) as excinfo:
            translate(
                parse_pattern(SEQ_KEYED),
                sources_for(events),  # sampled schemas are closed
                TranslationOptions.o3("bogus_attr"),
            )
        assert any(d.code == "RA402" for d in excinfo.value.diagnostics)

    def test_bad_field_ref_rejected_with_registry(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.bogus = b.id WITHIN 5 MINUTES"
        )
        with pytest.raises(StaticAnalysisError):
            translate(
                pattern, empty_sources(), registry=sensor_registry("Q", "V")
            )

    def test_analyze_false_opts_out(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WHERE a.bogus = b.id WITHIN 5 MINUTES"
        )
        query = translate(
            pattern,
            empty_sources(),
            registry=sensor_registry("Q", "V"),
            analyze=False,
        )
        assert query.analysis is None

    def test_clean_translation_attaches_report(self):
        query = translate(parse_pattern(SEQ_KEYED), empty_sources())
        assert query.analysis is not None
        assert query.analysis.ok()

    def test_analysis_summary_lands_in_run_metrics(self):
        events = make_events()
        query = translate(parse_pattern(SEQ_KEYED), sources_for(events))
        result = query.execute()
        block = result.metrics["analysis"]
        assert block["ok"] is True and block["errors"] == 0

    def test_analyze_query_full_pipeline(self):
        query = translate(parse_pattern(SEQ_UNKEYED), empty_sources())
        report = analyze_query(query, prove_shardable=True)
        # no key set at all: both the plan-level and the flow-level proof fail
        assert {"RA401", "RA403"} <= report.codes()

    def test_analyze_pieces_individually(self):
        pattern = parse_pattern(SEQ_KEYED)
        plan = build_plan(pattern, TranslationOptions())
        report = analyze(pattern=pattern, plan=plan)
        assert report.ok()
        assert report.target == pattern.name


class TestRecoverabilityCodes:
    def test_ra601_stateful_operator_without_protocol(self):
        from repro.analysis.recovery import flow_recovery_diagnostics

        class Amnesiac(StatefulOperator):
            def process(self, item, port=0):
                return ()

        flow = linear_pipeline(
            ListSource([], name="s", event_type="Q"), [Amnesiac(name="amnesiac")]
        )
        diags = flow_recovery_diagnostics(flow)
        assert any(
            d.code == "RA601" and d.is_error and "amnesiac" in d.message
            for d in diags
        )

    def test_ra602_half_implemented_protocol(self):
        from repro.analysis.recovery import flow_recovery_diagnostics

        class HalfWay(StatefulOperator):
            def process(self, item, port=0):
                return ()

            def snapshot_state(self):
                return {"work_units": self.work_units}

        flow = linear_pipeline(
            ListSource([], name="s", event_type="Q"), [HalfWay(name="half")]
        )
        diags = flow_recovery_diagnostics(flow)
        hits = [d for d in diags if d.code == "RA602"]
        assert hits and hits[0].is_error
        assert "restore_state" in hits[0].message

    def test_stateless_operators_are_exempt(self):
        from repro.analysis.recovery import flow_recovery_diagnostics

        flow = linear_pipeline(
            ListSource([], name="s", event_type="Q"),
            [FilterOperator(lambda e: True, name="keep")],
        )
        assert not flow_recovery_diagnostics(flow)

    def test_translated_flows_are_ra6xx_clean(self):
        from repro.analysis.recovery import flow_recovery_diagnostics

        query = translate(parse_pattern(SEQ_KEYED), empty_sources())
        assert not flow_recovery_diagnostics(query.env.flow)
        report = analyze_query(query)
        assert not (report.codes() & {"RA601", "RA602"})
