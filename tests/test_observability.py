"""Observability layer: metric primitives, per-operator telemetry, run
reports, and the sharded-vs-serial roll-up guarantee.

Covers the PR's acceptance criteria: histogram percentile math (bucket
edges, empty histograms), metrics JSON round-trips, and per-shard +
merged views consistent with serial totals on a keyed pattern.
"""

import json
import random

import pytest

from repro.asp.datamodel import Event
from repro.asp.executor import run_dataflow
from repro.asp.graph import clone_dataflow, linear_pipeline
from repro.asp.operators.filter import FilterOperator
from repro.asp.operators.sink import CollectSink
from repro.asp.operators.source import ListSource
from repro.asp.runtime import ShardedBackend
from repro.asp.runtime.observability import (
    LATENCY_SAMPLE_MASK,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_report,
    merge_metric_trees,
    render_metrics_summary,
    run_report,
    summarize_metric,
    write_metrics_json,
)
from repro.asp.time import minutes
from repro.cli import main
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern

MIN = minutes(1)


class TestHistogram:
    """Satellite: percentile math over fixed buckets."""

    def test_empty_histogram_reports_zeroes(self):
        h = Histogram(bounds=(0.001, 0.01, 0.1))
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        assert h.percentile(99) == 0.0
        d = h.to_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["max"] == 0.0

    def test_single_observation_is_exact(self):
        h = Histogram(bounds=(0.001, 0.01, 0.1))
        h.observe(0.003)
        # Interpolation is clamped to [min, max], so one sample is exact.
        assert h.percentile(50) == pytest.approx(0.003)
        assert h.percentile(99) == pytest.approx(0.003)
        assert h.mean == pytest.approx(0.003)

    def test_bucket_edge_lands_in_lower_bucket(self):
        h = Histogram(bounds=(1.0, 2.0, 5.0))
        h.observe(1.0)  # inclusive upper edge
        assert h.counts[0] == 1
        h.observe(1.0000001)
        assert h.counts[1] == 1

    def test_overflow_bucket_uses_observed_max(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(100.0)
        assert h.counts[-1] == 1
        assert h.percentile(99) == pytest.approx(100.0)

    def test_percentiles_are_monotone_and_bounded(self):
        rng = random.Random(7)
        h = Histogram()
        values = [rng.uniform(1e-6, 2.0) for _ in range(500)]
        for v in values:
            h.observe(v)
        p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
        assert min(values) <= p50 <= p95 <= p99 <= max(values)

    def test_uniform_distribution_p50_accuracy(self):
        h = Histogram()
        for i in range(1, 1001):
            h.observe(i / 1000.0)  # uniform over (0, 1]
        assert h.percentile(50) == pytest.approx(0.5, rel=0.05)
        assert h.percentile(100) == pytest.approx(1.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))


class TestMergeTrees:
    """Satellite: shard roll-up semantics of every metric type."""

    def test_counters_add(self):
        merged = merge_metric_trees(
            [{"a": Counter(3).to_dict()}, {"a": Counter(4).to_dict()}]
        )
        assert merged["a"]["value"] == 7

    def test_gauge_aggregations(self):
        for agg, expected in (("sum", 7), ("max", 4), ("min", 3), ("last", 4)):
            merged = merge_metric_trees(
                [{"g": Gauge(3, agg=agg).to_dict()}, {"g": Gauge(4, agg=agg).to_dict()}]
            )
            assert merged["g"]["value"] == expected, agg

    def test_histograms_merge_bucket_wise(self):
        a, b = Histogram(bounds=(1.0, 2.0)), Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(3.0)
        merged = merge_metric_trees([{"h": a.to_dict()}, {"h": b.to_dict()}])["h"]
        assert merged["count"] == 3
        assert merged["counts"] == [1, 1, 1]
        assert merged["min"] == 0.5 and merged["max"] == 3.0
        summary = summarize_metric(merged)
        assert summary["count"] == 3
        assert 0.5 <= summary["p50"] <= 3.0

    def test_histogram_bound_mismatch_rejected(self):
        a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(2.0,))
        a.observe(0.5)
        b.observe(0.5)
        with pytest.raises(ValueError, match="bounds"):
            merge_metric_trees([{"h": a.to_dict()}, {"h": b.to_dict()}])

    def test_annotations_and_missing_scopes(self):
        merged = merge_metric_trees(
            [
                {"op": {"kind": "filter", "n": Counter(1).to_dict()}},
                {"op": {"kind": "filter", "n": Counter(2).to_dict()}},
                {"other": {"kind": "sink"}},
            ]
        )
        assert merged["op"]["kind"] == "filter"
        assert merged["op"]["n"]["value"] == 3
        assert merged["other"]["kind"] == "sink"

    def test_empty_histogram_merge_keeps_min_max_clean(self):
        a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(1.0,))
        b.observe(0.25)
        merged = merge_metric_trees([{"h": a.to_dict()}, {"h": b.to_dict()}])["h"]
        assert merged["min"] == 0.25 and merged["max"] == 0.25


class TestRegistryRoundTrip:
    """Satellite: metrics JSON round-trip."""

    def test_registry_tree_survives_json(self):
        registry = MetricsRegistry()
        scope = registry.scope("join#3")
        scope.annotate("kind", "window-join")
        scope.counter("events_in").inc(42)
        scope.gauge("state_bytes", agg="sum").set(1024)
        scope.histogram("latency_s", bounds=(0.001, 0.01)).observe(0.002)
        tree = registry.to_dict()
        restored = json.loads(json.dumps(tree))
        assert restored == tree
        assert merge_metric_trees([restored, restored])["join#3"]["events_in"][
            "value"
        ] == 84

    def test_scope_reuse_returns_same_metrics(self):
        registry = MetricsRegistry()
        registry.scope("op").counter("n").inc()
        registry.scope("op").counter("n").inc()
        assert registry.to_dict()["op"]["n"]["value"] == 2
        assert registry.scopes() == ["op"]


def _events(n=60, ids=(1, 2, 3, 4, 5), seed=13):
    rng = random.Random(seed)
    return [
        Event(
            rng.choice(("Q", "V")),
            ts=i * MIN,
            id=rng.choice(ids),
            value=round(rng.uniform(0, 100), 3),
        )
        for i in range(n)
    ]


def _sources(events):
    by_type = {}
    for e in events:
        by_type.setdefault(e.event_type, []).append(e)
    return {
        t: ListSource(lst, name=f"src[{t}]", event_type=t)
        for t, lst in by_type.items()
    }


KEYED = "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 7 MINUTES SLIDE 1 MINUTE"


class TestSerialRunMetrics:
    def test_per_operator_metrics_on_simple_pipeline(self):
        events = [Event("Q", ts=i * MIN, id=i % 3, value=float(i)) for i in range(40)]
        flow = linear_pipeline(
            ListSource(events, name="s"),
            [FilterOperator(lambda e: e.value >= 10), CollectSink()],
        )
        result = run_dataflow(flow)
        report = run_report(result)
        ops = report["operators"]
        filter_scope = next(s for s in ops if s.startswith("filter"))
        sink_scope = next(s for s in ops if "sink" in s)
        assert ops[filter_scope]["events_in"] == 40
        assert ops[filter_scope]["events_out"] == 30
        assert ops[filter_scope]["selectivity"] == pytest.approx(0.75)
        # Latency is stride-sampled on the hot path: one observation per
        # LATENCY_SAMPLE_MASK + 1 events; event counts stay exact.
        assert ops[filter_scope]["latency_s"]["count"] == 40 // (LATENCY_SAMPLE_MASK + 1)
        assert ops[filter_scope]["latency_s"]["p50"] > 0
        assert ops[sink_scope]["events_in"] == 30
        assert ops[sink_scope]["items_accepted"] == 30

    def test_join_metrics_include_state_and_pairs(self):
        pattern = parse_pattern(KEYED)
        query = translate(pattern, _sources(_events()), TranslationOptions.o3())
        result = query.execute()
        report = run_report(result)
        join_scope = next(s for s in report["operators"] if "join" in s)
        join = report["operators"][join_scope]
        assert join["pairs_tested"] >= join["pairs_emitted"]
        assert join["state_peak_bytes"] > 0
        assert join["watermark_calls"] > 0
        # The join holds outputs back by its window size.
        assert join["watermark_lag_ms"] == 0  # lag applies downstream
        sink_scope = next(s for s in report["operators"] if "sink" in s)
        assert report["operators"][sink_scope]["watermark_lag_ms"] == minutes(7)

    def test_short_run_still_records_a_sample(self):
        """Satellite fix: Instrumentation.finish records the closing
        sample, so runs shorter than sample_every have Figure-5 data."""
        events = [Event("Q", ts=i * MIN, id=1) for i in range(5)]
        flow = linear_pipeline(ListSource(events, name="s"), [CollectSink()])
        result = run_dataflow(flow, sample_every=1000)
        assert result.samples
        assert result.samples[-1]["events_in"] == 5

    def test_cadence_coinciding_with_end_is_not_duplicated(self):
        events = [Event("Q", ts=i * MIN, id=1) for i in range(20)]
        flow = linear_pipeline(ListSource(events, name="s"), [CollectSink()])
        result = run_dataflow(flow, sample_every=10)
        counts = [s["events_in"] for s in result.samples]
        assert counts == [10, 20]  # no duplicate closing sample at 20


class TestShardedRollup:
    """Acceptance: per-shard + merged views consistent with serial."""

    @pytest.mark.parametrize("shards", (2, 4))
    def test_merged_metrics_equal_serial_totals(self, shards):
        pattern = parse_pattern(KEYED)
        events = _events(n=80)

        serial_query = translate(pattern, _sources(events), TranslationOptions.o3())
        serial_result = serial_query.execute()
        sharded_query = translate(pattern, _sources(events), TranslationOptions.o3())
        sharded_result = sharded_query.execute(
            backend=ShardedBackend(shards=shards, mode="inline")
        )

        serial_ops = run_report(serial_result)["operators"]
        sharded_report = run_report(sharded_result)
        sharded_ops = sharded_report["operators"]
        assert set(serial_ops) == set(sharded_ops)
        for scope, serial_op in serial_ops.items():
            merged_op = sharded_ops[scope]
            assert merged_op["events_in"] == serial_op["events_in"], scope
            assert merged_op["events_out"] == serial_op["events_out"], scope
            assert merged_op["selectivity"] == pytest.approx(
                serial_op["selectivity"]
            ), scope
            # Stride sampling floors per shard, so the merged sample
            # count may trail the serial one by at most shards - 1.
            serial_count = serial_op["latency_s"]["count"]
            merged_count = merged_op["latency_s"]["count"]
            assert serial_count - (shards - 1) <= merged_count <= serial_count
            for extra in ("pairs_tested", "pairs_emitted", "items_accepted"):
                if extra in serial_op:
                    assert merged_op[extra] == serial_op[extra], (scope, extra)

        views = sharded_report["shards"]
        assert len(views) == shards
        for scope in serial_ops:
            per_shard = [v["operators"][scope]["events_in"] for v in views]
            assert sum(per_shard) == sharded_ops[scope]["events_in"], scope

    def test_raw_typed_trees_merge_in_result(self):
        pattern = parse_pattern(KEYED)
        query = translate(pattern, _sources(_events()), TranslationOptions.o3())
        result = query.execute(backend=ShardedBackend(shards=2, mode="inline"))
        # "analysis" is the static pre-flight summary translate() attaches;
        # "plan" records which logical plan (and fired rewrite rules)
        # produced this run, so profile-fed replanning can trust reports.
        assert set(result.metrics) == {"operators", "shards", "analysis", "plan"}
        assert result.metrics["analysis"]["ok"] is True
        assert result.metrics["plan"]["pattern"] == pattern.name
        tree = result.metrics["operators"]
        scope = next(iter(tree))
        assert tree[scope]["events_in"]["type"] == "counter"
        assert tree[scope]["latency_s"]["type"] == "histogram"


class TestReportAndCli:
    def test_report_round_trip_and_render(self, tmp_path):
        events = [Event("Q", ts=i * MIN, id=1, value=float(i)) for i in range(25)]
        flow = linear_pipeline(
            ListSource(events, name="s"),
            [FilterOperator(lambda e: True), CollectSink()],
        )
        flow2 = clone_dataflow(flow)
        result = run_dataflow(flow2)
        path = tmp_path / "metrics.json"
        written = write_metrics_json(result, path)
        loaded = load_report(path)
        assert loaded == written
        assert loaded["job"]["sink_items"] == 25
        rendered = render_metrics_summary(loaded)
        assert "filter" in rendered
        assert "events_in=25" in rendered
        assert "out=25" in rendered  # sink-accepted items, not items_out=0

    def test_load_report_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ValueError, match="schema"):
            load_report(path)

    @pytest.fixture()
    def data_dir(self, tmp_path):
        rc = main(
            ["generate", "--out", str(tmp_path), "--segments", "2", "--minutes", "90"]
        )
        assert rc == 0
        return tmp_path

    @pytest.mark.parametrize("backend_args", ([], ["--backend", "sharded", "--shards", "2"]))
    def test_cli_metrics_json_and_summary(self, data_dir, tmp_path, capsys, backend_args):
        report_path = tmp_path / "out.json"
        rc = main(
            [
                "run",
                "-p",
                "PATTERN SEQ(Q a, V b) WHERE a.id = b.id WITHIN 10 MINUTES",
                "--o3",
                "id",
                "--stream",
                f"Q={data_dir}/Q.csv",
                "--stream",
                f"V={data_dir}/V.csv",
                "--metrics-json",
                str(report_path),
            ]
            + backend_args
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "metrics report" in out
        report = load_report(report_path)
        assert report["operators"]
        assert report["job"]["sink_items"] > 0
        for op in report["operators"].values():
            assert {"events_in", "events_out", "selectivity", "latency_s"} <= set(op)
        if backend_args:
            assert report["job"]["backend"] == "sharded"
            assert len(report["shards"]) == 2

        rc = main(["metrics", str(report_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "p95" in out and "operator" in out

        rc = main(["metrics", str(report_path), "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        assert json.loads(out)["schema"] == "repro.metrics/v1"

    def test_cli_metrics_rejects_missing_file(self, tmp_path, capsys):
        rc = main(["metrics", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


def _load_gate():
    import importlib.util
    from pathlib import Path

    path = Path(__file__).parent.parent / "tools" / "check_bench_regression.py"
    spec = importlib.util.spec_from_file_location("check_bench_regression", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _summary(throughputs, matches=100, events=4000):
    return {
        "schema": "repro.bench-summary/v1",
        "experiments": {
            "fig3a": {
                "events": events,
                "cells": {
                    key: {
                        "throughput_tps": tps,
                        "matches": matches,
                        "events_in": events,
                        "failed": False,
                    }
                    for key, tps in throughputs.items()
                },
            }
        },
    }


class TestBenchRegressionGate:
    """Satellite: the CI gate normalizes out machine-speed shifts but
    catches per-cell regressions and correctness mismatches."""

    CELLS = {"SEQ1|FCEP|baseline": 100.0, "SEQ1|FASP|baseline": 200.0,
             "ITER3|FASP-O2|baseline": 400.0}

    def _run(self, tmp_path, current, baseline, *extra):
        gate = _load_gate()
        base_path = tmp_path / "baseline.json"
        cur_path = tmp_path / "summary.json"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))
        return gate.main([str(cur_path), "--baseline", str(base_path), *extra])

    def test_identical_summaries_pass(self, tmp_path, capsys):
        assert self._run(tmp_path, _summary(self.CELLS), _summary(self.CELLS)) == 0
        assert "OK" in capsys.readouterr().out

    def test_uniform_machine_slowdown_passes_with_warning(self, tmp_path, capsys):
        slower = _summary({k: v / 2 for k, v in self.CELLS.items()})
        assert self._run(tmp_path, slower, _summary(self.CELLS)) == 0
        assert "uniform throughput shift" in capsys.readouterr().out

    def test_uniform_slowdown_fails_in_absolute_mode(self, tmp_path, capsys):
        slower = _summary({k: v / 2 for k, v in self.CELLS.items()})
        rc = self._run(tmp_path, slower, _summary(self.CELLS), "--absolute")
        assert rc == 1

    def test_single_cell_regression_breaches(self, tmp_path, capsys):
        current = dict(self.CELLS)
        current["ITER3|FASP-O2|baseline"] /= 2  # one optimization regressed
        rc = self._run(tmp_path, _summary(current), _summary(self.CELLS))
        assert rc == 1
        assert "FASP-O2" in capsys.readouterr().out

    def test_match_count_mismatch_is_correctness_breach(self, tmp_path, capsys):
        rc = self._run(
            tmp_path, _summary(self.CELLS, matches=99), _summary(self.CELLS)
        )
        assert rc == 1
        assert "correctness regression" in capsys.readouterr().out

    def test_update_reblesses_baseline(self, tmp_path, capsys):
        gate = _load_gate()
        cur_path = tmp_path / "summary.json"
        base_path = tmp_path / "baseline.json"
        cur_path.write_text(json.dumps(_summary(self.CELLS)))
        rc = gate.main(
            [str(cur_path), "--baseline", str(base_path), "--update"]
        )
        assert rc == 0
        assert json.loads(base_path.read_text()) == _summary(self.CELLS)
