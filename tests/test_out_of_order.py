"""Out-of-order arrival handling (an ASP capability; paper Section 6)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.datamodel import Event
from repro.asp.operators.source import ListSource
from repro.asp.time import minutes
from repro.mapping.optimizations import TranslationOptions
from repro.mapping.translator import translate
from repro.sea.parser import parse_pattern
from repro.sea.semantics import evaluate_pattern
from repro.workloads.disorder import max_disorder, shuffle_bounded

MIN = minutes(1)


def make_stream(seed, n=50):
    rng = random.Random(seed)
    return [
        Event(rng.choice(["Q", "V"]), ts=i * MIN, id=1,
              value=round(rng.uniform(0, 100), 3))
        for i in range(n)
    ]


def run_disordered(pattern, arrival_events, allowed_lateness):
    # One pre-merged source delivering in arrival order.
    source = ListSource(arrival_events, name="disordered")
    by_type = {}
    for e in arrival_events:
        by_type.setdefault(e.event_type, None)
    sources = {t: source for t in by_type}
    # Reuse the same physical source object for all types: the compiler
    # adds per-type routing filters since source.event_type is None.
    query = translate(pattern, sources, TranslationOptions.fasp())
    query.execute(max_out_of_orderness=allowed_lateness)
    return query.matches()


class TestShuffleBounded:
    def test_zero_delay_is_identity(self):
        events = make_stream(1)
        assert shuffle_bounded(events, 0) == events

    def test_disorder_is_bounded(self):
        events = make_stream(2)
        shuffled = shuffle_bounded(events, 3 * MIN, seed=9)
        assert 0 < max_disorder(shuffled) <= 3 * MIN

    def test_permutation_preserves_multiset(self):
        events = make_stream(3)
        shuffled = shuffle_bounded(events, 5 * MIN)
        assert sorted(shuffled, key=lambda e: (e.ts, e.value)) == sorted(
            events, key=lambda e: (e.ts, e.value)
        )

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            shuffle_bounded([], -1)


class TestExactnessUnderBoundedDisorder:
    def test_matches_preserved_with_adequate_lateness(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WITHIN 6 MINUTES SLIDE 1 MINUTE"
        )
        events = make_stream(5)
        want = {m.dedup_key() for m in evaluate_pattern(pattern, events)}
        shuffled = shuffle_bounded(events, 2 * MIN, seed=3)
        got = {
            m.dedup_key()
            for m in run_disordered(pattern, shuffled, allowed_lateness=2 * MIN)
        }
        assert got == want

    def test_interval_join_is_arrival_order_insensitive(self):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WITHIN 6 MINUTES SLIDE 1 MINUTE"
        )
        events = make_stream(6)
        want = {m.dedup_key() for m in evaluate_pattern(pattern, events)}
        shuffled = shuffle_bounded(events, 3 * MIN, seed=4)
        source = ListSource(shuffled, name="disordered")
        query = translate(
            pattern, {"Q": source, "V": source}, TranslationOptions.o1()
        )
        query.execute(max_out_of_orderness=3 * MIN)
        got = {m.dedup_key() for m in query.matches()}
        assert got == want

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6),
           delay_min=st.integers(min_value=0, max_value=4))
    def test_property_exact_when_lateness_covers_disorder(self, seed, delay_min):
        pattern = parse_pattern(
            "PATTERN SEQ(Q a, V b) WITHIN 5 MINUTES SLIDE 1 MINUTE"
        )
        events = make_stream(seed, n=35)
        want = {m.dedup_key() for m in evaluate_pattern(pattern, events)}
        shuffled = shuffle_bounded(events, delay_min * MIN, seed=seed)
        got = {
            m.dedup_key()
            for m in run_disordered(
                pattern, shuffled, allowed_lateness=delay_min * MIN
            )
        }
        assert got == want
